"""Setuptools shim for environments without PEP 660 tooling."""
from setuptools import setup

setup()
