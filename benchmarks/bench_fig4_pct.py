"""Figure 4 — random-walk partial cover time on RGG deployments.

Paper shape targets: steps-per-unique-node is a small constant (~1.7 at
d_avg=10 for |Q| ~ sqrt(n)); sparser networks cost more (~2.5 at d=7);
UNIQUE-PATH almost never revisits (ratio ~ 1) at any density.
"""

from conftest import FULL_SCALE, SIZES, record_result

from repro.experiments import format_table, pct_by_density, pct_by_network_size

WALKS = 30 if FULL_SCALE else 8
DENSITIES = (7, 10, 15, 20, 25) if FULL_SCALE else (7, 10, 20)


def run_by_size():
    return pct_by_network_size(sizes=SIZES, walks=WALKS,
                               coverage_fractions=(1.0, 2.0))


def run_by_density():
    return pct_by_density(densities=DENSITIES, n=max(SIZES), walks=WALKS)


def test_fig4_pct_by_network_size(benchmark, record):
    points = benchmark.pedantic(run_by_size, rounds=1, iterations=1)
    text = format_table(
        ["n", "d_avg", "target", "self-avoiding", "steps/unique"],
        [(p.n, p.avg_degree, p.unique_target, p.unique, p.steps_per_unique)
         for p in points])
    record("fig4_pct_by_size", f"Figure 4(a,c)\n{text}")
    simple = [p for p in points if not p.unique]
    uniq = [p for p in points if p.unique]
    # PCT linear in the target: ratio stays a small constant.
    assert all(p.steps_per_unique < 3.5 for p in simple)
    # UNIQUE-PATH barely revisits.
    assert all(p.steps_per_unique < 1.35 for p in uniq)


def test_fig4_pct_by_density(benchmark, record):
    points = benchmark.pedantic(run_by_density, rounds=1, iterations=1)
    text = format_table(
        ["n", "d_avg", "target", "self-avoiding", "steps/unique"],
        [(p.n, p.avg_degree, p.unique_target, p.unique, p.steps_per_unique)
         for p in points])
    record("fig4_pct_by_density", f"Figure 4(b)\n{text}")
    simple = {p.avg_degree: p.steps_per_unique for p in points if not p.unique}
    uniq = {p.avg_degree: p.steps_per_unique for p in points if p.unique}
    # Sparse networks revisit more than dense ones (simple walk).
    assert simple[min(simple)] >= simple[max(simple)] - 0.2
    # Self-avoiding walk is nearly density independent.
    assert max(uniq.values()) - min(uniq.values()) < 0.5
