"""Energy comparison of lookup strategies (Section 4.4's energy argument).

The paper argues broadcast-based access is less energy efficient: floods
are sent at the low broadcast rate and wake every node in range (and
disable 802.11 PSM sleeping).  This bench measures total radio energy per
lookup for UNIQUE-PATH (unicast walk) vs FLOODING at matched hit ratios.
"""

import math
import random

from conftest import N_DEFAULT, N_KEYS, N_LOOKUPS, record_result

from repro.core import (
    FloodingStrategy,
    ProbabilisticBiquorum,
    RandomStrategy,
    UniquePathStrategy,
)
from repro.experiments import format_table, make_membership, make_network


def measure(lookup_strategy, seed=7):
    net = make_network(N_DEFAULT, seed=seed)
    membership = make_membership(net, "random")
    qa = max(1, round(2 * math.sqrt(N_DEFAULT)))
    ql = max(1, round(1.15 * math.sqrt(N_DEFAULT)))
    bq = ProbabilisticBiquorum(
        net, advertise=RandomStrategy(membership),
        lookup=lookup_strategy, advertise_size=qa, lookup_size=ql,
        adjust_to_network_size=False)
    rng = random.Random(seed + 1)
    stores = []
    for _ in range(N_KEYS):
        stored = set()
        bq.write(net.random_alive_node(rng), stored.add)
        stores.append(stored)
    energy_before = net.energy.total
    hits = 0
    for i in range(N_LOOKUPS):
        stored = stores[i % N_KEYS]
        res = bq.read(net.random_alive_node(rng),
                      lambda v, s=stored: "x" if v in s else None)
        hits += bool(res.found)
    energy = (net.energy.total - energy_before) / N_LOOKUPS
    return hits / N_LOOKUPS, energy


def run():
    walk_hit, walk_energy = measure(UniquePathStrategy())
    flood_hit, flood_energy = measure(FloodingStrategy(ttl=3))
    return [("UNIQUE-PATH (unicast walk)", walk_hit, walk_energy),
            ("FLOODING ttl=3 (broadcast)", flood_hit, flood_energy)]


def test_energy_per_lookup(benchmark, record):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["lookup strategy", "hit ratio", "energy/lookup (tx-units)"], rows)
    record("energy_comparison", f"Section 4.4 energy comparison\n{text}")
    walk, flood = rows
    # Comparable hit ratios...
    assert abs(walk[1] - flood[1]) <= 0.25
    # ...but broadcasting burns several times the energy.
    assert flood[2] > 2.0 * walk[2]
