"""Theory-validation benches: Theorem 5.5 (crossing time), the MD-walk
mixing claim behind sampling-based RANDOM, and exact-vs-simulated PCT.

These back the analytic rows of Figures 3 and 6 ("lower bound is based on
the crossing time").
"""

import pytest
import random

from conftest import FULL_SCALE, record_result

from repro.analysis import (
    exact_partial_cover_time,
    measure_crossing_time,
    pct_complete_graph,
    spectral_mixing_time,
)
from repro.experiments import format_table
from repro.geometry import rgg_for_density
from repro.simnet import NetworkConfig, SimNetwork

SIZES = (50, 100, 200, 400) if FULL_SCALE else (50, 100, 200)
PAIRS = 40 if FULL_SCALE else 15


def run_crossing():
    rows = []
    for n in SIZES:
        net = SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=2))
        m = measure_crossing_time(net, pairs=PAIRS, rng=random.Random(1))
        bound = n / 10.0  # Omega(r^-2) with r^2 ~ d_avg/n (up to constants)
        rows.append((n, m.mean_steps, m.median_steps, bound, m.timeouts))
    return rows


def run_mixing():
    rows = []
    for n in (30, 60, 120):
        g = rgg_for_density(n, avg_degree=12, rng=random.Random(6),
                            require_connected=True)
        rows.append((n, spectral_mixing_time(g), n / 2.0))
    return rows


def test_crossing_time_theorem(benchmark, record):
    rows = benchmark.pedantic(run_crossing, rounds=1, iterations=1)
    text = format_table(
        ["n", "mean crossing", "median", "Omega(r^-2) scale", "timeouts"],
        rows)
    record("theory_crossing_time", f"Theorem 5.5 validation\n{text}")
    means = {r[0]: r[1] for r in rows}
    # Crossing time grows with n (r^-2 ~ n at fixed density)...
    ordered = [means[n] for n in SIZES]
    assert ordered == sorted(ordered)
    # ...and superlinearly vs sqrt(n): quadrupling n more than doubles it.
    assert means[SIZES[-1]] >= 2.0 * means[SIZES[0]]


def test_md_walk_mixing_scales_linearly(benchmark, record):
    rows = benchmark.pedantic(run_mixing, rounds=1, iterations=1)
    text = format_table(["n", "spectral T_mix", "RaWMS n/2"], rows)
    record("theory_mixing_time", f"MD-walk mixing validation\n{text}")
    ts = [r[1] for r in rows]
    assert ts == sorted(ts)
    # Linear-in-n growth (within constants): 4x nodes -> >= 2x mixing.
    assert ts[-1] >= 2.0 * ts[0]


def test_exact_pct_validates_simulated_walks(benchmark, record):
    """The walk kernel's expected cover time matches the exact DP value."""

    def run():
        adj = [[1, 2], [0, 2, 3], [0, 1, 4], [1, 4], [2, 3, 5], [4]]
        exact = exact_partial_cover_time(adj, 0, 6)
        rng = random.Random(0)
        trials = 3000
        total = 0
        for _ in range(trials):
            current, visited, steps = 0, {0}, 0
            while len(visited) < 6:
                current = rng.choice(adj[current])
                visited.add(current)
                steps += 1
            total += steps
        return exact, total / trials

    exact, simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    record("theory_exact_pct",
           f"exact PCT={exact:.3f} vs simulated={simulated:.3f}")
    assert simulated == pytest.approx(exact, rel=0.08)



