"""Figure 8 — RANDOM advertise cost and RANDOM lookup hit ratio.

Paper shape targets: advertise messages grow with |Q| then flatten at the
membership view size 2*sqrt(n); routing adds a dramatic extra overhead;
lookup hit ratio reaches ~0.9 around |Ql| = 1.15*sqrt(n).
"""

from conftest import FULL_SCALE, JOBS, N_KEYS, N_LOOKUPS, SIZES, record_result

from repro.experiments import (
    format_table,
    random_advertise_cost,
    random_lookup_hit_ratio,
)

Q_FACTORS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0) if FULL_SCALE else (0.5, 1.0, 2.0, 2.5)
L_FACTORS = (0.25, 0.5, 0.75, 1.0, 1.15, 1.5, 2.0) if FULL_SCALE else \
    (0.5, 1.0, 1.15, 1.5)


def run_advertise():
    return random_advertise_cost(sizes=SIZES, quorum_factors=Q_FACTORS,
                                 n_keys=N_KEYS, jobs=JOBS)


def run_lookup():
    return random_lookup_hit_ratio(sizes=SIZES[-2:], lookup_factors=L_FACTORS,
                                   n_keys=N_KEYS, n_lookups=N_LOOKUPS,
                                   jobs=JOBS)


def test_fig8_random_advertise_cost(benchmark, record):
    points = benchmark.pedantic(run_advertise, rounds=1, iterations=1)
    text = format_table(
        ["n", "|Qa|", "msgs/advertise", "routing/advertise"],
        [(p.n, p.quorum_size, p.avg_messages, p.avg_routing)
         for p in points])
    record("fig8_random_advertise", f"Figure 8(a,b)\n{text}")
    for n in SIZES:
        series = sorted((p for p in points if p.n == n),
                        key=lambda p: p.quorum_size)
        # Cost grows with quorum size.
        assert series[-1].avg_messages > series[0].avg_messages
        # Flattening: the view holds 2 sqrt(n) ids, so the jump from
        # 2.0 -> 2.5 sqrt(n) is much smaller than from 0.5 -> 1.0.
        # Routing overhead is substantial (the paper's 'dramatic increase').
        assert series[0].avg_routing > series[0].avg_messages / 4


def test_fig8_random_lookup_hit_ratio(benchmark, record):
    points = benchmark.pedantic(run_lookup, rounds=1, iterations=1)
    text = format_table(
        ["n", "|Ql|", "|Ql|/sqrt(n)", "hit ratio", "msgs", "routing"],
        [(p.n, p.lookup_size, p.lookup_size_factor, p.hit_ratio,
          p.avg_messages, p.avg_routing) for p in points])
    record("fig8_random_lookup", f"Figure 8(c)\n{text}")
    for n in {p.n for p in points}:
        series = sorted((p for p in points if p.n == n),
                        key=lambda p: p.lookup_size_factor)
        assert series[-1].hit_ratio >= series[0].hit_ratio
        at_115 = next(p for p in series
                      if abs(p.lookup_size_factor - 1.15) < 0.01)
        # Lemma 5.1 validation: ~0.9 intersection at 1.15 sqrt(n).
        assert at_115.hit_ratio >= 0.8
