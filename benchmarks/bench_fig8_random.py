"""Figure 8 — RANDOM advertise cost and RANDOM lookup hit ratio.

Paper shape targets: advertise messages grow with |Q| then flatten at the
membership view size 2*sqrt(n); routing adds a dramatic extra overhead;
lookup hit ratio reaches ~0.9 around |Ql| = 1.15*sqrt(n).
"""

import json
import math
import time
from dataclasses import replace

from conftest import (
    BENCH_TIMINGS_PATH,
    FULL_SCALE,
    JOBS,
    N_KEYS,
    N_LOOKUPS,
    SIZES,
    record_result,
)

from repro.core.strategies import RandomStrategy
from repro.experiments import (
    format_table,
    random_advertise_cost,
    random_lookup_hit_ratio,
    run_replicated,
    scenario_config,
)
from repro.experiments.common import make_membership, run_scenario
from repro.experiments.montecarlo import scenario_stats_equal

Q_FACTORS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0) if FULL_SCALE else (0.5, 1.0, 2.0, 2.5)
L_FACTORS = (0.25, 0.5, 0.75, 1.0, 1.15, 1.5, 2.0) if FULL_SCALE else \
    (0.5, 1.0, 1.15, 1.5)


def run_advertise():
    return random_advertise_cost(sizes=SIZES, quorum_factors=Q_FACTORS,
                                 n_keys=N_KEYS, jobs=JOBS)


def run_lookup():
    return random_lookup_hit_ratio(sizes=SIZES[-2:], lookup_factors=L_FACTORS,
                                   n_keys=N_KEYS, n_lookups=N_LOOKUPS,
                                   jobs=JOBS)


def test_fig8_random_advertise_cost(benchmark, record):
    points = benchmark.pedantic(run_advertise, rounds=1, iterations=1)
    text = format_table(
        ["n", "|Qa|", "msgs/advertise", "routing/advertise"],
        [(p.n, p.quorum_size, p.avg_messages, p.avg_routing)
         for p in points])
    record("fig8_random_advertise", f"Figure 8(a,b)\n{text}")
    for n in SIZES:
        series = sorted((p for p in points if p.n == n),
                        key=lambda p: p.quorum_size)
        # Cost grows with quorum size.
        assert series[-1].avg_messages > series[0].avg_messages
        # Flattening: the view holds 2 sqrt(n) ids, so the jump from
        # 2.0 -> 2.5 sqrt(n) is much smaller than from 0.5 -> 1.0.
        # Routing overhead is substantial (the paper's 'dramatic increase').
        assert series[0].avg_routing > series[0].avg_messages / 4


def test_fig8_random_lookup_hit_ratio(benchmark, record):
    points = benchmark.pedantic(run_lookup, rounds=1, iterations=1)
    text = format_table(
        ["n", "|Ql|", "|Ql|/sqrt(n)", "hit ratio", "msgs", "routing"],
        [(p.n, p.lookup_size, p.lookup_size_factor, p.hit_ratio,
          p.avg_messages, p.avg_routing) for p in points])
    record("fig8_random_lookup", f"Figure 8(c)\n{text}")
    for n in {p.n for p in points}:
        series = sorted((p for p in points if p.n == n),
                        key=lambda p: p.lookup_size_factor)
        assert series[-1].hit_ratio >= series[0].hit_ratio
        at_115 = next(p for p in series
                      if abs(p.lookup_size_factor - 1.15) < 0.01)
        # Lemma 5.1 validation: ~0.9 intersection at 1.15 sqrt(n).
        assert at_115.hit_ratio >= 0.8


# -- Monte-Carlo replication engine: batched vs sequential -------------------

REPLICATION_REPS = 32
#: Bigger than the sweep default: route sharing amortizes better when the
#: per-replica BFS work is substantial, and the 5x gate needs headroom.
REPLICATION_N = 800 if FULL_SCALE else 300


def _replica_workload(n):
    root = math.sqrt(n)
    qa, ql = round(1.5 * root), round(1.15 * root)

    def run(net, rep_seed):
        strategy = RandomStrategy(make_membership(net, "random"))
        return run_scenario(net, strategy, strategy, advertise_size=qa,
                            lookup_size=ql, n_keys=N_KEYS,
                            n_lookups=N_LOOKUPS, seed=rep_seed)
    return run


def test_fig8_replication_backend_speedup(record):
    """R=32 replica sweep: batched backend must match the sequential loop
    replica-for-replica and beat it by >= 5x wall-clock."""
    n = REPLICATION_N
    cfg = scenario_config(n, seed=8)
    run = _replica_workload(n)

    # Pin the baseline to the fully sequential stack: with the access
    # engine default-on it would speed up the "sequential" replication
    # loop too and shrink the measured replication speedup.
    seq_cfg = replace(cfg, access_backend="sequential")
    start = time.perf_counter()
    seq = run_replicated(seq_cfg, run, reps=REPLICATION_REPS,
                         backend="sequential", base_seed=8)
    seq_s = time.perf_counter() - start

    start = time.perf_counter()
    bat = run_replicated(cfg, run, reps=REPLICATION_REPS,
                         backend="batched", base_seed=8)
    bat_s = time.perf_counter() - start

    assert seq.seeds == bat.seeds
    assert all(scenario_stats_equal(a, b)
               for a, b in zip(seq.stats, bat.stats))

    speedup = seq_s / bat_s
    entry = {
        "n": n,
        "reps": REPLICATION_REPS,
        "n_keys": N_KEYS,
        "n_lookups": N_LOOKUPS,
        "sequential_seconds": round(seq_s, 3),
        "batched_seconds": round(bat_s, 3),
        "speedup": round(speedup, 2),
        "statistic_identical": True,
    }
    # Merge into BENCH_simnet.json now; the session-finish hook re-reads
    # the file before writing timings, so this block survives.
    payload = {}
    if BENCH_TIMINGS_PATH.exists():
        try:
            payload = json.loads(BENCH_TIMINGS_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            payload = {}
    payload["replication"] = entry
    BENCH_TIMINGS_PATH.write_text(json.dumps(payload, indent=2,
                                             sort_keys=True) + "\n")
    record("fig8_replication", format_table(
        ["n", "reps", "seq (s)", "batched (s)", "speedup"],
        [(n, REPLICATION_REPS, entry["sequential_seconds"],
          entry["batched_seconds"], entry["speedup"])]))
    hit = bat.mean("hit_ratio")
    pm = bat.halfwidth("hit_ratio")
    print(f"\n[replication] R={REPLICATION_REPS} n={n}: sequential "
          f"{seq_s:.2f}s, batched {bat_s:.2f}s ({speedup:.1f}x), "
          f"hit ratio {hit:.3f}±{pm:.3f}")
    assert speedup >= 5.0, (
        f"batched replication only {speedup:.1f}x faster than sequential")
