"""Figure 13 — fast mobility WITHOUT reply-path repair.

Paper shape targets: the hit ratio deteriorates as max speed grows 2 -> 20
m/s, but the *intersection probability itself* does not (RW salvation
keeps the walks alive); the loss is reply messages dropped on the broken
reverse path, and it worsens with speed.
"""

from conftest import FULL_SCALE, JOBS, N_DEFAULT, N_KEYS, N_LOOKUPS, record_result

from repro.experiments import format_table, mobility_sweep

SPEEDS = (2.0, 5.0, 10.0, 20.0)


def run():
    return mobility_sweep(n=N_DEFAULT, speeds=SPEEDS, local_repair=False,
                          n_keys=N_KEYS, n_lookups=N_LOOKUPS, jobs=JOBS)


def run_no_salvation():
    return mobility_sweep(n=N_DEFAULT, speeds=(20.0,), local_repair=False,
                          salvation=False, n_keys=N_KEYS,
                          n_lookups=N_LOOKUPS, jobs=JOBS)


def test_fig13_mobility_without_repair(benchmark, record):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["speed m/s", "hit ratio", "intersection", "reply drops", "msgs"],
        [(p.max_speed, p.hit_ratio, p.intersection_ratio,
          p.reply_drop_ratio, p.avg_messages) for p in points])
    record("fig13_mobility", f"Figure 13 (no reply repair)\n{text}")
    slow = points[0]
    fast = points[-1]
    # Hit ratio deteriorates with speed...
    assert fast.hit_ratio <= slow.hit_ratio
    # ...but the intersection itself holds up (salvation at work)...
    assert fast.intersection_ratio >= 0.7
    # ...because the loss is in dropped replies.
    assert fast.reply_drop_ratio >= slow.reply_drop_ratio


def test_fig13_ablation_salvation(benchmark, record):
    points = benchmark.pedantic(run_no_salvation, rounds=1, iterations=1)
    text = format_table(
        ["speed m/s", "hit ratio", "intersection", "reply drops"],
        [(p.max_speed, p.hit_ratio, p.intersection_ratio,
          p.reply_drop_ratio) for p in points])
    record("fig13_ablation_salvation",
           f"RW salvation ablation @ 20 m/s\n{text}")
    # Without salvation, walks die before completing: intersection drops
    # well below the salvaged ~0.9.
    assert points[0].intersection_ratio < 0.85
