"""Ablation — Lemma 5.6's asymmetric sizing vs naive symmetric sizing.

With tau lookups per advertisement and a cheap lookup strategy, sizing the
quorums by the optimal ratio ``|Ql|/|Qa| = Cost_a / (tau * Cost_l)``
minimises the total message bill at the same epsilon.  The per-node costs
are *measured* from a symmetric calibration run (the paper's Section 5.4
prescribes exactly this: derive the ratio from the observed relative
costs), then the asymmetric sizing is applied and the totals compared.
"""

from conftest import N_DEFAULT, record_result

from repro.analysis import asymmetric_quorum_sizes, symmetric_quorum_size
from repro.core import RandomStrategy, UniquePathStrategy
from repro.experiments import (
    format_table,
    make_membership,
    make_network,
    run_scenario,
)

TAU = 10  # ten lookups per advertisement (paper's Section 5.4 example)
EPS = 0.1
N_KEYS = 6


def run_with_sizes(qa: int, ql: int, seed: int = 0):
    net = make_network(N_DEFAULT, seed=seed)
    membership = make_membership(net, "random")
    stats = run_scenario(
        net,
        advertise_strategy=RandomStrategy(membership),
        lookup_strategy=UniquePathStrategy(),
        advertise_size=qa, lookup_size=ql,
        n_keys=N_KEYS, n_lookups=N_KEYS * TAU, seed=seed + 1)
    total = (stats.advertise_messages + stats.advertise_routing
             + stats.lookup_messages_total + stats.lookup_routing_total)
    return stats, total


def run_both():
    q_sym = symmetric_quorum_size(N_DEFAULT, EPS)
    sym_stats, sym_total = run_with_sizes(q_sym, q_sym)

    # Measure the per-node access costs from the calibration run.
    cost_a = (sym_stats.avg_advertise_messages
              + sym_stats.avg_advertise_routing) / q_sym
    cost_l = max(0.25, (sym_stats.avg_lookup_messages
                        + sym_stats.avg_lookup_routing) / q_sym)
    ratio = cost_a / (TAU * cost_l)
    qa_opt, ql_opt = asymmetric_quorum_sizes(N_DEFAULT, EPS, ratio)
    qa_opt = min(qa_opt, N_DEFAULT // 2)
    ql_opt = max(2, ql_opt)
    asym_stats, asym_total = run_with_sizes(qa_opt, ql_opt)
    return (q_sym, sym_stats, sym_total, cost_a, cost_l,
            qa_opt, ql_opt, asym_stats, asym_total)


def test_ablation_asymmetric_sizing(benchmark, record):
    (q_sym, sym_stats, sym_total, cost_a, cost_l,
     qa, ql, asym_stats, asym_total) = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    text = format_table(
        ["sizing", "|Qa|", "|Ql|", "hit ratio", "total msgs"],
        [("symmetric", q_sym, q_sym, sym_stats.hit_ratio, sym_total),
         (f"asymmetric (Cost_a={cost_a:.1f}, Cost_l={cost_l:.1f})",
          qa, ql, asym_stats.hit_ratio, asym_total)])
    record("ablation_asymmetric", f"Lemma 5.6 ablation (tau={TAU})\n{text}")
    # The cost-optimal split must not lose to the naive split (some noise
    # tolerated), while preserving the intersection guarantee.
    assert asym_total <= sym_total * 1.1
    assert asym_stats.hit_ratio >= 0.75
