"""Figure 14 — reply-path local repair under fast mobility, the proactive
larger-advertise variant, and churn survivability (14f).

Paper shape targets: local repair (TTL-3 scoped + global fallback) restores
the hit ratio lost to reply drops, at a routing cost that grows with speed;
|Qa| = 3 sqrt(n) also improves the hit ratio by shortening lookups; under
batch churn with adjusted |Ql|, intersection degrades only slowly
(0.95 -> ~0.87 at 50%).
"""

from conftest import FULL_SCALE, JOBS, N_DEFAULT, N_KEYS, N_LOOKUPS, record_result

from repro.experiments import churn_sweep, format_table, mobility_sweep

SPEEDS = (2.0, 5.0, 10.0, 20.0)
CHURN = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def run_repair():
    return mobility_sweep(n=N_DEFAULT, speeds=SPEEDS, local_repair=True,
                          n_keys=N_KEYS, n_lookups=N_LOOKUPS, jobs=JOBS)


def run_no_repair():
    return mobility_sweep(n=N_DEFAULT, speeds=(20.0,), local_repair=False,
                          n_keys=N_KEYS, n_lookups=N_LOOKUPS, jobs=JOBS)


def run_bigger_advertise():
    return mobility_sweep(n=N_DEFAULT, speeds=(20.0,), local_repair=False,
                          advertise_factor=3.0, n_keys=N_KEYS,
                          n_lookups=N_LOOKUPS, jobs=JOBS)


def run_churn():
    return churn_sweep(n=N_DEFAULT, fractions=CHURN, n_keys=N_KEYS,
                       n_lookups=N_LOOKUPS, jobs=JOBS)


def test_fig14_reply_path_repair(benchmark, record):
    points = benchmark.pedantic(run_repair, rounds=1, iterations=1)
    text = format_table(
        ["speed m/s", "hit ratio", "intersection", "reply drops",
         "msgs", "routing"],
        [(p.max_speed, p.hit_ratio, p.intersection_ratio,
          p.reply_drop_ratio, p.avg_messages, p.avg_routing)
         for p in points])
    record("fig14_repair", f"Figure 14(a-d) with local repair\n{text}")
    base = run_no_repair()[0]
    fast = points[-1]
    # Repair restores the hit ratio at 20 m/s...
    assert fast.hit_ratio >= base.hit_ratio
    # ...by spending routing on repairs.
    assert fast.avg_routing >= points[0].avg_routing


def test_fig14e_bigger_advertise_quorum(benchmark, record):
    points = benchmark.pedantic(run_bigger_advertise, rounds=1, iterations=1)
    base = run_no_repair()[0]
    text = format_table(
        ["advertise factor", "speed", "hit ratio", "reply drops"],
        [(p.advertise_factor, p.max_speed, p.hit_ratio, p.reply_drop_ratio)
         for p in points + [base]])
    record("fig14e_bigger_advertise",
           f"Figure 14(e): |Qa|=3sqrt(n) vs 2sqrt(n) @ 20 m/s\n{text}")
    # A larger advertise quorum shortens lookups -> higher hit ratio.
    assert points[0].hit_ratio >= base.hit_ratio - 0.02


def test_fig14f_churn(benchmark, record):
    points = benchmark.pedantic(run_churn, rounds=1, iterations=1)
    text = format_table(
        ["churn fraction", "hit ratio", "analytic floor"],
        [(p.churn_fraction, p.hit_ratio, p.analytic_floor) for p in points])
    record("fig14f_churn", f"Figure 14(f) (eps=0.05, d_avg=15)\n{text}")
    series = sorted(points, key=lambda p: p.churn_fraction)
    # Outstanding survivability: slow degradation with churn.
    assert series[0].hit_ratio >= 0.85
    assert series[-1].hit_ratio >= 0.55
    # Monotone-ish decline.
    assert series[-1].hit_ratio <= series[0].hit_ratio + 0.05
