"""Figure 10 — RANDOM advertise with UNIQUE-PATH lookup (mobile walking
speed), plus the early-halting / reply-reduction ablation.

Paper shape targets: ~0.9 hit ratio at |Ql| = 1.15 sqrt(n); a *hit* costs
fewer than |Ql| messages including the reply (early halting + reply-path
reduction + self-inclusion); performance identical in static and
walking-speed mobile networks.
"""

from conftest import FULL_SCALE, JOBS, N_DEFAULT, N_KEYS, N_LOOKUPS, record_result

from repro.experiments import (
    ablation_early_halting,
    format_table,
    unique_path_lookup,
)

FACTORS = (0.25, 0.5, 0.75, 1.0, 1.15, 1.5, 2.0) if FULL_SCALE else \
    (0.5, 1.0, 1.15, 1.5)


def run_sweep():
    return unique_path_lookup(n=N_DEFAULT, lookup_factors=FACTORS,
                              mobility="waypoint", max_speed=2.0,
                              n_keys=N_KEYS, n_lookups=N_LOOKUPS,
                              miss_fraction=0.2, jobs=JOBS)


def run_ablation():
    return ablation_early_halting(n=N_DEFAULT, n_keys=N_KEYS,
                                  n_lookups=N_LOOKUPS)


def test_fig10_unique_path_lookup(benchmark, record):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        ["n", "|Ql|", "factor", "hit ratio", "msgs", "msgs(hit)",
         "msgs(miss)"],
        [(p.n, p.lookup_size, p.lookup_size_factor, p.hit_ratio,
          p.avg_messages, p.avg_messages_on_hit, p.avg_messages_on_miss)
         for p in points])
    record("fig10_unique_path", f"Figure 10 (mobile 0.5-2 m/s)\n{text}")
    series = sorted(points, key=lambda p: p.lookup_size_factor)
    assert series[-1].hit_ratio >= series[0].hit_ratio
    at_115 = next(p for p in series if abs(p.lookup_size_factor - 1.15) < 0.01)
    # Mix-and-match validation: non-random lookup intersects like random.
    assert at_115.hit_ratio >= 0.8
    # The paper's surprise: a hit needs fewer than |Ql| messages in total.
    assert at_115.avg_messages_on_hit < at_115.lookup_size
    # A miss pays for the whole walk.
    assert at_115.avg_messages_on_miss >= at_115.lookup_size - 2


def test_fig10_ablation_optimizations(benchmark, record):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = format_table(
        ["early halting", "reply reduction", "hit ratio", "msgs(hit)"],
        [(r.early_halting, r.reply_reduction, r.hit_ratio,
          r.avg_messages_on_hit) for r in rows])
    record("fig10_ablation", f"Section 7 optimizations ablation\n{text}")
    full = next(r for r in rows if r.early_halting and r.reply_reduction)
    none = next(r for r in rows
                if not r.early_halting and not r.reply_reduction)
    # Early halting roughly halves the walk on a hit.
    assert full.avg_messages_on_hit < none.avg_messages_on_hit
