"""Figure 5 — flooding coverage and coverage granularity vs TTL.

Paper shape targets: coverage grows superlinearly with TTL; CG(3) > 2 and
CG(4)/CG(5) between ~1.25 and ~1.9 — i.e. flooding cannot be tuned at a
fine granularity.
"""

from conftest import FULL_SCALE, SIZES, record_result

from repro.experiments import (
    flooding_by_density,
    flooding_by_size,
    format_table,
)

TTLS = (1, 2, 3, 4, 5, 6) if FULL_SCALE else (1, 2, 3, 4, 5)
FLOODS = 12 if FULL_SCALE else 6
DENSITIES = (7, 10, 15, 20, 25) if FULL_SCALE else (7, 10, 20)


def run_by_size():
    return flooding_by_size(sizes=SIZES, ttls=TTLS, floods_per_ttl=FLOODS)


def run_by_density():
    return flooding_by_density(densities=DENSITIES, n=max(SIZES), ttls=TTLS,
                               floods_per_ttl=FLOODS)


def test_fig5_coverage_by_size(benchmark, record):
    points = benchmark.pedantic(run_by_size, rounds=1, iterations=1)
    text = format_table(
        ["n", "d_avg", "ttl", "coverage", "messages", "CG"],
        [(p.n, p.avg_degree, p.ttl, p.coverage, p.messages, p.granularity)
         for p in points])
    record("fig5_coverage_by_size", f"Figure 5(a,c)\n{text}")
    biggest = [p for p in points if p.n == max(SIZES)]
    cg = {p.ttl: p.granularity for p in biggest}
    # CG(3) is large; granularity shrinks with TTL (superlinear coverage,
    # coarse early control).
    assert cg[3] > 1.6
    assert cg[3] > cg[max(TTLS)]


def test_fig5_coverage_by_density(benchmark, record):
    points = benchmark.pedantic(run_by_density, rounds=1, iterations=1)
    text = format_table(
        ["n", "d_avg", "ttl", "coverage", "messages", "CG"],
        [(p.n, p.avg_degree, p.ttl, p.coverage, p.messages, p.granularity)
         for p in points])
    record("fig5_coverage_by_density", f"Figure 5(b,d)\n{text}")
    # Denser networks cover more nodes at the same TTL.
    at_ttl3 = {p.avg_degree: p.coverage for p in points if p.ttl == 3}
    assert at_ttl3[max(at_ttl3)] > at_ttl3[min(at_ttl3)]
