"""Figure 3 — asymptotic / qualitative comparison of access strategies.

Regenerates the paper's strategy-comparison table for a concrete n, from
the cost model in :mod:`repro.analysis.costs`.
"""

from conftest import N_DEFAULT, record_result

from repro.analysis import figure3_table
from repro.experiments import format_table


def build_table(n: int):
    return figure3_table(n)


def test_fig3_strategy_table(benchmark, record):
    rows = benchmark(build_table, N_DEFAULT)
    text = format_table(
        ["strategy", "accessed", "cost on RGG (msgs)", "routing?",
         "membership?", "replies", "early halt?"],
        [(r["strategy"], r["accessed_nodes"], r["cost_rgg"],
          r["needs_routing"], r["needs_membership"], r["lookup_replies"],
          r["early_halting"]) for r in rows],
    )
    record("fig3_strategy_table", f"Figure 3 @ n={N_DEFAULT}\n{text}")
    # Shape assertions from the paper's table.
    costs = {r["strategy"]: r["cost_rgg"] for r in rows}
    assert costs["PATH"] < costs["RANDOM"] < costs["RANDOM-SAMPLING"]
    assert costs["FLOODING"] <= costs["PATH"]
