"""Figure 7 — degradation of intersection probability vs churn fraction.

Paper shape targets: failures-only with constant |Ql| does not degrade at
all; joins degrade slowly; fail+join at 30% keeps intersection just below
0.9 when starting from 0.95.
"""

from conftest import FULL_SCALE, record_result

from repro.experiments import CHURN_MODES, degradation_curves, format_table

TRIALS = 2000 if FULL_SCALE else 400
N = 800 if FULL_SCALE else 300
FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def run():
    return degradation_curves(epsilon=0.05, fractions=FRACTIONS, n=N,
                              trials=TRIALS, modes=CHURN_MODES)


def test_fig7_degradation(benchmark, record):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["mode", "f", "analytic intersection", "simulated intersection"],
        [(p.mode, p.f, p.analytic_intersection, p.simulated_intersection)
         for p in points])
    record("fig7_degradation", f"Figure 7 (eps=0.05, n={N})\n{text}")

    by_mode = {}
    for p in points:
        by_mode.setdefault(p.mode, {})[p.f] = p

    # Case 1: failures with constant |Ql| never degrade (paper's highlight).
    fc = by_mode["failures-constant"]
    assert all(p.analytic_intersection == fc[0.0].analytic_intersection
               for p in fc.values())
    assert fc[0.5].simulated_intersection >= 0.9

    # Paper example: 30% fail+join -> intersection slightly below 0.9.
    both = by_mode["both"][0.3]
    assert 0.85 <= both.analytic_intersection <= 0.93
    # Simulation at least matches the analytic lower bound.
    assert both.simulated_intersection >= both.analytic_intersection - 0.05
