"""Ablation — promiscuous overhearing (Section 7.2, the paper's future-work
optimization) and the gossip-flood advertise variant (Section 4.4).

Overhearing widens a lookup walk's effective quorum to its one-hop
neighborhood, so the same hit ratio needs a far shorter walk.  The
gossip-flood advertise is a membership-free uniform-random quorum whose
per-access cost is a full-network flood.
"""

import math

from conftest import N_DEFAULT, N_KEYS, N_LOOKUPS, record_result

from repro.core import GossipFloodStrategy, RandomStrategy, UniquePathStrategy
from repro.experiments import (
    format_table,
    make_membership,
    make_network,
    run_scenario,
)


def run_overhearing():
    results = {}
    qa = max(1, round(2.0 * math.sqrt(N_DEFAULT)))
    ql = max(1, round(1.15 * math.sqrt(N_DEFAULT)))
    for overhearing in (False, True):
        net = make_network(N_DEFAULT, seed=3)
        membership = make_membership(net, "random")
        stats = run_scenario(
            net,
            advertise_strategy=RandomStrategy(membership),
            lookup_strategy=UniquePathStrategy(overhearing=overhearing),
            advertise_size=qa, lookup_size=ql,
            n_keys=N_KEYS, n_lookups=N_LOOKUPS, seed=4)
        results[overhearing] = stats
    return results


def run_gossip():
    qa = max(1, round(2.0 * math.sqrt(N_DEFAULT)))
    ql = max(1, round(1.15 * math.sqrt(N_DEFAULT)))
    net = make_network(N_DEFAULT, seed=5)
    return run_scenario(
        net,
        advertise_strategy=GossipFloodStrategy(),
        lookup_strategy=UniquePathStrategy(),
        advertise_size=qa, lookup_size=ql,
        n_keys=N_KEYS, n_lookups=N_LOOKUPS, seed=6)


def test_ablation_overhearing(benchmark, record):
    results = benchmark.pedantic(run_overhearing, rounds=1, iterations=1)
    off, on = results[False], results[True]
    text = format_table(
        ["overhearing", "hit ratio", "msgs/lookup", "walk quorum"],
        [("off", off.hit_ratio, off.avg_lookup_messages,
          sum(off.lookup_quorum_sizes) / max(1, len(off.lookup_quorum_sizes))),
         ("on", on.hit_ratio, on.avg_lookup_messages,
          sum(on.lookup_quorum_sizes) / max(1, len(on.lookup_quorum_sizes)))])
    record("ablation_overhearing", f"Section 7.2 overhearing\n{text}")
    # Overhearing must not hurt the hit ratio and shortens walks.
    assert on.hit_ratio >= off.hit_ratio - 0.05
    assert on.avg_lookup_messages <= off.avg_lookup_messages


def test_gossip_flood_advertise(benchmark, record):
    stats = benchmark.pedantic(run_gossip, rounds=1, iterations=1)
    text = format_table(
        ["advertise", "lookup", "hit ratio", "adv msgs", "lookup msgs"],
        [("GOSSIP-FLOOD", "UNIQUE-PATH", stats.hit_ratio,
          stats.avg_advertise_messages, stats.avg_lookup_messages)])
    record("ablation_gossip_flood", f"Section 4.4 gossip advertise\n{text}")
    # Uniform-random membership-free advertise: mix-and-match holds.
    assert stats.hit_ratio >= 0.8
    # Cost profile: a whole-network flood per advertise.
    assert stats.avg_advertise_messages >= 0.6 * N_DEFAULT
