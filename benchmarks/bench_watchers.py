"""Live invariant watchers — overhead gate on the Figure-8 workload.

Methodology: wall-clocking a watched run against an unwatched run is
hopelessly noisy at the <5% scale this gate cares about (container
scheduling drifts run times by 10-15%).  What the watchers *add* to a
traced run is exactly hub delivery — ``hub.on_event`` per recorded
event plus ``finish()`` — so the gate times that addition directly:

1. capture the bench_fig8 event stream once (one traced run),
2. time the traced run itself (min over repetitions, CPU time),
3. time delivering the captured stream through every builtin watcher
   (min over repetitions — a tight, repeatable loop),
4. gate: delivery time < 5% of the traced-run time.

The trace-off run time is also recorded: event *delivery* rides on
event *recording*, and enabling tracing at all costs far more than the
watchers do.  That number keeps the full ``--watch`` price visible in
``BENCH_simnet.json`` (block ``"watchers"``); the gate covers the part
this subsystem adds.
"""

import json
import math
import time

from conftest import BENCH_TIMINGS_PATH, FULL_SCALE, N_KEYS, N_LOOKUPS, record_result

from repro.core.strategies import RandomStrategy
from repro.experiments.common import make_membership, make_network, run_scenario
from repro.obs.watch import WatcherHub, builtin_watchers

BENCH_N = 1500 if FULL_SCALE else 800
ROUNDS = 5           # min-of-R: robust to scheduler noise
DELIVERY_ROUNDS = 7
MAX_OVERHEAD_PCT = 5.0


def _workload(net, seed: int) -> None:
    root = math.sqrt(BENCH_N)
    strategy = RandomStrategy(make_membership(net, "random"))
    run_scenario(net, strategy, strategy,
                 advertise_size=round(1.5 * root),
                 lookup_size=round(1.15 * root),
                 n_keys=N_KEYS, n_lookups=N_LOOKUPS, seed=seed)


def _timed_run(mode: str, seed: int = 1) -> float:
    net = make_network(BENCH_N, seed=seed)
    if mode == "trace":
        net.trace.enable(memory=False)
    start = time.process_time()
    _workload(net, seed)
    return time.process_time() - start


def _capture_stream(seed: int = 1) -> list:
    net = make_network(BENCH_N, seed=seed)
    net.trace.enable(memory=True, retention=1 << 22)
    _workload(net, seed)
    return net.trace.events()


def test_watcher_overhead_gate(record):
    events = _capture_stream()

    _timed_run("off")  # warm numpy kernels/caches off the clock
    base_off = min(_timed_run("off") for _ in range(ROUNDS))
    base_trace = min(_timed_run("trace") for _ in range(ROUNDS))

    delivery = 9e9
    hub = None
    for _ in range(DELIVERY_ROUNDS):
        hub = WatcherHub(builtin_watchers(n=BENCH_N))
        on_event = hub.on_event
        start = time.process_time()
        for event in events:
            on_event(event)
        hub.finish()
        delivery = min(delivery, time.process_time() - start)
        # The timed hub must have actually watched: every builtin
        # attached, the full stream delivered, and the workload clean.
        assert len(hub.watchers) == 4
        assert hub.events_seen == len(events)
        assert hub.clean, hub.violations[:5]

    overhead_pct = 100.0 * delivery / base_trace
    delivery_pct = 100.0 * (base_trace / base_off - 1.0)

    entry = {
        "n": BENCH_N,
        "n_keys": N_KEYS,
        "n_lookups": N_LOOKUPS,
        "events": len(events),
        "rounds": ROUNDS,
        "baseline_seconds": round(base_off, 4),
        "trace_seconds": round(base_trace, 4),
        "watch_delivery_seconds": round(delivery, 4),
        "ns_per_event": round(delivery / len(events) * 1e9),
        "watcher_overhead_pct": round(overhead_pct, 2),
        "trace_delivery_pct": round(delivery_pct, 2),
        "gate_pct": MAX_OVERHEAD_PCT,
    }
    payload = {}
    if BENCH_TIMINGS_PATH.exists():
        try:
            payload = json.loads(BENCH_TIMINGS_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload["watchers"] = entry
    BENCH_TIMINGS_PATH.write_text(json.dumps(payload, indent=2,
                                             sort_keys=True) + "\n")
    record_result("watcher_overhead", json.dumps(entry, indent=2))
    print(f"\n[watchers] n={BENCH_N}: {len(events)} events; trace-off "
          f"{base_off:.3f}s, traced {base_trace:.3f}s, watch delivery "
          f"{delivery * 1000:.1f}ms ({entry['ns_per_event']} ns/event) -> "
          f"{overhead_pct:.2f}% of the traced run "
          f"(tracing itself: +{delivery_pct:.1f}%)")

    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"all-watchers-on delivery is {overhead_pct:.2f}% of the traced "
        f"bench_fig8 run (gate {MAX_OVERHEAD_PCT}%)")
