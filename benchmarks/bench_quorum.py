"""Quorum-algebra bench: optimizer cost and predicted-vs-simulated load.

Produces the ``quorum_algebra`` block of ``BENCH_simnet.json``:

* per-system LP solve time plus the predicted load at fr=0.5 (majority-5
  must hit 3/5, the 3x3 grid 1/3 — the known Naor–Wool optima);
* the exact-vs-multiplicative-weights solver gap (the numpy fallback
  must track the scipy optimum to ~1e-2);
* the simulator cross-check: max per-node |predicted - simulated| load
  across a replicated run, with the within-CI verdict the strict-audit
  CI lane enforces.
"""

import json
import time

from conftest import BENCH_TIMINGS_PATH, FULL_SCALE

from repro.experiments import format_table
from repro.experiments.fig_quorum import quorum_load_point
from repro.quorum import build_system, solve_strategy

REPS = 16 if FULL_SCALE else 8
OPS = 100 if FULL_SCALE else 60
SYSTEMS = (("majority", 5), ("grid", 9), ("chain", 7))


def _merge_block(key, entry):
    payload = {}
    if BENCH_TIMINGS_PATH.exists():
        try:
            payload = json.loads(BENCH_TIMINGS_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            payload = {}
    block = payload.setdefault("quorum_algebra", {})
    block[key] = entry
    BENCH_TIMINGS_PATH.write_text(json.dumps(payload, indent=2,
                                             sort_keys=True) + "\n")


def test_quorum_optimizer_and_cross_check(record):
    rows = []
    for name, m in SYSTEMS:
        qs = build_system(name, range(m))
        started = time.perf_counter()
        sigma = solve_strategy(qs)
        solve_s = time.perf_counter() - started
        mw = solve_strategy(qs, solver="numpy")
        mw_delta = abs(mw.load() - sigma.load())
        assert mw_delta < 0.03, (
            f"{name}: numpy-MW load {mw.load():.4f} drifts from exact "
            f"{sigma.load():.4f}")
        point = quorum_load_point(name, 0.5, n=40, m=m, reps=REPS,
                                  ops=OPS, seed=0)
        assert point.within_ci, (
            f"{name}: simulated load beyond the CI of the prediction")
        assert point.hit_ratio == 1.0
        rows.append((name, m, len(sigma.read_quorums),
                     round(sigma.load(), 4), round(mw_delta, 4),
                     round(point.simulated_load, 4),
                     round(point.max_gap, 4), round(solve_s * 1e3, 2)))
        _merge_block(name, {
            "m": m,
            "read_quorums": len(sigma.read_quorums),
            "solver": sigma.solver,
            "predicted_load": round(sigma.load(), 6),
            "mw_delta": round(mw_delta, 6),
            "simulated_load": round(point.simulated_load, 6),
            "max_node_gap": round(point.max_gap, 6),
            "within_ci": bool(point.within_ci),
            "reps": point.reps,
            "ops_per_replica": OPS,
            "solve_ms": round(solve_s * 1e3, 3),
        })
    known = {"majority": 3 / 5, "grid": 1 / 3}
    for row in rows:
        if row[0] in known:
            assert abs(row[3] - known[row[0]]) < 1e-4
    record("quorum_algebra", format_table(
        ["system", "m", "|reads|", "pred load", "mw delta", "sim load",
         "max gap", "solve ms"], rows))
