"""KV serving benchmark — the batched workload kernel at a million ops.

Produces the ``kvstore`` block of ``BENCH_simnet.json``:

* the million-op gate: one seeded batched point (>= 1M operations)
  must complete in seconds with a clean consistency check and a stale
  fraction inside the lease analysis' replication interval;
* a lease-TTL sweep showing the measured stale-read fraction tracking
  :func:`repro.analysis.leases.stale_read_probability_exact` cell by
  cell (the ``repro kv`` figure's acceptance criterion);
* a sequential-backend smoke point (the live network path that the
  golden kv trace pins byte for byte).
"""

import json
import math
import time

from conftest import (
    BENCH_TIMINGS_PATH,
    FULL_SCALE,
    record_result,
)

from repro.experiments import (
    KVPointConfig,
    WorkloadSpec,
    format_table,
    kv_sweep,
    run_workload_batched,
)

GATE_OPS = 2_000_000 if FULL_SCALE else 1_000_000


def _merge_block(key, entry):
    payload = {}
    if BENCH_TIMINGS_PATH.exists():
        try:
            payload = json.loads(BENCH_TIMINGS_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            payload = {}
    block = payload.setdefault("kvstore", {})
    block[key] = entry
    BENCH_TIMINGS_PATH.write_text(json.dumps(payload, indent=2,
                                             sort_keys=True) + "\n")


def test_kvstore_million_op_gate():
    """>= 1M ops through the batched kernel: seconds, clean, on-model."""
    spec = WorkloadSpec(ops=GATE_OPS, n_keys=128, read_fraction=0.92,
                        cas_fraction=0.05, arrival_rate=2000.0, seed=7)
    config = KVPointConfig(n=400, churn_rate=0.01, lease_ttl=30.0)
    start = time.perf_counter()
    stats = run_workload_batched(spec, config)
    wall = time.perf_counter() - start

    assert stats.report.clean, stats.report.lines()
    # Binomial CI on the measured stale fraction around the analytic
    # prediction (4 sigma + a small model slack).
    hw = 4.0 * math.sqrt(stats.predicted_stale
                         * (1.0 - stats.predicted_stale)
                         / stats.eligible_reads)
    on_model = abs(stats.stale_fraction
                   - stats.predicted_stale) <= hw + 1e-3
    entry = {
        "ops": GATE_OPS,
        "n": config.n,
        "lease_ttl": config.lease_ttl,
        "churn_rate": config.churn_rate,
        "seconds": round(wall, 3),
        "ops_per_second": round(GATE_OPS / wall),
        "stale_fraction": round(stats.stale_fraction, 6),
        "predicted_stale": round(stats.predicted_stale, 6),
        "availability": round(stats.availability, 6),
        "p50_s": round(stats.p50, 6),
        "p99_s": round(stats.p99, 6),
        "p999_s": round(stats.p999, 6),
        "checker_clean": stats.report.clean,
        "stale_on_model": on_model,
    }
    _merge_block("million_op_gate", entry)
    record_result("kvstore_gate", format_table(
        ["ops", "seconds", "ops/s", "stale", "predicted", "avail",
         "p99 (s)"],
        [(GATE_OPS, entry["seconds"], entry["ops_per_second"],
          entry["stale_fraction"], entry["predicted_stale"],
          entry["availability"], entry["p99_s"])]))
    print(f"\n[kvstore] {GATE_OPS} ops in {wall:.2f}s "
          f"({GATE_OPS / wall:,.0f} ops/s), stale "
          f"{stats.stale_fraction:.4f} vs predicted "
          f"{stats.predicted_stale:.4f}")
    assert wall < 60.0, f"million-op point too slow: {wall:.1f}s"
    assert on_model, (stats.stale_fraction, stats.predicted_stale, hw)


def test_kvstore_ttl_sweep_tracks_analysis():
    """Stale fraction vs lease TTL, each cell vs the exact prediction."""
    ttls = (5.0, 10.0, 20.0, 40.0, 80.0)
    ops = 400_000 if FULL_SCALE else 120_000
    start = time.perf_counter()
    cells = kv_sweep(backend="batched", ttls=ttls, rates=(2000.0,),
                     ops=ops, n=400, n_keys=128, churn_rate=0.01,
                     reps=3, seed=7)
    wall = time.perf_counter() - start
    rows, entries = [], []
    for cell in cells:
        rows.append((cell.point.ttl, round(cell.stale, 5),
                     round(cell.predicted, 5),
                     round(cell.availability, 4),
                     "yes" if cell.tracks_prediction else "NO"))
        entries.append({
            "ttl": cell.point.ttl,
            "stale": round(cell.stale, 6),
            "predicted": round(cell.predicted, 6),
            "availability": round(cell.availability, 6),
            "tracks_prediction": bool(cell.tracks_prediction),
            "violations": cell.violations,
        })
    _merge_block("ttl_sweep", {
        "ops_per_cell": ops, "reps": 3, "seconds": round(wall, 3),
        "cells": entries})
    record_result("kvstore_ttl_sweep", format_table(
        ["ttl (s)", "stale", "predicted", "avail", "on model"], rows))
    print(f"\n[kvstore] ttl sweep ({len(ttls)} cells x 3 reps, "
          f"{ops} ops each): {wall:.1f}s")
    assert all(c.violations == 0 for c in cells)
    assert all(c.tracks_prediction for c in cells), rows
    # The monotone headline: a short lease expires the newest holders
    # before readers arrive, so staleness *falls* as the TTL grows,
    # flattening onto the churn-limited floor.  The analytic curve is
    # exactly monotone; the empirical one matches it modulo the flat
    # tail, so the end-to-end drop is what gets the hard assertion.
    predicted = [c.predicted for c in cells]
    assert predicted == sorted(predicted, reverse=True), predicted
    assert cells[0].stale > cells[-1].stale + 2 * cells[-1].stale_hw


def test_kvstore_sequential_smoke():
    """The live-network path stays correct (and honest about cost)."""
    from repro.experiments.fig_kv import KVSweepPoint, evaluate_kv_point
    point = KVSweepPoint(backend="sequential", strategy="random",
                         ttl=40.0, rate=20.0, ops=300, n=100, n_keys=8,
                         read_fraction=0.85, cas_fraction=0.1,
                         zipf_s=0.99, churn_rate=0.0, epsilon=0.05,
                         min_survival=0.9)
    start = time.perf_counter()
    stats = evaluate_kv_point(point, seed=7)
    wall = time.perf_counter() - start
    assert stats.report.clean
    entry = {
        "ops": 300,
        "n": 100,
        "seconds": round(wall, 3),
        "availability": round(stats.availability, 4),
        "p50_s": round(stats.p50, 6),
        "checker_clean": stats.report.clean,
    }
    _merge_block("sequential_smoke", entry)
    print(f"\n[kvstore] sequential 300 ops: {wall:.2f}s, "
          f"availability {stats.availability:.3f}")
