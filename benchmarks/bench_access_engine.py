"""Access engine — batched numpy kernels vs the sequential hot path.

Produces the ``access_engine`` block of ``BENCH_simnet.json``:

* the R=32 replication gate (full-sequential stack vs full-batched
  stack on a mixed flood + RANDOM workload), asserting statistic
  identity replica for replica and a >= 5x wall-clock speedup;
* an n=10,000 flood micro-bench (one TTL-scoped flood, sequential vs
  batched, exact-equality checked);
* an n=10,000 Philox walker-batch throughput number;
* an n=10,000 Figure-8-style RANDOM lookup smoke run, proving the
  large-n sweep point completes in CI smoke time on the batched
  backend.
"""

import json
import math
import time
from dataclasses import replace

from conftest import (
    BENCH_TIMINGS_PATH,
    FULL_SCALE,
    record_result,
)

from repro.core.access_engine import walk_batch
from repro.core.strategies import FloodingStrategy, RandomStrategy
from repro.experiments import format_table, run_replicated, scenario_config
from repro.experiments.common import make_membership, run_scenario
from repro.experiments.montecarlo import scenario_stats_equal
from repro.geometry.csr import build_true_csr
from repro.simnet.network import NetworkConfig, SimNetwork

GATE_REPS = 32
#: The mixed workload spends roughly half its sequential time in flood
#: broadcasts, where the batched edge grows with n (the python loop is
#: linear per round, the numpy gather sublinear) — so the 5x gate wants
#: a slightly larger deployment than the pure-RANDOM replication bench.
GATE_N = 800 if FULL_SCALE else 500

#: Supercritical RGG connectivity needs avg_degree > ln(n) ~ 9.2 at
#: n=10,000; the fig-8 deployment pins avg_degree=10, so a giant
#: component is overwhelmingly likely but full connectivity is not —
#: the large-n points therefore skip the connectivity retry loop.
BIG_N = 10_000


def _merge_block(key, entry):
    payload = {}
    if BENCH_TIMINGS_PATH.exists():
        try:
            payload = json.loads(BENCH_TIMINGS_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            payload = {}
    block = payload.setdefault("access_engine", {})
    block[key] = entry
    BENCH_TIMINGS_PATH.write_text(json.dumps(payload, indent=2,
                                             sort_keys=True) + "\n")


def _mixed_workload(n):
    """Flood advertises + RANDOM lookups: exercises every kernel."""
    root = math.sqrt(n)
    qa, ql = round(1.5 * root), round(1.15 * root)

    def run(net, rep_seed):
        adv = FloodingStrategy()  # size unused: analytic TTL floods
        lookup = RandomStrategy(make_membership(net, "random"))
        # 4 floods + 100 routed lookups: every kernel runs, while the
        # mix keeps enough route work for the 5x gate to hold with
        # headroom (flood replay is python-linear on both backends by
        # design — side effects must land in sequential order).
        return run_scenario(net, adv, lookup, advertise_size=qa,
                            lookup_size=ql, n_keys=4,
                            n_lookups=100, seed=rep_seed)
    return run


def test_access_engine_replication_gate(record):
    """R=32 gate: the batched access engine must reproduce the fully
    sequential stack bit for bit and beat it >= 5x end to end."""
    n = GATE_N
    cfg = scenario_config(n, seed=8)
    run = _mixed_workload(n)

    seq_cfg = replace(cfg, access_backend="sequential")
    start = time.perf_counter()
    seq = run_replicated(seq_cfg, run, reps=GATE_REPS,
                         backend="sequential", base_seed=8)
    seq_s = time.perf_counter() - start

    start = time.perf_counter()
    bat = run_replicated(cfg, run, reps=GATE_REPS,
                         backend="batched", base_seed=8)
    bat_s = time.perf_counter() - start

    assert seq.seeds == bat.seeds
    identical = all(scenario_stats_equal(a, b)
                    for a, b in zip(seq.stats, bat.stats))
    assert identical

    speedup = seq_s / bat_s
    entry = {
        "n": n,
        "reps": GATE_REPS,
        "workload": "flood-advertise + random-lookup",
        "sequential_seconds": round(seq_s, 3),
        "batched_seconds": round(bat_s, 3),
        "speedup": round(speedup, 2),
        "statistic_identical": identical,
    }
    _merge_block("replication_gate", entry)
    record("access_engine_gate", format_table(
        ["n", "reps", "seq (s)", "batched (s)", "speedup"],
        [(n, GATE_REPS, entry["sequential_seconds"],
          entry["batched_seconds"], entry["speedup"])]))
    print(f"\n[access-engine] R={GATE_REPS} n={n}: sequential {seq_s:.2f}s,"
          f" batched {bat_s:.2f}s ({speedup:.1f}x)")
    assert speedup >= 5.0, (
        f"batched access engine only {speedup:.1f}x faster")


def _big_config(backend):
    return scenario_config(BIG_N, seed=2, require_connected=False,
                           access_backend=backend)


def test_access_engine_flood_10k():
    """One n=10k flood: batched rounds vs the python broadcast loop."""
    ttl = 64
    seq_net = SimNetwork(_big_config("sequential"))
    start = time.perf_counter()
    seq_out = seq_net.flood(0, ttl)
    seq_s = time.perf_counter() - start

    bat_net = SimNetwork(_big_config("batched"))
    start = time.perf_counter()
    bat_out = bat_net.flood(0, ttl)
    bat_s = time.perf_counter() - start

    assert list(seq_out.covered.items()) == list(bat_out.covered.items())
    assert seq_out.parent == bat_out.parent
    assert seq_out.messages == bat_out.messages
    assert seq_net.sim.now == bat_net.sim.now

    entry = {
        "n": BIG_N,
        "ttl": ttl,
        "covered": len(bat_out.covered),
        "messages": bat_out.messages,
        "sequential_seconds": round(seq_s, 3),
        "batched_seconds": round(bat_s, 3),
        "speedup": round(seq_s / bat_s, 2),
        "statistic_identical": True,
    }
    _merge_block("flood_10k", entry)
    print(f"\n[access-engine] n={BIG_N} flood: sequential {seq_s:.2f}s, "
          f"batched {bat_s:.2f}s ({seq_s / bat_s:.1f}x), "
          f"{len(bat_out.covered)} covered")
    assert bat_s < seq_s


def test_access_engine_walk_10k():
    """Philox walker batches: whole-population steps at n=10k."""
    net = SimNetwork(_big_config("batched"))
    csr = build_true_csr(net)
    walkers, steps = 1000, 100
    starts = net.alive_nodes()[:walkers]
    timings = {}
    for variant in ("uniform", "max-degree"):
        start = time.perf_counter()
        out = walk_batch(csr, starts, steps, seed=5, variant=variant)
        timings[variant] = time.perf_counter() - start
        assert out.walkers == walkers and out.steps == steps
    entry = {
        "n": BIG_N,
        "walkers": walkers,
        "steps": steps,
        "uniform_seconds": round(timings["uniform"], 3),
        "max_degree_seconds": round(timings["max-degree"], 3),
        "steps_per_second": round(
            walkers * steps / max(timings["uniform"], 1e-9)),
    }
    _merge_block("walk_10k", entry)
    print(f"\n[access-engine] n={BIG_N} walks: {walkers}x{steps} steps, "
          f"uniform {timings['uniform']:.3f}s, "
          f"max-degree {timings['max-degree']:.3f}s")


def test_access_engine_fig8_lookup_10k():
    """Figure-8-style RANDOM point at n=10k on the batched backend.

    The acceptance bar is completion inside CI smoke time; the full
    membership view sidesteps the O(n^2) RandomMembership build, which
    is the documented large-n knob (EXPERIMENTS.md).
    """
    net = SimNetwork(_big_config("batched"))
    strategy = RandomStrategy(make_membership(net, "full"))
    root = math.sqrt(BIG_N)
    qa, ql = round(1.5 * root), round(1.15 * root)
    start = time.perf_counter()
    stats = run_scenario(net, strategy, strategy, advertise_size=qa,
                         lookup_size=ql, n_keys=2, n_lookups=6, seed=1)
    wall = time.perf_counter() - start
    entry = {
        "n": BIG_N,
        "advertise_size": qa,
        "lookup_size": ql,
        "n_keys": 2,
        "n_lookups": 6,
        "hit_ratio": round(stats.hit_ratio, 3),
        "seconds": round(wall, 3),
    }
    _merge_block("fig8_lookup_10k", entry)
    record_result("access_engine_fig8_10k", format_table(
        ["n", "|Qa|", "|Ql|", "hit ratio", "seconds"],
        [(BIG_N, qa, ql, entry["hit_ratio"], entry["seconds"])]))
    print(f"\n[access-engine] n={BIG_N} fig8 point: {wall:.2f}s, "
          f"hit ratio {stats.hit_ratio:.3f}")
    assert wall < 120.0, f"n=10k lookup point too slow for CI: {wall:.1f}s"
    assert stats.hit_ratio > 0.5
