"""Substrate micro-benchmarks: event kernel throughput, walk step rate,
flood/route primitives, and the packet-level stack.

Not a paper figure — these keep the simulator fast enough to run the
figure sweeps at paper scale and guard against performance regressions.
"""

import random

from conftest import record_result

from repro.randomwalk import random_walk
from repro.sim import Simulator
from repro.simnet import NetworkConfig, SimNetwork
from repro.stack import AdhocStack, StackConfig


def test_kernel_event_throughput(benchmark):
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_network_construction(benchmark):
    def build():
        return SimNetwork(NetworkConfig(n=200, avg_degree=10, seed=1))

    net = benchmark(build)
    assert net.n_alive == 200


def test_random_walk_steps(benchmark):
    net = SimNetwork(NetworkConfig(n=200, avg_degree=10, seed=1))
    rng = random.Random(0)

    def walk():
        return random_walk(net, 0, target_unique=20, rng=rng)

    result = benchmark(walk)
    assert result.unique_count >= 1


def test_flood_primitive(benchmark):
    net = SimNetwork(NetworkConfig(n=200, avg_degree=10, seed=1))

    def flood():
        return net.flood(0, ttl=3)

    outcome = benchmark(flood)
    assert outcome.coverage > 1


def test_route_primitive(benchmark):
    net = SimNetwork(NetworkConfig(n=200, avg_degree=10, seed=1))

    def route():
        net.invalidate_routes()
        return net.route(0, 150)

    result = benchmark.pedantic(route, rounds=20, iterations=1)
    assert result.success


def test_packet_stack_end_to_end(benchmark, record):
    def run():
        stack = AdhocStack(StackConfig(n=20, avg_degree=10, seed=3))
        stack.run(0.5)
        stack.send(0, 15, "payload")
        stack.run(5.0)
        return stack

    stack = benchmark.pedantic(run, rounds=1, iterations=1)
    record("substrate_stack",
           f"packet stack: frames={stack.total_mac_frames()} "
           f"control={stack.total_control_messages()}")
    assert ("payload", 0) in stack.delivered_to(15)
