"""Figure 11 — RANDOM advertise with FLOODING lookup.

Paper shape targets: hit ratio grows superlinearly with TTL; crossing into
the >= 0.9 regime requires a TTL step whose message cost grows
disproportionately (coarse coverage granularity).
"""

from conftest import FULL_SCALE, JOBS, N_DEFAULT, N_KEYS, N_LOOKUPS, record_result

from repro.experiments import flooding_lookup, format_table

TTLS = (1, 2, 3, 4, 5, 6) if FULL_SCALE else (1, 2, 3, 4)


def run(mobility: str):
    return flooding_lookup(n=N_DEFAULT, ttls=TTLS, mobility=mobility,
                           n_keys=N_KEYS, n_lookups=N_LOOKUPS, jobs=JOBS)


def test_fig11_flooding_lookup_static(benchmark, record):
    points = benchmark.pedantic(run, args=("static",), rounds=1, iterations=1)
    text = format_table(
        ["n", "ttl", "hit ratio", "msgs/lookup", "coverage"],
        [(p.n, p.ttl, p.hit_ratio, p.avg_messages, p.avg_coverage)
         for p in points])
    record("fig11_flooding_static", f"Figure 11 static\n{text}")
    series = sorted(points, key=lambda p: p.ttl)
    hits = [p.hit_ratio for p in series]
    assert hits == sorted(hits) or hits[-1] >= 0.9
    # The message cost of the extra TTL needed to cross 0.9 is steep:
    # each TTL step multiplies messages substantially.
    for a, b in zip(series, series[1:]):
        if a.hit_ratio < 0.99:
            assert b.avg_messages > a.avg_messages


def test_fig11_flooding_lookup_mobile(benchmark, record):
    points = benchmark.pedantic(run, args=("waypoint",), rounds=1,
                                iterations=1)
    text = format_table(
        ["n", "ttl", "hit ratio", "msgs/lookup", "coverage"],
        [(p.n, p.ttl, p.hit_ratio, p.avg_messages, p.avg_coverage)
         for p in points])
    record("fig11_flooding_mobile", f"Figure 11 mobile\n{text}")
    # Flooding is broadcast based: mobility barely hurts it (the paper even
    # sees slightly higher coverage due to waypoint center clustering).
    series = sorted(points, key=lambda p: p.ttl)
    assert series[-1].hit_ratio >= 0.75
