"""Figure 16 — the summary cost table (intersection 0.9).

Paper shape targets (n=800, d=10): RANDOM advertise costs hundreds of
messages (x3 in mobile networks); UNIQUE-PATH lookup hits cost less than
|Ql| while RANDOM lookups cost an order of magnitude more; the
UP x UP combination has cheap per-message costs but huge quorums.
"""

from conftest import N_DEFAULT, N_KEYS, N_LOOKUPS, record_result

from repro.experiments import render_summary, summary_table


def run():
    return summary_table(n=N_DEFAULT, n_keys=N_KEYS, n_lookups=N_LOOKUPS,
                         mobilities=("static", "waypoint"))


def test_fig16_summary_table(benchmark, record):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("fig16_summary", f"Figure 16 @ n={N_DEFAULT}\n"
           + render_summary(rows))

    def get(advertise, lookup, mobility):
        return next(r for r in rows if r.advertise == advertise
                    and r.lookup == lookup and r.mobility == mobility)

    rr = get("RANDOM", "RANDOM", "static")
    rup = get("RANDOM", "UNIQUE-PATH", "static")
    # UNIQUE-PATH lookups are far cheaper than RANDOM lookups.
    assert rup.lookup_hit_cost < rr.lookup_hit_cost / 2
    # Both reach a solid hit ratio at the paper's sizes.
    assert rup.hit_ratio >= 0.8
    # Mobile advertising over routing costs more than static.
    rr_mobile = get("RANDOM", "RANDOM", "waypoint")
    assert (rr_mobile.advertise_cost + rr_mobile.advertise_routing
            >= 0.8 * (rr.advertise_cost + rr.advertise_routing))
