"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and records
the data series under ``benchmarks/results/`` so EXPERIMENTS.md can cite
paper-vs-measured numbers.  Set ``REPRO_BENCH_FULL=1`` to run at the
paper's full scale (n up to 800, more replications); the default scale
completes the whole suite in a few minutes on a laptop.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Network sizes for sweeps (the paper uses 50..800).
SIZES = (50, 100, 200, 400, 800) if FULL_SCALE else (50, 100, 200)
#: Default single-network size (the paper's headline figures use 800).
N_DEFAULT = 800 if FULL_SCALE else 200
#: Advertisements / lookups per scenario (paper: 100 / 1000).
N_KEYS = 100 if FULL_SCALE else 12
N_LOOKUPS = 1000 if FULL_SCALE else 60


def record_result(name: str, text: str) -> None:
    """Persist a figure's regenerated data for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


@pytest.fixture
def record():
    return record_result
