"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and records
the data series under ``benchmarks/results/`` so EXPERIMENTS.md can cite
paper-vs-measured numbers.  Set ``REPRO_BENCH_FULL=1`` to run at the
paper's full scale (n up to 800, more replications); the default scale
completes the whole suite in a few minutes on a laptop.

Two environment knobs select the performance configuration:

* ``REPRO_NEIGHBOR_BACKEND`` — ``vectorized`` (default, numpy kernel) or
  ``python`` (the reference path);
* ``REPRO_BENCH_JOBS`` — process-pool workers for the parameter sweeps
  (forwarded as ``jobs=`` to the experiment drivers).

Every run also wall-clocks each bench and merges the timings into
``BENCH_simnet.json`` at the repository root, keyed by backend and job
count, so perf PRs can track the speedup trajectory over time.  Each run
entry carries a ``manifest`` block (git rev, toolchain versions, seed
policy, host) so a recorded number can always be traced back to the code
and configuration that produced it; with ``REPRO_PROFILE=1`` the
session's per-phase profiler table lands in
``benchmarks/results/PROFILE_bench.txt``.
"""

import json
import os
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent
BENCH_TIMINGS_PATH = REPO_ROOT / "BENCH_simnet.json"

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Network sizes for sweeps (the paper uses 50..800).
SIZES = (50, 100, 200, 400, 800) if FULL_SCALE else (50, 100, 200)
#: Default single-network size (the paper's headline figures use 800).
N_DEFAULT = 800 if FULL_SCALE else 200
#: Advertisements / lookups per scenario (paper: 100 / 1000).
N_KEYS = 100 if FULL_SCALE else 12
N_LOOKUPS = 1000 if FULL_SCALE else 60

#: Parallel sweep workers for the experiment drivers.
JOBS = max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def neighbor_backend() -> str:
    return os.environ.get("REPRO_NEIGHBOR_BACKEND", "vectorized")


def record_result(name: str, text: str) -> None:
    """Persist a figure's regenerated data for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


@pytest.fixture
def record():
    return record_result


# -- perf trajectory: wall-clock every bench into BENCH_simnet.json ----------

_TIMINGS = {}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    start = time.perf_counter()
    yield
    _TIMINGS[item.nodeid.split("::")[-1]] = round(
        time.perf_counter() - start, 3)


def _session_manifest(total_seconds: float) -> dict:
    # By session finish the bench modules have imported repro already,
    # so this resolves through the same sys.path the benches used.
    from repro.obs.manifest import collect_manifest

    manifest = collect_manifest(
        command="bench",
        params={"n_default": N_DEFAULT, "n_keys": N_KEYS,
                "n_lookups": N_LOOKUPS, "full_scale": FULL_SCALE},
        jobs=JOBS,
        trace_path=os.environ.get("REPRO_TRACE"),
    )
    manifest.wall_time_s = round(total_seconds, 3)
    return manifest.to_dict()


def _record_profile_table() -> None:
    from repro.obs.profile import PROFILER

    if PROFILER.enabled and PROFILER.snapshot():
        record_result("PROFILE_bench", PROFILER.render())


def pytest_sessionfinish(session, exitstatus):
    if not _TIMINGS:
        return
    payload = {}
    if BENCH_TIMINGS_PATH.exists():
        try:
            payload = json.loads(BENCH_TIMINGS_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            payload = {}
    run_key = f"{neighbor_backend()}-jobs{JOBS}" + (
        "-full" if FULL_SCALE else "")
    runs = payload.setdefault("runs", {})
    run = runs.setdefault(run_key, {
        "backend": neighbor_backend(),
        "jobs": JOBS,
        "n_default": N_DEFAULT,
        "full_scale": FULL_SCALE,
        "benches": {},
    })
    run["benches"].update(_TIMINGS)
    run["total_seconds"] = round(sum(run["benches"].values()), 3)
    run["manifest"] = _session_manifest(run["total_seconds"])
    BENCH_TIMINGS_PATH.write_text(json.dumps(payload, indent=2,
                                             sort_keys=True) + "\n")
    _record_profile_table()
