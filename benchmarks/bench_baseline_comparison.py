"""Baseline comparison — probabilistic quorums vs the alternatives the
paper argues against (Sections 1, 6.1, 9).

Four location-service designs on the same workload:

* probabilistic biquorum (RANDOM x UNIQUE-PATH) — the paper's proposal;
* strict majority quorums — guaranteed but enormous;
* strict grid biquorum — cheap but brittle under churn (needs explicit
  reconfiguration after any member failure);
* geographic hashing (GHT-style) — cheap but requires GPS and decays
  under mobility.

Measured: per-operation cost and hit ratio, with and without churn.
"""

import math
import random

from conftest import N_DEFAULT, record_result

from repro.baselines import (
    GeographicLocationService,
    GridConfiguration,
    GridStrategy,
    MajorityStrategy,
)
from repro.core import ProbabilisticBiquorum, RandomStrategy, UniquePathStrategy
from repro.experiments import format_table, make_membership, make_network
from repro.services import LocationService
from repro.simnet import apply_churn

KEYS = 6
LOOKUPS = 30
CHURN = 0.15


def run_quorum_service(make_bq, churn: bool, seed: int):
    net = make_network(N_DEFAULT, seed=seed)
    bq = make_bq(net)
    svc = LocationService(bq)
    rng = random.Random(seed + 1)
    keys = [f"k{i}" for i in range(KEYS)]
    adv_msgs = 0
    for key in keys:
        receipt = svc.advertise(net.random_alive_node(rng), key, key)
        adv_msgs += receipt.access.messages + receipt.access.routing_messages
    if churn:
        apply_churn(net, fail_fraction=CHURN, join_fraction=CHURN,
                    rng=rng, keep_connected=True)
        if hasattr(bq.advertise_strategy, "membership"):
            bq.advertise_strategy.membership.refresh()
    hits = 0
    lookup_msgs = 0
    for i in range(LOOKUPS):
        res = svc.lookup(net.random_alive_node(rng), rng.choice(keys))
        hits += res.found
        if res.access is not None:
            lookup_msgs += res.access.messages + res.access.routing_messages
    return hits / LOOKUPS, adv_msgs / KEYS, lookup_msgs / LOOKUPS


def run_grid(churn: bool, seed: int):
    net = make_network(N_DEFAULT, seed=seed)
    grid = GridConfiguration(net)

    def make_bq(n):
        return ProbabilisticBiquorum(
            n, advertise=GridStrategy(grid, "row"),
            lookup=GridStrategy(grid, "column"),
            advertise_size=grid.side, lookup_size=grid.side,
            adjust_to_network_size=False)

    bq = make_bq(net)
    svc = LocationService(bq)
    rng = random.Random(seed + 1)
    keys = [f"k{i}" for i in range(KEYS)]
    adv_msgs = 0
    strict_failures = 0
    for key in keys:
        receipt = svc.advertise(net.random_alive_node(rng), key, key)
        adv_msgs += receipt.access.messages + receipt.access.routing_messages
        strict_failures += not receipt.access.success
    if churn:
        apply_churn(net, fail_fraction=CHURN, join_fraction=CHURN,
                    rng=rng, keep_connected=True)
        # NOTE: no reconfiguration — showing the brittleness.
    hits = 0
    lookup_msgs = 0
    for i in range(LOOKUPS):
        res = svc.lookup(net.random_alive_node(rng), rng.choice(keys))
        hits += res.found
        if res.access is not None:
            lookup_msgs += res.access.messages + res.access.routing_messages
    return hits / LOOKUPS, adv_msgs / KEYS, lookup_msgs / LOOKUPS


def run_geo(churn: bool, seed: int):
    net = make_network(N_DEFAULT, seed=seed)
    geo = GeographicLocationService(net)
    rng = random.Random(seed + 1)
    keys = [f"k{i}" for i in range(KEYS)]
    adv_msgs = 0
    for key in keys:
        res = geo.advertise(net.random_alive_node(rng), key, key)
        adv_msgs += res.messages
    if churn:
        apply_churn(net, fail_fraction=CHURN, join_fraction=CHURN,
                    rng=rng, keep_connected=True)
    hits = 0
    lookup_msgs = 0
    for i in range(LOOKUPS):
        res = geo.lookup(net.random_alive_node(rng), rng.choice(keys))
        hits += res.success
        lookup_msgs += res.messages
    return hits / LOOKUPS, adv_msgs / KEYS, lookup_msgs / LOOKUPS


def run_all():
    rows = []
    for churn in (False, True):
        tag = "churn" if churn else "static"

        def prob_bq(net):
            membership = make_membership(net, "random")
            return ProbabilisticBiquorum(
                net, advertise=RandomStrategy(membership),
                lookup=UniquePathStrategy(), epsilon=0.1)

        hit, adv, look = run_quorum_service(prob_bq, churn, seed=11)
        rows.append(("probabilistic (RANDOMxUP)", tag, hit, adv, look))

        def maj_bq(net):
            return ProbabilisticBiquorum(
                net, advertise=MajorityStrategy(), lookup=MajorityStrategy(),
                advertise_size=net.n_alive // 2 + 1,
                lookup_size=net.n_alive // 2 + 1,
                adjust_to_network_size=False)

        hit, adv, look = run_quorum_service(maj_bq, churn, seed=12)
        rows.append(("strict majority", tag, hit, adv, look))

        hit, adv, look = run_grid(churn, seed=13)
        rows.append(("strict grid (no reconfig)", tag, hit, adv, look))

        hit, adv, look = run_geo(churn, seed=14)
        rows.append(("geographic (GHT)", tag, hit, adv, look))
    return rows


def test_baseline_comparison(benchmark, record):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        ["system", "scenario", "hit ratio", "msgs/advertise", "msgs/lookup"],
        rows)
    record("baseline_comparison",
           f"Probabilistic quorums vs baselines (n={N_DEFAULT})\n{text}")
    by = {(r[0], r[1]): r for r in rows}

    prob_static = by[("probabilistic (RANDOMxUP)", "static")]
    maj_static = by[("strict majority", "static")]
    # Majority is guaranteed but pays vastly more: routing-free UNIQUE-PATH
    # lookups are orders of magnitude cheaper, advertises several-fold.
    assert maj_static[2] >= prob_static[2] - 0.05
    assert maj_static[4] > 50 * prob_static[4]
    assert maj_static[3] > 2 * prob_static[3]

    prob_churn = by[("probabilistic (RANDOMxUP)", "churn")]
    # Probabilistic quorums survive churn with a high hit ratio,
    # no reconfiguration required.
    assert prob_churn[2] >= 0.7
