"""Figure 6 — asymptotic comparison of strategy combinations.

Regenerates the combination-cost table for |Q| = Theta(sqrt n): mixes with
a RANDOM side get sqrt-sized quorums; routing-free symmetric mixes pay
crossing-time (~n/log n) sizes.
"""

from conftest import N_DEFAULT, record_result

from repro.analysis import figure6_table
from repro.experiments import format_table


def build(n: int):
    return figure6_table(n, epsilon=0.1)


def test_fig6_combination_table(benchmark, record):
    combos = benchmark(build, N_DEFAULT)
    text = format_table(
        ["advertise", "lookup", "advertise cost", "lookup cost", "combined"],
        [(c.advertise, c.lookup, c.advertise_cost, c.lookup_cost, c.combined)
         for c in combos])
    record("fig6_combination_table", f"Figure 6 @ n={N_DEFAULT}\n{text}")
    by_pair = {(c.advertise, c.lookup): c for c in combos}
    # RANDOM x PATH lookups are far cheaper than RANDOM x RANDOM lookups.
    assert (by_pair[("RANDOM", "PATH")].lookup_cost
            < by_pair[("RANDOM", "RANDOM")].lookup_cost)
    # PATH x PATH pays the crossing time: most expensive lookup.
    assert (by_pair[("PATH", "PATH")].lookup_cost
            > by_pair[("RANDOM", "PATH")].lookup_cost)
