"""Cross-fidelity bench: the same strategy mix over the packet-level stack
(real CSMA/CA + AODV) and the graph-level simulator, on the same topology.

This validates that the graph-level results carried through the figure
benches are faithful: hit ratios must agree and message counts must be in
the same ballpark (the packet level also pays MAC acks and retries).
"""

import random

from conftest import record_result

from repro.core import RandomStrategy, UniquePathStrategy
from repro.experiments import format_table
from repro.simnet import NetworkConfig, SimNetwork
from repro.stack import AdhocStack, PacketQuorumNetwork, StackConfig

N = 25
KEYS = 5
LOOKUPS = 12


class _OracleMembership:
    def __init__(self, net):
        self.net = net

    def sample_for(self, node_id, k, rng):
        pool = [v for v in self.net.alive_nodes() if v != node_id]
        return rng.sample(pool, min(k, len(pool)))


def run_over(net, seed=3):
    adv = RandomStrategy(_OracleMembership(net), rng=random.Random(seed))
    lookup = UniquePathStrategy(rng=random.Random(seed + 1))
    rng = random.Random(seed + 2)
    stores = {}
    for i in range(KEYS):
        stored = set()
        origin = net.random_alive_node(rng)
        adv.advertise(net, origin, stored.add, target_size=9)
        stores[i] = stored
    hits = 0
    messages = 0
    for i in range(LOOKUPS):
        key = i % KEYS
        looker = net.random_alive_node(rng)
        result = lookup.lookup(
            net, looker, lambda v, s=stores[key]: "x" if v in s else None,
            target_size=7)
        hits += bool(result.found and result.success)
        messages += result.messages
    return hits / LOOKUPS, messages / LOOKUPS


def run_both():
    stack = AdhocStack(StackConfig(n=N, avg_degree=10, seed=9))
    packet_net = PacketQuorumNetwork(stack)
    packet_net.advance(11.0)
    positions = [stack.env.position_of(i) for i in range(N)]

    graph_net = SimNetwork(
        NetworkConfig(n=N, avg_degree=10, seed=9, require_connected=False),
        positions=positions)

    packet = run_over(packet_net)
    graph = run_over(graph_net)
    return packet, graph


def test_cross_fidelity_agreement(benchmark, record):
    (p_hit, p_msgs), (g_hit, g_msgs) = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    text = format_table(
        ["substrate", "hit ratio", "msgs/lookup"],
        [("packet level (MAC+AODV)", p_hit, p_msgs),
         ("graph level (protocol model)", g_hit, g_msgs)])
    record("cross_fidelity", f"Same topology, same strategies\n{text}")
    # Identical topology and strategy mix: hit ratios agree closely.
    assert abs(p_hit - g_hit) <= 0.25
    # Message counts in the same ballpark (packet level may pay retries).
    assert 0.3 * g_msgs <= p_msgs <= 4.0 * max(g_msgs, 1.0)
