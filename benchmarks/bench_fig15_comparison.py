"""Figure 15 — hit ratio vs messages per lookup for the three lookup
strategies (RANDOM advertise).

Paper shape targets: UNIQUE-PATH needs the fewest messages for high
intersection targets; FLOODING can win only at low targets; RANDOM-OPT is
inferior even before counting its routing overhead.
"""

from conftest import N_DEFAULT, N_KEYS, N_LOOKUPS, record_result

from repro.experiments import format_table, lookup_tradeoff_curves


def run():
    return lookup_tradeoff_curves(n=N_DEFAULT, n_keys=N_KEYS,
                                  n_lookups=N_LOOKUPS)


def _cheapest_at(curve, target):
    """Fewest messages achieving at least the target hit ratio."""
    ok = [p for p in curve if p.hit_ratio >= target]
    return min((p.avg_messages for p in ok), default=None)


def test_fig15_lookup_strategy_comparison(benchmark, record):
    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, points in curves.items():
        for p in points:
            rows.append((name, p.knob, p.hit_ratio, p.avg_messages,
                         p.avg_routing))
    text = format_table(
        ["strategy", "knob", "hit ratio", "msgs/lookup", "routing"], rows)
    record("fig15_comparison", f"Figure 15\n{text}")

    up = _cheapest_at(curves["UNIQUE-PATH"], 0.85)
    fl = _cheapest_at(curves["FLOODING"], 0.85)
    ro = _cheapest_at(curves["RANDOM-OPT"], 0.85)
    assert up is not None
    # At high intersection targets UNIQUE-PATH is at least competitive
    # with FLOODING and beats RANDOM-OPT (which also pays routing).
    if ro is not None:
        assert up <= ro * 1.5
    if fl is not None:
        assert up <= fl * 1.5
