"""Figure 9 — RANDOM advertise with RANDOM-OPT lookup, static and mobile.

Paper shape targets: ~ln(n) initiations give a ~0.9 hit ratio; the probed
en-route quorum is much larger than the initiation count; mobile networks
cost more messages/routing for a slightly lower hit ratio.
"""

from conftest import FULL_SCALE, JOBS, N_DEFAULT, N_KEYS, N_LOOKUPS, record_result

from repro.experiments import format_table, random_opt_lookup

INITIATIONS = (1, 2, 3, 4, 6, 8) if FULL_SCALE else (1, 2, 4, 6)


def run(mobility: str):
    return random_opt_lookup(n=N_DEFAULT, initiations=INITIATIONS,
                             mobility=mobility, n_keys=N_KEYS,
                             n_lookups=N_LOOKUPS, jobs=JOBS)


def test_fig9_random_opt_static(benchmark, record):
    points = benchmark.pedantic(run, args=("static",), rounds=1, iterations=1)
    text = format_table(
        ["n", "X (initiations)", "hit ratio", "msgs", "routing", "probed"],
        [(p.n, p.initiations, p.hit_ratio, p.avg_messages, p.avg_routing,
          p.avg_quorum_size) for p in points])
    record("fig9_random_opt_static", f"Figure 9 static\n{text}")
    series = sorted(points, key=lambda p: p.initiations)
    assert series[-1].hit_ratio >= series[0].hit_ratio
    # The cross-layer trick: en-route probing multiplies the effective
    # quorum well past the initiation count.
    assert all(p.avg_quorum_size >= 1.5 * p.initiations for p in series)
    # ~ln(n) initiations reach ~0.9.
    import math
    near_ln = min(series, key=lambda p: abs(p.initiations
                                            - math.log(N_DEFAULT)))
    assert near_ln.hit_ratio >= 0.75


def test_fig9_random_opt_mobile(benchmark, record):
    points = benchmark.pedantic(run, args=("waypoint",), rounds=1,
                                iterations=1)
    text = format_table(
        ["n", "X (initiations)", "hit ratio", "msgs", "routing", "probed"],
        [(p.n, p.initiations, p.hit_ratio, p.avg_messages, p.avg_routing,
          p.avg_quorum_size) for p in points])
    record("fig9_random_opt_mobile", f"Figure 9 mobile\n{text}")
    series = sorted(points, key=lambda p: p.initiations)
    assert series[-1].hit_ratio >= 0.6  # slightly degraded vs static
