"""Figure 12 — UNIQUE-PATH advertise with UNIQUE-PATH lookup.

Paper shape targets: 0.9 hit ratio needs a *combined* walk length around
n/2 (each quorum ~1.5 n / ln n) — far larger than the sqrt(n ln n) sizes
that suffice whenever one side is RANDOM (the crossing-time price).
"""

import math

from conftest import FULL_SCALE, JOBS, N_DEFAULT, N_KEYS, N_LOOKUPS, record_result

from repro.analysis import symmetric_quorum_size
from repro.experiments import format_table, path_x_path

FRACTIONS = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3) if FULL_SCALE else \
    (0.05, 0.1, 0.2, 0.3)


def run():
    return path_x_path(n=N_DEFAULT, size_fractions=FRACTIONS,
                       n_keys=N_KEYS, n_lookups=N_LOOKUPS, jobs=JOBS)


def test_fig12_path_x_path(benchmark, record):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["n", "|Q| per side", "combined/n", "hit ratio", "adv msgs",
         "lookup msgs"],
        [(p.n, p.quorum_size, p.combined_fraction, p.hit_ratio,
          p.avg_advertise_messages, p.avg_lookup_messages) for p in points])
    record("fig12_path_x_path", f"Figure 12\n{text}")
    series = sorted(points, key=lambda p: p.quorum_size)
    assert series[-1].hit_ratio >= series[0].hit_ratio
    # Crossing 0.9 requires combined length a constant fraction of n —
    # much more than the sqrt-sized quorums of the asymmetric mixes.
    sqrt_size = symmetric_quorum_size(N_DEFAULT, 0.1)
    crossing = [p for p in series if p.hit_ratio >= 0.85]
    if crossing:
        assert crossing[0].combined_size > 2 * sqrt_size
