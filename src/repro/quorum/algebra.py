"""A declarative quorum-system algebra (quoracle-style).

The paper's probabilistic quorums are one point in a much larger design
space.  This module provides the classical, *deterministic* side of that
space as an expression algebra:

* :class:`Node` — a single replica;
* :class:`And` — a quorum must contain a quorum of **every** child
  (``e1 * e2``);
* :class:`Or` — a quorum must contain a quorum of **some** child
  (``e1 + e2``);
* :class:`Choose` — a quorum must contain quorums of at least ``k``
  of the children (generalises both: ``And = Choose(len)``,
  ``Or = Choose(1)``).

Every expression has a :meth:`~Expr.dual` obtained by swapping And/Or
(``Choose(k, es)`` dualises to ``Choose(len(es)-k+1, duals)``); an
expression and its dual always form an intersecting read/write biquorum
pair, which :class:`QuorumSystem` checks explicitly.

The design follows "Read-Write Quorum Systems Made Practical" (quoracle,
see PAPERS.md); the load/availability definitions cross-checked by the
simulator come from "The Load and Availability of Byzantine Quorum
Systems".  Unlike quoracle the expression elements here are usually the
simulator's integer node ids, so an algebraic system can be dropped
straight onto a :class:`~repro.simnet.network.SimNetwork` via
:class:`~repro.quorum.access.AlgebraicStrategy`.
"""

from __future__ import annotations

import itertools
from typing import (
    Any,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Abstract element type (simulator node ids or symbolic names).
Element = Hashable

#: Safety valve for quorum enumeration: expressions whose quorum set
#: exceeds this raise instead of silently eating memory.
MAX_ENUMERATED_QUORUMS = 100_000


class Expr:
    """Base class of quorum expressions.

    Subclasses implement :meth:`quorums` (enumerate all quorums, possibly
    with repeats), :meth:`is_quorum`, and :meth:`dual`.  ``+`` is
    :class:`Or`, ``*`` is :class:`And` (quoracle's operator convention).
    """

    def quorums(self) -> Iterator[FrozenSet[Element]]:
        raise NotImplementedError

    def is_quorum(self, xs: Iterable[Element]) -> bool:
        raise NotImplementedError

    def dual(self) -> "Expr":
        raise NotImplementedError

    def elements(self) -> FrozenSet[Element]:
        """Every element mentioned anywhere in the expression."""
        raise NotImplementedError

    def __add__(self, rhs: "Expr") -> "Expr":
        return Or([self, rhs])

    def __mul__(self, rhs: "Expr") -> "Expr":
        return And([self, rhs])

    def __eq__(self, other: Any) -> bool:
        return (type(self) is type(other)
                and self._key() == other._key())

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Tuple:
        raise NotImplementedError


class Node(Expr):
    """A single replica; its own (only) quorum, self-dual."""

    __slots__ = ("x",)

    def __init__(self, x: Element) -> None:
        self.x = x

    def quorums(self) -> Iterator[FrozenSet[Element]]:
        yield frozenset((self.x,))

    def is_quorum(self, xs: Iterable[Element]) -> bool:
        return self.x in set(xs)

    def dual(self) -> "Expr":
        return self

    def elements(self) -> FrozenSet[Element]:
        return frozenset((self.x,))

    def _key(self) -> Tuple:
        return (self.x,)

    def __str__(self) -> str:
        return str(self.x)

    def __repr__(self) -> str:
        return f"Node({self.x!r})"


class _Compound(Expr):
    """Shared machinery of And/Or/Choose."""

    __slots__ = ("es",)

    def __init__(self, es: Sequence[Expr]) -> None:
        if not es:
            raise ValueError(
                f"{type(self).__name__} needs at least one subexpression")
        if not all(isinstance(e, Expr) for e in es):
            raise TypeError("subexpressions must be Expr instances")
        self.es = list(es)

    def elements(self) -> FrozenSet[Element]:
        return frozenset().union(*(e.elements() for e in self.es))

    def _key(self) -> Tuple:
        return tuple(self.es)


class And(_Compound):
    """A quorum of every child (``*``). Dual: :class:`Or` of duals."""

    def quorums(self) -> Iterator[FrozenSet[Element]]:
        for parts in itertools.product(*(e.quorums() for e in self.es)):
            yield frozenset().union(*parts)

    def is_quorum(self, xs: Iterable[Element]) -> bool:
        xs = set(xs)
        return all(e.is_quorum(xs) for e in self.es)

    def dual(self) -> Expr:
        return Or([e.dual() for e in self.es])

    def __str__(self) -> str:
        return "(" + " * ".join(str(e) for e in self.es) + ")"

    def __repr__(self) -> str:
        return f"And({self.es!r})"


class Or(_Compound):
    """A quorum of some child (``+``). Dual: :class:`And` of duals."""

    def quorums(self) -> Iterator[FrozenSet[Element]]:
        for e in self.es:
            yield from e.quorums()

    def is_quorum(self, xs: Iterable[Element]) -> bool:
        xs = set(xs)
        return any(e.is_quorum(xs) for e in self.es)

    def dual(self) -> Expr:
        return And([e.dual() for e in self.es])

    def __str__(self) -> str:
        return "(" + " + ".join(str(e) for e in self.es) + ")"

    def __repr__(self) -> str:
        return f"Or({self.es!r})"


class Choose(_Compound):
    """Quorums of at least ``k`` of the children.

    ``Choose(k, es)`` dualises to ``Choose(len(es) - k + 1, duals)``:
    any k-subset and any (n-k+1)-subset of the children overlap in at
    least one child, whose sub-quorums intersect by induction.
    """

    __slots__ = ("k",)

    def __init__(self, k: int, es: Sequence[Expr]) -> None:
        super().__init__(es)
        if not 1 <= k <= len(es):
            raise ValueError(
                f"k must be in [1, {len(es)}], got {k}")
        self.k = k

    def quorums(self) -> Iterator[FrozenSet[Element]]:
        for combo in itertools.combinations(self.es, self.k):
            for parts in itertools.product(*(e.quorums() for e in combo)):
                yield frozenset().union(*parts)

    def is_quorum(self, xs: Iterable[Element]) -> bool:
        xs = set(xs)
        return sum(1 for e in self.es if e.is_quorum(xs)) >= self.k

    def dual(self) -> Expr:
        return Choose(len(self.es) - self.k + 1,
                      [e.dual() for e in self.es])

    def _key(self) -> Tuple:
        return (self.k, *self.es)

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.es)
        return f"choose{self.k}({inner})"

    def __repr__(self) -> str:
        return f"Choose({self.k}, {self.es!r})"


# -- convenience constructors -----------------------------------------------


def _wrap(xs: Sequence[Any]) -> List[Expr]:
    return [x if isinstance(x, Expr) else Node(x) for x in xs]


def choose(k: int, xs: Sequence[Any]) -> Expr:
    """At least ``k`` of ``xs`` (elements are auto-wrapped in Node)."""
    es = _wrap(xs)
    if k == 1:
        return Or(es)
    if k == len(es):
        return And(es)
    return Choose(k, es)


def majority(xs: Sequence[Any]) -> Expr:
    """Strict majority of ``xs``."""
    es = _wrap(xs)
    return choose(len(es) // 2 + 1, es)


def grid(rows: Sequence[Sequence[Any]]) -> Expr:
    """Grid reads: one full row (``r1 + r2 + ...`` of row-Ands).

    The dual (grid writes) is one element from every row — the classical
    row/column-transversal grid biquorum.
    """
    return Or([And(_wrap(row)) for row in rows])


def chain(xs: Sequence[Any]) -> Expr:
    """A chained quorum system over ``xs``: reads are any consecutive
    pair ``{x_i, x_{i+1}}`` (the lone element for a 1-chain); writes are
    the dual — one element from every link, i.e. a vertex cover of the
    chain."""
    es = _wrap(xs)
    if len(es) == 1:
        return es[0]
    return Or([And([a, b]) for a, b in zip(es, es[1:])])


# -- quorum systems ----------------------------------------------------------


def enumerate_quorums(expr: Expr,
                      limit: int = MAX_ENUMERATED_QUORUMS
                      ) -> List[FrozenSet[Element]]:
    """Deduplicated, superset-pruned, deterministically ordered quorums.

    Pruning strict supersets is sound for every metric we optimize: a
    strategy placing mass on a superset quorum can move that mass to the
    contained quorum without increasing any node's load, the network
    cost, or the latency.
    """
    seen: set = set()
    unique: List[FrozenSet[Element]] = []
    for i, q in enumerate(expr.quorums()):
        if i >= limit:
            raise ValueError(
                f"expression enumerates more than {limit} quorums; "
                "simplify it or raise MAX_ENUMERATED_QUORUMS")
        if q not in seen:
            seen.add(q)
            unique.append(q)
    minimal = [q for q in unique
               if not any(other < q for other in unique)]
    return sorted(minimal, key=lambda q: (len(q), sorted(map(repr, q))))


class NotIntersecting(ValueError):
    """The read and write expressions do not form a biquorum."""


class QuorumSystem:
    """A read/write biquorum pair with an intersection checker.

    Given only ``reads``, writes default to ``reads.dual()`` (and vice
    versa) — the dual pair always intersects.  Explicit pairs are
    checked quorum-by-quorum at construction; a non-intersecting pair
    raises :class:`NotIntersecting`.
    """

    def __init__(self, reads: Optional[Expr] = None,
                 writes: Optional[Expr] = None) -> None:
        if reads is None and writes is None:
            raise ValueError("need reads, writes, or both")
        if reads is None:
            reads = writes.dual()
        if writes is None:
            writes = reads.dual()
        self.reads = reads
        self.writes = writes
        self._read_quorums = enumerate_quorums(reads)
        self._write_quorums = enumerate_quorums(writes)
        bad = self.non_intersecting_pair()
        if bad is not None:
            raise NotIntersecting(
                f"read quorum {sorted(map(repr, bad[0]))} does not "
                f"intersect write quorum {sorted(map(repr, bad[1]))}")

    def non_intersecting_pair(
            self) -> Optional[Tuple[FrozenSet, FrozenSet]]:
        """First read/write quorum pair with empty intersection, if any."""
        for r in self._read_quorums:
            for w in self._write_quorums:
                if not (r & w):
                    return (r, w)
        return None

    def read_quorums(self) -> List[FrozenSet[Element]]:
        return list(self._read_quorums)

    def write_quorums(self) -> List[FrozenSet[Element]]:
        return list(self._write_quorums)

    def is_read_quorum(self, xs: Iterable[Element]) -> bool:
        return self.reads.is_quorum(xs)

    def is_write_quorum(self, xs: Iterable[Element]) -> bool:
        return self.writes.is_quorum(xs)

    def elements(self) -> FrozenSet[Element]:
        return self.reads.elements() | self.writes.elements()

    def __len__(self) -> int:
        return len(self.elements())

    def resilience(self) -> int:
        """Failures every quorum side survives: the largest f such that
        after any f-element removal both sides still have a live quorum."""
        elements = sorted(map(repr, self.elements()))
        by_repr = {repr(e): e for e in self.elements()}
        n = len(elements)
        for f in range(n + 1):
            for dead in itertools.combinations(elements, f):
                alive = {by_repr[r] for r in elements if r not in dead}
                if not (self.reads.is_quorum(alive)
                        and self.writes.is_quorum(alive)):
                    return f - 1
        return n

    def strategy(self, read_fraction: float = 0.5,
                 optimize: str = "load", **kwargs):
        """Solve for quorum-selection probabilities (see
        :func:`repro.quorum.strategy.solve_strategy`)."""
        from repro.quorum.strategy import solve_strategy
        return solve_strategy(self, read_fraction=read_fraction,
                              optimize=optimize, **kwargs)

    def __str__(self) -> str:
        return f"QuorumSystem(reads={self.reads}, writes={self.writes})"

    def __repr__(self) -> str:
        return (f"QuorumSystem(reads={self.reads!r}, "
                f"writes={self.writes!r})")


# -- canned systems over simulator node ids ----------------------------------


def majority_system(ids: Sequence[Element]) -> QuorumSystem:
    """Majority reads and writes over ``ids`` (self-dual for odd sizes)."""
    return QuorumSystem(reads=majority(ids))


def grid_system(ids: Sequence[Element],
                rows: Optional[int] = None) -> QuorumSystem:
    """Row-reads / row-transversal-writes grid over ``ids``.

    ``ids`` is reshaped into ``rows`` rows (default: the squarest grid).
    """
    n = len(ids)
    if rows is None:
        rows = max(1, int(round(n ** 0.5)))
    if n % rows != 0:
        raise ValueError(f"cannot reshape {n} ids into {rows} rows")
    cols = n // rows
    table = [list(ids[r * cols:(r + 1) * cols]) for r in range(rows)]
    return QuorumSystem(reads=grid(table))


def chain_system(ids: Sequence[Element]) -> QuorumSystem:
    """Consecutive-pair reads over ``ids``, dual writes."""
    return QuorumSystem(reads=chain(ids))


BUILTIN_SYSTEMS = {
    "majority": majority_system,
    "grid": grid_system,
    "chain": chain_system,
}


def build_system(name: str, ids: Sequence[Element]) -> QuorumSystem:
    """A builtin system by name over concrete node ids."""
    try:
        factory = BUILTIN_SYSTEMS[name]
    except KeyError:
        raise ValueError(
            f"unknown quorum system {name!r}; "
            f"builtins: {sorted(BUILTIN_SYSTEMS)}") from None
    return factory(ids)
