"""Load/cost-optimized quorum-selection strategies.

A *strategy* for a :class:`~repro.quorum.algebra.QuorumSystem` is a pair
of probability distributions — one over the read quorums, one over the
write quorums.  Under a read/write mix ``read_fraction`` the induced
**load** of a node is the probability an access touches it (normalised
by capacity 1 access per node per unit time, the Naor–Wool definition);
the **system load** is the maximum over nodes, and the optimizer picks
the distributions minimizing it:

    minimize  L
    s.t.      fr * Ar @ pr + (1 - fr) * Aw @ pw <= L  (per node)
              sum(pr) = 1, sum(pw) = 1, pr >= 0, pw >= 0

where ``Ar[x, q] = 1`` iff read quorum ``q`` contains node ``x``.  Two
solvers are built in: :mod:`scipy.optimize.linprog` when scipy is
importable (exact), and a pure-numpy multiplicative-weights solver for
the same minimax program (no dependencies beyond numpy); ``pulp`` is
honoured as an optional third backend when installed, but is never
required.  ``optimize="network"`` / ``"latency"`` minimize expected
quorum size / expected quorum latency instead — both linear, so the
optimum concentrates on the cheapest quorums.

Degenerate inputs follow the PR 5 ``reps=0`` convention: a system whose
read or write side has no live quorum (e.g. every quorum contains a
faulted node) yields a :class:`Strategy` whose metrics are all ``nan``
rather than raising, so figure sweeps render NaN rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.quorum.algebra import Element, QuorumSystem

_NAN = float("nan")

#: Objectives understood by :func:`solve_strategy`.
OBJECTIVES = ("load", "network", "latency")

#: Iterations for the pure-numpy multiplicative-weights LP fallback.
MW_ITERATIONS = 4000


@dataclass(frozen=True)
class Strategy:
    """Quorum-selection probabilities plus the metrics they induce.

    ``read_quorums[i]`` is selected with probability ``read_probs[i]``
    (same for writes).  An *empty* side (no live quorums — the
    all-faulted degenerate case) is represented by empty lists; every
    metric then reports ``nan`` and :meth:`sample_read` returns None.
    """

    system: QuorumSystem
    read_fraction: float
    read_quorums: List[FrozenSet[Element]]
    read_probs: List[float]
    write_quorums: List[FrozenSet[Element]]
    write_probs: List[float]
    objective: str = "load"
    solver: str = "?"
    faulty: FrozenSet[Element] = field(default_factory=frozenset)

    @property
    def feasible(self) -> bool:
        """Both sides have at least one live quorum."""
        return bool(self.read_quorums) and bool(self.write_quorums)

    # -- metrics ----------------------------------------------------------

    def node_loads(self, read_fraction: Optional[float] = None
                   ) -> Dict[Element, float]:
        """Per-node access probability under the read/write mix."""
        if not self.feasible:
            return {x: _NAN for x in self.system.elements()}
        fr = self.read_fraction if read_fraction is None else read_fraction
        _check_fraction(fr)
        loads: Dict[Element, float] = {
            x: 0.0 for x in self.system.elements()}
        for q, p in zip(self.read_quorums, self.read_probs):
            for x in q:
                loads[x] += fr * p
        for q, p in zip(self.write_quorums, self.write_probs):
            for x in q:
                loads[x] += (1.0 - fr) * p
        return loads

    def load(self, read_fraction: Optional[float] = None) -> float:
        """System load: max per-node access probability (lower = better)."""
        loads = self.node_loads(read_fraction)
        return max(loads.values()) if loads else _NAN

    def capacity(self, read_fraction: Optional[float] = None) -> float:
        """Throughput at unit node capacity: ``1 / load``."""
        load = self.load(read_fraction)
        return 1.0 / load if load == load and load > 0 else _NAN

    def network_load(self, read_fraction: Optional[float] = None) -> float:
        """Expected accessed-quorum size (≈ messages per access)."""
        if not self.feasible:
            return _NAN
        fr = self.read_fraction if read_fraction is None else read_fraction
        _check_fraction(fr)
        exp_r = sum(len(q) * p
                    for q, p in zip(self.read_quorums, self.read_probs))
        exp_w = sum(len(q) * p
                    for q, p in zip(self.write_quorums, self.write_probs))
        return fr * exp_r + (1.0 - fr) * exp_w

    def expected_read_size(self) -> float:
        if not self.read_quorums:
            return _NAN
        return sum(len(q) * p
                   for q, p in zip(self.read_quorums, self.read_probs))

    def expected_write_size(self) -> float:
        if not self.write_quorums:
            return _NAN
        return sum(len(q) * p
                   for q, p in zip(self.write_quorums, self.write_probs))

    def latency(self, latencies: Optional[Dict[Element, float]] = None,
                read_fraction: Optional[float] = None) -> float:
        """Expected quorum latency (max member latency per access)."""
        if not self.feasible:
            return _NAN
        fr = self.read_fraction if read_fraction is None else read_fraction
        _check_fraction(fr)
        lat_r = sum(_quorum_latency(q, latencies) * p
                    for q, p in zip(self.read_quorums, self.read_probs))
        lat_w = sum(_quorum_latency(q, latencies) * p
                    for q, p in zip(self.write_quorums, self.write_probs))
        return fr * lat_r + (1.0 - fr) * lat_w

    def load_lower_bound(self,
                         read_fraction: Optional[float] = None) -> float:
        """Analytic floor: ``E[|Q|] / n`` — the sum of node loads equals
        the expected quorum size, so the max is at least the average."""
        n = len(self.system.elements())
        network = self.network_load(read_fraction)
        return network / n if n else _NAN

    # -- sampling ---------------------------------------------------------

    def sample_read(self, rng) -> Optional[List[Element]]:
        """Draw a read quorum (sorted by repr); None when infeasible."""
        return _sample(self.read_quorums, self.read_probs, rng)

    def sample_write(self, rng) -> Optional[List[Element]]:
        """Draw a write quorum (sorted by repr); None when infeasible."""
        return _sample(self.write_quorums, self.write_probs, rng)

    def __str__(self) -> str:
        def side(quorums, probs):
            return ", ".join(
                f"{sorted(map(repr, q))}: {p:.3f}"
                for q, p in zip(quorums, probs) if p > 1e-9)
        return (f"Strategy(fr={self.read_fraction}, "
                f"reads={{{side(self.read_quorums, self.read_probs)}}}, "
                f"writes={{{side(self.write_quorums, self.write_probs)}}})")


def _quorum_latency(q: FrozenSet[Element],
                    latencies: Optional[Dict[Element, float]]) -> float:
    if not latencies:
        return 1.0
    return max(latencies.get(x, 1.0) for x in q)


def _sample(quorums: List[FrozenSet[Element]], probs: List[float],
            rng) -> Optional[List[Element]]:
    if not quorums:
        return None
    r = rng.random()
    acc = 0.0
    for q, p in zip(quorums, probs):
        acc += p
        if r <= acc:
            return sorted(q, key=repr)
    return sorted(quorums[-1], key=repr)


def _check_fraction(fr: float) -> None:
    if not 0.0 <= fr <= 1.0:
        raise ValueError(f"read_fraction must be in [0, 1], got {fr}")


# -- the optimizer -----------------------------------------------------------


def solve_strategy(
    system: QuorumSystem,
    read_fraction: float = 0.5,
    optimize: str = "load",
    faulty: Optional[Set[Element]] = None,
    latencies: Optional[Dict[Element, float]] = None,
    solver: str = "auto",
) -> Strategy:
    """Quorum-selection probabilities optimizing one objective.

    ``faulty`` removes every quorum containing a faulted element before
    solving; a side left without quorums yields an all-NaN strategy
    (never raises — the degenerate-input convention).  ``solver`` is
    ``auto`` (scipy if importable, else pure numpy), ``scipy``,
    ``numpy``, or ``pulp`` (optional dependency, honoured if installed).
    """
    _check_fraction(read_fraction)
    if optimize not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {optimize!r}; pick one of {OBJECTIVES}")
    dead = frozenset(faulty or ())
    read_quorums = [q for q in system.read_quorums() if not (q & dead)]
    write_quorums = [q for q in system.write_quorums() if not (q & dead)]
    if not read_quorums or not write_quorums:
        return Strategy(
            system=system, read_fraction=read_fraction,
            read_quorums=[], read_probs=[],
            write_quorums=[], write_probs=[],
            objective=optimize, solver="degenerate", faulty=dead)

    if optimize == "load":
        pr, pw, used = _solve_load(system, read_quorums, write_quorums,
                                   read_fraction, solver)
    elif optimize == "network":
        pr = _cheapest(read_quorums, [len(q) for q in read_quorums])
        pw = _cheapest(write_quorums, [len(q) for q in write_quorums])
        used = "argmin"
    else:  # latency
        pr = _cheapest(read_quorums,
                       [_quorum_latency(q, latencies) for q in read_quorums])
        pw = _cheapest(write_quorums,
                       [_quorum_latency(q, latencies) for q in write_quorums])
        used = "argmin"
    return Strategy(
        system=system, read_fraction=read_fraction,
        read_quorums=read_quorums, read_probs=list(map(float, pr)),
        write_quorums=write_quorums, write_probs=list(map(float, pw)),
        objective=optimize, solver=used, faulty=dead)


def _cheapest(quorums: Sequence[FrozenSet[Element]],
              costs: Sequence[float]) -> List[float]:
    """Uniform mass over the minimum-cost quorums (linear objective)."""
    best = min(costs)
    winners = [i for i, c in enumerate(costs) if c <= best + 1e-12]
    probs = [0.0] * len(quorums)
    for i in winners:
        probs[i] = 1.0 / len(winners)
    return probs


def _membership_matrix(elements: Sequence[Element],
                       quorums: Sequence[FrozenSet[Element]]) -> np.ndarray:
    mat = np.zeros((len(elements), len(quorums)))
    index = {x: i for i, x in enumerate(elements)}
    for j, q in enumerate(quorums):
        for x in q:
            mat[index[x], j] = 1.0
    return mat


def _solve_load(system: QuorumSystem,
                read_quorums: List[FrozenSet[Element]],
                write_quorums: List[FrozenSet[Element]],
                read_fraction: float,
                solver: str) -> Tuple[np.ndarray, np.ndarray, str]:
    """Minimize the max per-node load over both probability simplices."""
    elements = sorted(system.elements(), key=repr)
    ar = read_fraction * _membership_matrix(elements, read_quorums)
    aw = (1.0 - read_fraction) * _membership_matrix(elements, write_quorums)
    if solver not in ("auto", "scipy", "numpy", "pulp"):
        raise ValueError(f"unknown solver {solver!r}")
    if solver == "pulp":
        return (*_linprog_pulp(ar, aw), "pulp")
    if solver in ("auto", "scipy"):
        try:
            return (*_linprog_scipy(ar, aw), "scipy")
        except ImportError:
            if solver == "scipy":
                raise
    return (*_minimax_mw(ar, aw), "numpy-mw")


def _linprog_scipy(ar: np.ndarray, aw: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Exact LP: variables [pr, pw, L], minimize L."""
    from scipy.optimize import linprog

    n_nodes = ar.shape[0]
    nr, nw = ar.shape[1], aw.shape[1]
    c = np.zeros(nr + nw + 1)
    c[-1] = 1.0
    # ar @ pr + aw @ pw - L <= 0
    a_ub = np.hstack([ar, aw, -np.ones((n_nodes, 1))])
    b_ub = np.zeros(n_nodes)
    a_eq = np.zeros((2, nr + nw + 1))
    a_eq[0, :nr] = 1.0
    a_eq[1, nr:nr + nw] = 1.0
    b_eq = np.ones(2)
    bounds = [(0, None)] * (nr + nw) + [(0, None)]
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                  bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - feasible by construction
        raise RuntimeError(f"LP solver failed: {res.message}")
    pr = np.clip(res.x[:nr], 0.0, None)
    pw = np.clip(res.x[nr:nr + nw], 0.0, None)
    return pr / pr.sum(), pw / pw.sum()


def _linprog_pulp(ar: np.ndarray, aw: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Same LP through pulp (optional dependency)."""
    import pulp

    nr, nw = ar.shape[1], aw.shape[1]
    prob = pulp.LpProblem("quorum_load", pulp.LpMinimize)
    pr = [pulp.LpVariable(f"pr{i}", lowBound=0) for i in range(nr)]
    pw = [pulp.LpVariable(f"pw{i}", lowBound=0) for i in range(nw)]
    load = pulp.LpVariable("L", lowBound=0)
    prob += load
    prob += pulp.lpSum(pr) == 1
    prob += pulp.lpSum(pw) == 1
    for row_r, row_w in zip(ar, aw):
        prob += (pulp.lpSum(c * v for c, v in zip(row_r, pr))
                 + pulp.lpSum(c * v for c, v in zip(row_w, pw))
                 <= load)
    prob.solve(pulp.PULP_CBC_CMD(msg=False))
    vr = np.clip([v.value() or 0.0 for v in pr], 0.0, None)
    vw = np.clip([v.value() or 0.0 for v in pw], 0.0, None)
    return vr / vr.sum(), vw / vw.sum()


def _minimax_mw(ar: np.ndarray, aw: np.ndarray,
                iterations: int = MW_ITERATIONS
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Pure-numpy approximate LP via multiplicative weights.

    The minimax program is a zero-sum game: the adversary mixes over
    nodes (rows), the strategy mixes over quorums (columns, one simplex
    per side).  Hedge on the adversary against best-response columns
    converges to the game value at rate O(sqrt(log n / T)); the averaged
    best responses form the strategy.  Accurate to ~1e-2 at the default
    iteration budget — the scipy path is preferred whenever available.
    """
    n_nodes = ar.shape[0]
    weights = np.ones(n_nodes)
    sum_pr = np.zeros(ar.shape[1])
    sum_pw = np.zeros(aw.shape[1])
    eta = math.sqrt(math.log(max(2, n_nodes)) / iterations)
    scale = max(ar.max(initial=0.0), aw.max(initial=0.0), 1e-12)
    for _ in range(iterations):
        y = weights / weights.sum()
        # Best response: all read mass on the column minimizing the
        # adversary-weighted load (same for writes).
        br_r = np.argmin(y @ ar)
        br_w = np.argmin(y @ aw)
        sum_pr[br_r] += 1.0
        sum_pw[br_w] += 1.0
        payoff = (ar[:, br_r] + aw[:, br_w]) / (2.0 * scale)
        weights *= np.exp(eta * payoff)
        if weights.max() > 1e100:
            weights /= weights.max()
    return sum_pr / iterations, sum_pw / iterations
