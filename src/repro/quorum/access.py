"""Run algebraic quorum systems on the simulated network.

:class:`AlgebraicStrategy` adapts a :class:`~repro.quorum.algebra.QuorumSystem`
plus its optimized :class:`~repro.quorum.strategy.Strategy` to the
:class:`~repro.core.strategies.AccessStrategy` template, so majority /
grid / chained systems run under the batched access engine, the strict
accounting audit, fault campaigns, and Monte-Carlo replication exactly
like the paper's probabilistic strategies:

* ``advertise`` draws a **write** quorum from the strategy distribution
  and contacts every member through multi-hop routing (the RANDOM
  transport); the access succeeds only if *all* members were reached —
  algebraic quorums are all-or-nothing, unlike probabilistic targets;
* ``lookup`` draws a **read** quorum, probes every member, and a hit is
  shipped back to the originator via a routed reply.

Each touched member bumps the ``quorum.node_load.<id>`` counter in the
network's metrics registry (plus ``quorum.accesses``), so the simulated
per-node load can be cross-checked against the optimizer's prediction
(see :mod:`repro.experiments.fig_quorum`).

The expression elements must be (or be placed onto) live simulator node
ids: pass systems built over node ids directly, or a ``placement``
mapping abstract elements to ids.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.strategies import (
    AccessResult,
    AccessStrategy,
    ProbeFn,
    StoreFn,
    routed_reach,
    routed_reply,
)
from repro.obs.trace import record_event
from repro.quorum.algebra import Element, QuorumSystem
from repro.quorum.strategy import Strategy
from repro.simnet.network import SimNetwork


class AlgebraicStrategy(AccessStrategy):
    """Quorum access driven by an algebraic system's strategy.

    ``strategy`` is typically the optimizer's output
    (``system.strategy(read_fraction=..., optimize=...)``); passing
    ``strategy=None`` solves one lazily with the given knobs.  The
    ``target_size`` argument of ``advertise``/``lookup`` is ignored —
    the algebra, not the caller, defines the quorums — but the drawn
    quorum's size is recorded in ``AccessResult.target_size`` so audits
    and metrics stay meaningful.
    """

    name = "ALGEBRAIC"
    uniform_random = False

    def __init__(self, system: QuorumSystem,
                 strategy: Optional[Strategy] = None,
                 read_fraction: float = 0.5,
                 optimize: str = "load",
                 placement: Optional[Dict[Element, int]] = None,
                 rng: Optional[random.Random] = None,
                 access_backend: Optional[str] = None) -> None:
        self.system = system
        self.strategy = strategy or system.strategy(
            read_fraction=read_fraction, optimize=optimize)
        self.placement = dict(placement) if placement else None
        self.rng = rng
        self.access_backend = access_backend

    def _rng(self, net: SimNetwork) -> random.Random:
        return self.rng or net.rngs.stream("algebra-strategy")

    def _place(self, members: List[Element]) -> List[int]:
        if self.placement is None:
            return [int(x) for x in members]
        return [self.placement[x] for x in members]

    def _count_load(self, net: SimNetwork, nodes) -> None:
        metrics = getattr(net, "metrics", None)
        if metrics is None:
            return
        metrics.counter("quorum.accesses").inc()
        for node in nodes:
            metrics.counter(f"quorum.node_load.{node}").inc()

    def _advertise(self, net: SimNetwork, origin: int, store_fn: StoreFn,
                   target_size: int) -> AccessResult:
        members = self.strategy.sample_write(self._rng(net))
        result = AccessResult(strategy=self.name, kind="advertise",
                              target_size=len(members or ()))
        if members is None:  # degenerate (all-faulted) system
            return result
        targets = self._place(members)
        reached = []
        for target in targets:
            if target == origin or routed_reach(net, origin, target, result):
                reached.append(target)
                store_fn(target)
        result.quorum = sorted(reached)
        # All-or-nothing: a partial write quorum does not intersect
        # every read quorum, so it must not count as success.
        result.success = len(reached) == len(targets)
        self._count_load(net, reached)
        return result

    def _lookup(self, net: SimNetwork, origin: int, probe_fn: ProbeFn,
                target_size: int) -> AccessResult:
        members = self.strategy.sample_read(self._rng(net))
        result = AccessResult(strategy=self.name, kind="lookup",
                              target_size=len(members or ()))
        if members is None:
            return result
        targets = self._place(members)
        reached = []
        for target in targets:
            if target != origin and not routed_reach(net, origin, target,
                                                     result):
                continue
            reached.append(target)
            value = probe_fn(target)
            if value is None:
                continue
            result.found = True
            if result.hit_node is None:
                result.hit_node = target
                result.hit_value = value
            if target == origin:
                result.reply_delivered = True
                record_event(net, "reply", src=origin, dst=origin,
                             success=True, mechanism="local")
            else:
                routed_reply(net, target, origin, result)
        result.quorum = sorted(reached)
        if result.found:
            result.success = bool(result.reply_delivered)
        else:
            result.success = len(reached) == len(targets)
        self._count_load(net, reached)
        return result


def measured_node_loads(net: SimNetwork) -> Dict[int, float]:
    """Per-node load observed by the metrics registry.

    ``touches(x) / accesses`` over every node with a recorded counter;
    empty dict when no algebraic access ran.
    """
    metrics = getattr(net, "metrics", None)
    if metrics is None:
        return {}
    total = metrics.counter_value("quorum.accesses")
    if total <= 0:
        return {}
    prefix = "quorum.node_load."
    loads: Dict[int, float] = {}
    for name, value in metrics.snapshot().items():
        if isinstance(value, int) and name.startswith(prefix):
            loads[int(name[len(prefix):])] = value / total
    return loads


def placement_for(system: QuorumSystem,
                  net: SimNetwork) -> Dict[Element, int]:
    """Map a symbolic system's elements onto live node ids (repr-sorted
    elements onto the lowest alive ids, deterministically)."""
    elements = sorted(system.elements(), key=repr)
    alive = sorted(net.alive_nodes())
    if len(elements) > len(alive):
        raise ValueError(
            f"system needs {len(elements)} nodes, network has "
            f"{len(alive)} alive")
    return dict(zip(elements, alive))
