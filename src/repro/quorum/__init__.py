"""Declarative quorum algebra, optimizer, and simulator adapter.

Quickstart::

    from repro.quorum import Node, QuorumSystem, majority

    a, b, c = Node(0), Node(1), Node(2)
    qs = QuorumSystem(reads=a * b + b * c + a * c)   # = majority([0,1,2])
    sigma = qs.strategy(read_fraction=0.75, optimize="load")
    sigma.load()          # optimizer-predicted system load
    sigma.sample_read(rng)

See DESIGN.md §12 and ``python -m repro quorum``.
"""

from repro.quorum.algebra import (
    And,
    BUILTIN_SYSTEMS,
    Choose,
    Element,
    Expr,
    Node,
    NotIntersecting,
    Or,
    QuorumSystem,
    build_system,
    chain,
    chain_system,
    choose,
    enumerate_quorums,
    grid,
    grid_system,
    majority,
    majority_system,
)
from repro.quorum.strategy import (
    OBJECTIVES,
    Strategy,
    solve_strategy,
)
from repro.quorum.access import (
    AlgebraicStrategy,
    measured_node_loads,
    placement_for,
)

__all__ = [
    "And", "BUILTIN_SYSTEMS", "Choose", "Element", "Expr", "Node",
    "NotIntersecting", "Or", "QuorumSystem", "build_system", "chain",
    "chain_system", "choose", "enumerate_quorums", "grid", "grid_system",
    "majority", "majority_system",
    "OBJECTIVES", "Strategy", "solve_strategy",
    "AlgebraicStrategy", "measured_node_loads", "placement_for",
]
