"""Geographic (GHT/GLS-style) location service baseline.

The paper explicitly forgoes geographic knowledge ("as GPS and other
accurate positioning techniques may not always be available... we look
for quorum systems that do not rely on geographical knowledge",
Section 1).  This baseline implements what that choice gives up — and
what it avoids:

* keys hash to a *home point* in the deployment area (geographic hash
  table, GHT);
* advertisements are greedily geo-routed to the node currently nearest
  the home point (the *home node*) and replicated on its ``replication``
  nearest neighbors (GHT's perimeter replication);
* lookups geo-route to the same point and query the nodes found there.

Strengths: no quorums, O(diameter) messages per operation.  Weaknesses —
the ones the paper's probabilistic quorums dodge: greedy routing can hit
voids (sparse networks), the scheme needs every node to know its own
position, and under mobility the home node drifts away from the stored
data unless it is continually handed off.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.geometry.space import Point
from repro.simnet.network import SimNetwork


def geographic_hash(key: Hashable, side: float) -> Point:
    """Deterministic hash of a key to a point in the deployment square."""
    digest = hashlib.sha256(str(key).encode()).digest()
    x = int.from_bytes(digest[:8], "big") / 2 ** 64
    y = int.from_bytes(digest[8:16], "big") / 2 ** 64
    return (x * side, y * side)


@dataclass
class GeoRouteResult:
    """Outcome of one greedy geographic routing attempt."""

    reached: Optional[int]      # node nearest the target point, or None
    path: List[int] = field(default_factory=list)
    messages: int = 0
    stuck: bool = False         # greedy void: no neighbor closer


def greedy_route(net: SimNetwork, origin: int, target: Point,
                 max_hops: Optional[int] = None) -> GeoRouteResult:
    """Greedy geographic forwarding toward ``target``.

    Each node forwards to its known neighbor closest to the target; the
    route ends at the node that is closer to the target than all of its
    neighbors (the home node), or gets *stuck* when a forwarding attempt
    fails and no alternative neighbor makes progress.
    """
    if not net.is_alive(origin):
        return GeoRouteResult(reached=None, stuck=True)
    if max_hops is None:
        max_hops = 4 * int(math.sqrt(net.n_alive)) + 16
    current = origin
    path = [origin]
    messages = 0
    for _ in range(max_hops):
        my_dist = net.distance(net.position(current), target)
        candidates = sorted(
            (v for v in net.known_neighbors(current)),
            key=lambda v: net.distance(net.position(v), target)
            if net.is_alive(v) else math.inf)
        advanced = False
        for candidate in candidates:
            if not net.is_alive(candidate):
                continue
            cand_dist = net.distance(net.position(candidate), target)
            if cand_dist >= my_dist:
                break  # sorted: nobody makes progress
            messages += 1
            if net.one_hop_unicast(current, candidate):
                current = candidate
                path.append(candidate)
                advanced = True
                break
        if not advanced:
            # Local minimum: current is the node nearest the target (the
            # home node), or we are stuck at a void with failed links.
            return GeoRouteResult(reached=current, path=path,
                                  messages=messages, stuck=False)
    return GeoRouteResult(reached=current, path=path, messages=messages,
                          stuck=True)


@dataclass
class GeoOpResult:
    """Outcome of one advertise/lookup against the geographic service."""

    success: bool
    messages: int
    home_node: Optional[int]
    value: Any = None


class GeographicLocationService:
    """GHT-style key-value location service with home-node replication."""

    def __init__(self, net: SimNetwork, replication: int = 3,
                 rng: Optional[random.Random] = None) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.net = net
        self.replication = replication
        self.rng = rng or net.rngs.stream("geo-service")
        self._stores: Dict[int, Dict[Hashable, Any]] = {}

    # -- storage --------------------------------------------------------

    def _store_at(self, node: int, key: Hashable, value: Any) -> None:
        self._stores.setdefault(node, {})[key] = value

    def _probe(self, node: int, key: Hashable) -> Optional[Any]:
        if not self.net.is_alive(node):
            return None
        return self._stores.get(node, {}).get(key)

    def replicas_of(self, key: Hashable) -> List[int]:
        return sorted(node for node, table in self._stores.items()
                      if key in table and self.net.is_alive(node))

    # -- operations --------------------------------------------------------

    def _home_set(self, home: int) -> List[int]:
        """The home node plus its nearest alive neighbors (replicas)."""
        neighbors = sorted(
            (v for v in self.net.true_neighbors(home)),
            key=lambda v: self.net.distance(self.net.position(home),
                                            self.net.position(v)))
        return [home] + neighbors[:self.replication - 1]

    def advertise(self, origin: int, key: Hashable, value: Any) -> GeoOpResult:
        target = geographic_hash(key, self.net.config.side)
        route = greedy_route(self.net, origin, target)
        if route.reached is None or route.stuck:
            return GeoOpResult(success=False, messages=route.messages,
                               home_node=route.reached)
        messages = route.messages
        home = route.reached
        for replica in self._home_set(home):
            if replica != home:
                messages += 1
                if not self.net.one_hop_unicast(home, replica):
                    continue
            self._store_at(replica, key, value)
        return GeoOpResult(success=True, messages=messages, home_node=home)

    def lookup(self, origin: int, key: Hashable) -> GeoOpResult:
        target = geographic_hash(key, self.net.config.side)
        route = greedy_route(self.net, origin, target)
        if route.reached is None:
            return GeoOpResult(success=False, messages=route.messages,
                               home_node=None)
        messages = route.messages
        home = route.reached
        # Query the home set: with mobility or churn the data may now sit
        # on a node *near* the hash point rather than the exact nearest.
        value = None
        for candidate in self._home_set(home):
            value = self._probe(candidate, key)
            if candidate != home:
                messages += 1
            if value is not None:
                break
        if value is None:
            return GeoOpResult(success=False, messages=messages,
                               home_node=home)
        # Reply travels the reverse greedy path.
        from repro.randomwalk.reply import reverse_path_of, send_reply
        reply = send_reply(self.net, reverse_path_of(route.path))
        messages += reply.messages
        return GeoOpResult(success=reply.success, messages=messages,
                           home_node=home, value=value)
