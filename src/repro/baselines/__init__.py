"""Baseline systems the paper positions itself against: strict
deterministic quorums and geographic (GHT-style) location services."""

from repro.baselines.deterministic import (
    GridConfiguration,
    GridStrategy,
    MajorityStrategy,
)
from repro.baselines.geographic import (
    GeographicLocationService,
    GeoOpResult,
    GeoRouteResult,
    geographic_hash,
    greedy_route,
)

__all__ = [
    "GridConfiguration",
    "GridStrategy",
    "MajorityStrategy",
    "GeographicLocationService",
    "GeoOpResult",
    "GeoRouteResult",
    "geographic_hash",
    "greedy_route",
]
