"""Deterministic (strict) quorum baselines.

The paper's motivation (Section 1): "the dynamic nature of ad hoc networks
makes the usage of strict deterministic quorums highly costly".  These
baselines let the benchmarks quantify that claim against the probabilistic
constructions:

* :class:`MajorityStrategy` — the classic majority quorum: every access
  contacts ``floor(n/2) + 1`` nodes.  Guaranteed intersection, enormous
  per-access cost, and a *strict* failure mode: if a majority cannot be
  assembled the access fails outright.
* :class:`GridStrategy` — a sqrt(n) x sqrt(n) grid biquorum (row quorums
  vs column quorums; every row intersects every column).  Cheap accesses
  (~sqrt(n) members), but the grid is a *fixed configuration*: a single
  crashed member breaks the strict guarantee of every quorum containing
  it until the system is explicitly reconfigured — exactly the
  reconfiguration cost probabilistic quorums avoid (Section 6.1).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.core.strategies import AccessResult, AccessStrategy, ProbeFn, StoreFn
from repro.obs.trace import record_event
from repro.simnet.network import SimNetwork


def _contact_all(net: SimNetwork, origin: int, members: Sequence[int],
                 result: AccessResult, store_fn: Optional[StoreFn] = None,
                 probe_fn: Optional[ProbeFn] = None) -> int:
    """Route to every member; returns how many were reached."""
    reached = 0
    for member in members:
        if member == origin:
            reached += 1
        else:
            route = net.route(origin, member)
            result.messages += route.data_messages
            result.routing_messages += route.routing_messages
            if not route.success:
                continue
            reached += 1
        result.quorum.append(member)
        if store_fn is not None:
            store_fn(member)
        if probe_fn is not None:
            value = probe_fn(member)
            if value is not None:
                result.found = True
                if result.hit_node is None:
                    result.hit_node = member
                    result.hit_value = value
                if member != origin:
                    reply = net.route(member, origin)
                    result.messages += reply.data_messages
                    result.routing_messages += reply.routing_messages
                    record_event(net, "reply", src=member, dst=origin,
                                 success=reply.success, mechanism="routed")
                    if reply.success:
                        result.reply_delivered = True
                    elif result.reply_delivered is None:
                        result.reply_delivered = False
                else:
                    result.reply_delivered = True
                    record_event(net, "reply", src=origin, dst=origin,
                                 success=True, mechanism="local")
    result.quorum = sorted(set(result.quorum))
    return reached


class MajorityStrategy(AccessStrategy):
    """Strict majority quorums accessed through routing."""

    name = "MAJORITY"
    uniform_random = False

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng

    def _members(self, net: SimNetwork, origin: int) -> List[int]:
        alive = net.alive_nodes()
        needed = len(alive) // 2 + 1
        rng = self.rng or net.rngs.stream("majority-strategy")
        pool = [v for v in alive if v != origin]
        rng.shuffle(pool)
        members = [origin] + pool
        return members[:needed]

    def _advertise(self, net: SimNetwork, origin: int, store_fn: StoreFn,
                   target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="advertise",
                              target_size=target_size)
        members = self._members(net, origin)
        reached = _contact_all(net, origin, members, result,
                               store_fn=store_fn)
        # Strict semantics: the write commits only with a full majority.
        result.success = reached >= len(members)
        return result

    def _lookup(self, net: SimNetwork, origin: int, probe_fn: ProbeFn,
                target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="lookup",
                              target_size=target_size)
        members = self._members(net, origin)
        reached = _contact_all(net, origin, members, result,
                               probe_fn=probe_fn)
        complete = reached >= len(members)
        if result.found:
            result.success = bool(result.reply_delivered)
        else:
            result.success = complete
        return result


class GridConfiguration:
    """A fixed sqrt(n) x sqrt(n) arrangement of node ids.

    Shared by the advertise (row) and lookup (column) strategies; must be
    explicitly :meth:`reconfigure`-d after membership changes — the
    costly step probabilistic quorums do away with.
    """

    def __init__(self, net: SimNetwork) -> None:
        self.net = net
        self.members: List[int] = []
        self.side = 0
        self.reconfigure()

    def reconfigure(self) -> None:
        """Rebuild the grid from the current alive set."""
        alive = self.net.alive_nodes()
        self.side = max(1, int(math.floor(math.sqrt(len(alive)))))
        usable = self.side * self.side
        self.members = alive[:usable]

    def row(self, index: int) -> List[int]:
        index %= self.side
        return self.members[index * self.side:(index + 1) * self.side]

    def column(self, index: int) -> List[int]:
        index %= self.side
        return self.members[index::self.side]

    def row_of(self, node: int) -> int:
        if node in self.members:
            return self.members.index(node) // self.side
        return node % self.side

    def column_of(self, node: int) -> int:
        if node in self.members:
            return self.members.index(node) % self.side
        return node % self.side


class GridStrategy(AccessStrategy):
    """One side of a grid biquorum: rows advertise, columns look up."""

    uniform_random = False

    def __init__(self, grid: GridConfiguration, axis: str = "row") -> None:
        if axis not in ("row", "column"):
            raise ValueError("axis must be 'row' or 'column'")
        self.grid = grid
        self.axis = axis
        self.name = f"GRID-{axis.upper()}"

    def _members(self, origin: int) -> List[int]:
        if self.axis == "row":
            return self.grid.row(self.grid.row_of(origin))
        return self.grid.column(self.grid.column_of(origin))

    def _advertise(self, net: SimNetwork, origin: int, store_fn: StoreFn,
                   target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="advertise",
                              target_size=target_size)
        members = self._members(origin)
        reached = _contact_all(net, origin, members, result,
                               store_fn=store_fn)
        # Strict grid semantics: every row member must be written, or the
        # row/column intersection guarantee is void.
        result.success = reached >= len(members)
        return result

    def _lookup(self, net: SimNetwork, origin: int, probe_fn: ProbeFn,
                target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="lookup",
                              target_size=target_size)
        members = self._members(origin)
        reached = _contact_all(net, origin, members, result,
                               probe_fn=probe_fn)
        complete = reached >= len(members)
        if result.found:
            result.success = bool(result.reply_delivered)
        else:
            result.success = complete
        return result
