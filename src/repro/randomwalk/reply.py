"""Reverse-path replies for random-walk lookups (Sections 6.2, 7.2).

When a PATH/UNIQUE-PATH lookup hits an advertisement, the storing node
sends the reply back along the reverse of the recorded walk path — no
routing involved.  Three mechanisms from the paper are implemented:

* **reply-path reduction** (Section 7.2): before forwarding to the next
  reverse hop ``u``, node ``v`` checks whether any *later* node on the
  reverse path is currently a neighbor, and if so skips straight to the one
  nearest the origin, shortening the reply path;
* **reply-path local repair** (Section 6.2): if the MAC reports the next
  reverse hop unreachable, ``v`` tries to reach subsequent path nodes with
  TTL-3 scoped routing instead of dropping the reply;
* **global fallback**: if even the last hop (the origin) cannot be reached
  within TTL 3, a full routed send is attempted (the paper: "v has no
  choice but to invoke routing to w with a large TTL"), unless disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.obs.profile import profiled
from repro.obs.trace import record_event
from repro.simnet.network import SimNetwork

DEFAULT_REPAIR_TTL = 3


@dataclass
class ReplyResult:
    """Outcome of sending one reply along a reverse walk path."""

    success: bool
    messages: int = 0           # network-layer data messages
    routing_messages: int = 0   # control messages spent on repairs
    local_repairs: int = 0
    global_repairs: int = 0
    dropped_at: Optional[int] = None
    hops_taken: int = 0
    nodes_traversed: Optional[List[int]] = None  # reply's actual path


def reverse_path_of(walk_path: Sequence[int]) -> List[int]:
    """Reverse path for a reply: from the hit node back to the originator.

    Loops in the walk are *erased* (when a node reappears, the detour
    between its occurrences is cut), so every consecutive pair in the
    result was an actual walk hop — the reply only traverses links the
    walk itself used.
    """
    rpath: List[int] = []
    index: dict = {}
    for node in reversed(list(walk_path)):
        if node in index:
            cut = index[node]
            for removed in rpath[cut + 1:]:
                del index[removed]
            del rpath[cut + 1:]
        else:
            index[node] = len(rpath)
            rpath.append(node)
    return rpath


@profiled("reply.deliver")
def send_reply(
    net: SimNetwork,
    reverse_path: Sequence[int],
    reduction: bool = True,
    local_repair: bool = False,
    repair_ttl: int = DEFAULT_REPAIR_TTL,
    allow_global_repair: bool = True,
) -> ReplyResult:
    """Deliver a reply from ``reverse_path[0]`` to ``reverse_path[-1]``.

    Returns the delivery outcome plus the full message accounting.  With
    both repairs disabled this reproduces the fragile behaviour of
    Figure 13 (replies dropped under fast mobility); with
    ``local_repair=True`` it reproduces Figure 14.
    """
    rpath = list(reverse_path)
    if not rpath:
        empty = ReplyResult(success=False)
        record_event(net, "reply", src=None, dst=None, success=False,
                     mechanism="reverse-path", hops=0)
        return empty
    origin = rpath[-1]
    result = ReplyResult(success=False, nodes_traversed=[rpath[0]])

    def _trace() -> None:
        record_event(net, "reply", src=rpath[0], dst=origin,
                     success=result.success, mechanism="reverse-path",
                     hops=result.hops_taken)

    pos = 0
    current = rpath[0]
    if current == origin:
        result.success = True
        _trace()
        return result

    engine = getattr(net, "access_engine", None)
    fast = engine.unicast_resolver(net) if engine is not None else None
    while current != origin:
        # Choose the next target: reduction jumps to the latest path node
        # that is currently a direct neighbor.
        next_index = pos + 1
        if reduction:
            neighbors = set(net.known_neighbors(current))
            for j in range(len(rpath) - 1, pos, -1):
                if rpath[j] in neighbors:
                    next_index = j
                    break
        target = rpath[next_index]
        result.messages += 1
        sent = fast(current, target) if fast is not None else None
        if sent is None:
            sent = net.one_hop_unicast(current, target)
        if sent:
            current = target
            pos = next_index
            result.hops_taken += 1
            result.nodes_traversed.append(current)
            continue

        # MAC failure: target moved away or died.
        if not local_repair:
            result.dropped_at = current
            _trace()
            return result

        repaired = False
        for j in range(next_index, len(rpath)):
            candidate = rpath[j]
            if not net.is_alive(candidate):
                continue
            is_last = candidate == origin
            scoped = net.scoped_route(current, candidate, max_hops=repair_ttl)
            result.routing_messages += scoped.routing_messages
            result.messages += scoped.data_messages
            if scoped.success:
                result.local_repairs += 1
                current = candidate
                pos = j
                result.hops_taken += scoped.hops
                result.nodes_traversed.extend(scoped.path[1:])
                repaired = True
                break
            if is_last and allow_global_repair:
                routed = net.route(current, origin)
                result.routing_messages += routed.routing_messages
                result.messages += routed.data_messages
                if routed.success:
                    result.global_repairs += 1
                    current = origin
                    pos = len(rpath) - 1
                    result.hops_taken += routed.hops
                    result.nodes_traversed.extend(routed.path[1:])
                    repaired = True
                break
        if not repaired:
            result.dropped_at = current
            _trace()
            return result

    result.success = True
    _trace()
    return result
