"""Random-walk substrate: simple/unique/max-degree walks and reverse-path replies."""

from repro.randomwalk.reply import (
    DEFAULT_REPAIR_TTL,
    ReplyResult,
    reverse_path_of,
    send_reply,
)
from repro.randomwalk.walker import (
    SampleResult,
    WalkResult,
    max_degree_walk_sample,
    random_walk,
)

__all__ = [
    "DEFAULT_REPAIR_TTL",
    "ReplyResult",
    "reverse_path_of",
    "send_reply",
    "SampleResult",
    "WalkResult",
    "max_degree_walk_sample",
    "random_walk",
]
