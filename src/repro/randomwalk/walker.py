"""Random walks over a live ad hoc network (Sections 4.2, 4.3, 6.2).

Implements the walk machinery behind the PATH and UNIQUE-PATH access
strategies:

* **simple random walk** — each step moves to a uniformly chosen neighbor
  from the node's (possibly stale) neighbor table;
* **self-avoiding (unique) walk** — prefers neighbors not yet visited,
  falling back to a uniform neighbor when all are visited (Section 4.3);
* **RW salvation** — when the MAC reports a failed forward (the chosen
  neighbor moved away or died), the node immediately retries another random
  neighbor *within the same step* (Section 6.2, from RaWMS);
* **early halting** — an optional per-node stop predicate aborts the walk
  the moment the searched datum is found (Section 7.1);
* the walk header records the visited-node list, which both counts distinct
  nodes and provides the reverse path for replies.

Also provides the **max-degree random walk** used for uniform sampling in
the membership-free RANDOM implementation (Section 4.1, RaWMS).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.obs.trace import record_event
from repro.simnet.network import SimNetwork


@dataclass
class WalkResult:
    """Outcome of one random walk."""

    visited: List[int]              # distinct nodes in first-visit order
    path: List[int]                 # full node sequence (with revisits)
    steps: int                      # successful forwards (network messages)
    messages: int                   # total network messages incl. failed tries
    completed: bool                 # reached the target unique count
    halted_early: bool = False      # stop predicate fired
    halted_at: Optional[int] = None
    dropped: bool = False           # walk died (no forwardable neighbor)

    @property
    def unique_count(self) -> int:
        return len(self.visited)


def random_walk(
    net: SimNetwork,
    start: int,
    target_unique: int,
    unique: bool = False,
    salvation: bool = True,
    stop_predicate: Optional[Callable[[int], bool]] = None,
    visit: Optional[Callable[[int], None]] = None,
    max_steps: Optional[int] = None,
    rng: Optional[random.Random] = None,
    use_stale_neighbors: bool = True,
) -> WalkResult:
    """Run one (self-avoiding) random walk until it has visited
    ``target_unique`` distinct nodes.

    ``stop_predicate(node)`` is evaluated on every *newly visited* node
    (including the start); returning True halts the walk early.
    ``visit(node)`` is invoked on each first visit (e.g. to store an
    advertisement).  ``max_steps`` bounds runaway walks (defaults to
    ``20 * target_unique + 50``).

    Next hops are chosen from the node's heartbeat neighbor table (stale
    under mobility) unless ``use_stale_neighbors=False``; a failed one-hop
    forward triggers salvation retries when enabled, otherwise drops the
    walk.
    """
    if target_unique < 1:
        raise ValueError("target_unique must be >= 1")
    if not net.is_alive(start):
        return WalkResult(visited=[], path=[], steps=0, messages=0,
                          completed=False, dropped=True)
    rng = rng or net.rngs.stream("walk")
    if max_steps is None:
        max_steps = 20 * target_unique + 50
    # Batched access engine: an exact fast path for the per-hop forwards
    # (None when it cannot prove identity; each send may also decline).
    engine = getattr(net, "access_engine", None)
    fast = engine.unicast_resolver(net) if engine is not None else None

    visited: List[int] = [start]
    visited_set: Set[int] = {start}
    path: List[int] = [start]
    steps = 0
    messages = 0

    if visit is not None:
        visit(start)
    if stop_predicate is not None and stop_predicate(start):
        return WalkResult(visited=visited, path=path, steps=steps,
                          messages=messages, completed=True,
                          halted_early=True, halted_at=start)

    current = start
    while len(visited_set) < target_unique and steps < max_steps:
        neighbors = (net.known_neighbors(current) if use_stale_neighbors
                     else net.true_neighbors(current))
        if not neighbors:
            return WalkResult(visited=visited, path=path, steps=steps,
                              messages=messages, completed=False, dropped=True)
        if unique:
            fresh = [v for v in neighbors if v not in visited_set]
            candidates = fresh if fresh else list(neighbors)
        else:
            candidates = list(neighbors)
        rng.shuffle(candidates)

        forwarded_to: Optional[int] = None
        attempts = candidates if salvation else candidates[:1]
        for candidate in attempts:
            messages += 1
            sent = fast(current, candidate) if fast is not None else None
            if sent is None:
                sent = net.one_hop_unicast(current, candidate)
            if sent:
                forwarded_to = candidate
                break
            if not salvation:
                break
        if forwarded_to is None:
            return WalkResult(visited=visited, path=path, steps=steps,
                              messages=messages, completed=False, dropped=True)

        steps += 1
        record_event(net, "walk-step", walk="random", src=path[-1],
                     dst=forwarded_to, step=steps, unique=unique)
        current = forwarded_to
        path.append(current)
        if current not in visited_set:
            visited_set.add(current)
            visited.append(current)
            if visit is not None:
                visit(current)
            if stop_predicate is not None and stop_predicate(current):
                return WalkResult(visited=visited, path=path, steps=steps,
                                  messages=messages, completed=True,
                                  halted_early=True, halted_at=current)

    completed = len(visited_set) >= target_unique
    return WalkResult(visited=visited, path=path, steps=steps,
                      messages=messages, completed=completed)


@dataclass
class SampleResult:
    """Outcome of one max-degree random-walk sample."""

    node: Optional[int]
    steps: int      # walk transitions including self-loops
    messages: int   # actual transmissions (self-loops are free)
    path: List[int] = field(default_factory=list)  # hops taken (for replies)


def max_degree_walk_sample(
    net: SimNetwork,
    start: int,
    walk_length: Optional[int] = None,
    max_degree: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> SampleResult:
    """Draw one near-uniform node sample with a max-degree random walk.

    At node ``u`` with degree ``d(u)``: move to a uniform neighbor with
    probability ``d(u)/d_max``, otherwise self-loop.  This walk's stationary
    distribution is uniform; after the mixing time (~``n/2`` steps on RGGs,
    per RaWMS) the end node is a uniform sample.
    """
    rng = rng or net.rngs.stream("mdwalk")
    n = net.n_alive
    if walk_length is None:
        walk_length = max(1, n // 2)
    if max_degree is None:
        # Scan stored list lengths directly: known_neighbors() copies
        # every list, which dominates at large n.
        tables = getattr(net, "_known_neighbors", None)
        if tables is not None:
            degrees = [len(tables.get(v, ())) for v in net.alive_nodes()]
        else:
            degrees = [len(net.known_neighbors(v)) for v in net.alive_nodes()]
        max_degree = max(degrees) if degrees else 1
    if not net.is_alive(start):
        return SampleResult(node=None, steps=0, messages=0)

    engine = getattr(net, "access_engine", None)
    fast = engine.unicast_resolver(net) if engine is not None else None
    current = start
    steps = 0
    messages = 0
    path = [start]
    for _ in range(walk_length):
        steps += 1
        neighbors = net.known_neighbors(current)
        if not neighbors:
            return SampleResult(node=None, steps=steps, messages=messages,
                                path=path)
        if rng.random() >= len(neighbors) / max(max_degree, len(neighbors)):
            continue  # self-loop: no transmission
        candidates = list(neighbors)
        rng.shuffle(candidates)
        forwarded: Optional[int] = None
        for candidate in candidates:  # salvation built in
            messages += 1
            sent = fast(current, candidate) if fast is not None else None
            if sent is None:
                sent = net.one_hop_unicast(current, candidate)
            if sent:
                forwarded = candidate
                break
        if forwarded is None:
            return SampleResult(node=None, steps=steps, messages=messages,
                                path=path)
        record_event(net, "walk-step", walk="max-degree", src=current,
                     dst=forwarded, step=steps)
        current = forwarded
        path.append(current)
    return SampleResult(node=current, steps=steps, messages=messages, path=path)
