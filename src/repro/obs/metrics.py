"""Uniform counters and histograms for experiments and benchmarks.

Every :class:`~repro.simnet.network.SimNetwork` owns a
:class:`MetricsRegistry`; the simulator core and the access strategies
populate a fixed, documented set of metric names (see DESIGN.md,
Observability layer) so figure drivers and benchmarks can report audited
numbers instead of re-deriving them ad hoc:

* ``net.unicasts`` / ``net.broadcasts`` / ``net.unicast_failures`` /
  ``net.routing`` — transmission-level counters;
* ``access.<kind>.count|messages|routing|hits|reply_drops`` — per-access
  counters, ``<kind>`` in ``advertise``/``lookup``;
* ``access.<kind>.latency|quorum_size`` — per-access histograms.
"""

from __future__ import annotations

import math
import os
import random
import zlib
from typing import Dict, List, Optional, Union


class P2Quantile:
    """Streaming quantile estimator (Jain & Chlamtac's P² algorithm).

    O(1) memory and O(1) per observation: five markers track the target
    quantile, its neighbours, and the extremes, adjusted with a
    piecewise-parabolic fit.  Exact for the first five observations
    (they are simply sorted); the estimate converges for larger streams.
    Shared by the SLO monitor's sliding windows and the bounded
    histogram mode.
    """

    __slots__ = ("q", "_n", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self._n = 0
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._rates = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    @property
    def count(self) -> int:
        return self._n

    def observe(self, value: float) -> None:
        self._n += 1
        if self._n <= 5:
            self._heights.append(value)
            self._heights.sort()
            if self._n == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0 + 4.0 * r for r in self._rates]
            return
        h, pos = self._heights, self._positions
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= h[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._rates[i]
        for i in (1, 2, 3):
            delta = self._desired[i] - pos[i]
            if ((delta >= 1.0 and pos[i + 1] - pos[i] > 1.0)
                    or (delta <= -1.0 and pos[i - 1] - pos[i] < -1.0)):
                step = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] += step * ((h[i + int(step)] - h[i])
                                    / (pos[i + int(step)] - pos[i]))
                pos[i] += step
        return

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step) * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step) * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1]))

    def value(self) -> float:
        """Current estimate of the target quantile; NaN when empty."""
        if self._n == 0:
            return math.nan
        if self._n <= 5:
            ordered = self._heights
            rank = max(0, min(len(ordered) - 1,
                              int(math.ceil(self.q * len(ordered))) - 1))
            return ordered[rank]
        return self._heights[2]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A value distribution with summary statistics.

    By default raw observations are retained (simulation scale makes
    this cheap) and quantiles are exact — nearest-rank over a sorted
    order that is **cached** between observations, so repeated
    ``percentile()`` calls do not re-sort.  An **empty** histogram
    reports ``nan`` for mean/min/max/percentiles (never raises), so
    summaries of runs with zero observations — e.g. a trace with no
    lookups — render cleanly instead of inventing a 0.0 latency.

    Million-op service runs can opt into a **bounded** mode
    (``bounded=True``): count/sum/min/max stay exact and O(1), while
    quantiles come from a fixed-size uniform reservoir (Vitter's
    Algorithm R, seeded deterministically from the metric name), so
    memory no longer grows with the stream.  The exact mode stays the
    default for figure parity.
    """

    __slots__ = ("name", "values", "_sorted", "_bounded", "_capacity",
                 "_count", "_sum", "_min", "_max", "_rng")

    def __init__(self, name: str, bounded: bool = False,
                 capacity: int = 4096) -> None:
        if bounded and capacity < 1:
            raise ValueError("bounded histogram capacity must be >= 1")
        self.name = name
        self.values: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._bounded = bounded
        self._capacity = capacity
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        # Deterministic per-name reservoir stream: seeded runs stay
        # reproducible (hash() is process-salted; crc32 is not).
        self._rng = (random.Random(zlib.crc32(name.encode("utf-8")))
                     if bounded else None)

    @property
    def bounded(self) -> bool:
        return self._bounded

    def observe(self, value: float) -> None:
        self._sorted = None
        if not self._bounded:
            self.values.append(value)
            return
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self.values) < self._capacity:
            self.values.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self._capacity:
                self.values[slot] = value

    @property
    def count(self) -> int:
        return self._count if self._bounded else len(self.values)

    @property
    def sum(self) -> float:
        return self._sum if self._bounded else sum(self.values)

    @property
    def mean(self) -> float:
        count = self.count
        return self.sum / count if count else math.nan

    @property
    def min(self) -> float:
        if self._bounded:
            return self._min if self._count else math.nan
        return min(self.values) if self.values else math.nan

    @property
    def max(self) -> float:
        if self._bounded:
            return self._max if self._count else math.nan
        return max(self.values) if self.values else math.nan

    def percentile(self, q: float) -> float:
        """q-th percentile (nearest-rank), q in [0, 100].

        Exact in the default mode; reservoir-approximate in bounded
        mode once the stream exceeds the capacity.  ``nan`` on an empty
        histogram (range checking still applies).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.values:
            return math.nan
        if self._sorted is None:
            self._sorted = sorted(self.values)
        ordered = self._sorted
        rank = max(0, min(len(ordered) - 1,
                          int(math.ceil(q / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Histogram({self.name}: n={self.count}, "
                f"mean={self.mean:.4g})")


class MetricsRegistry:
    """Named counters and histograms with a stable snapshot format.

    ``bounded_capacity`` opts every histogram into the bounded
    (reservoir) mode with that capacity; the default (None, or the
    ``REPRO_HIST_CAPACITY`` env var) keeps the exact mode so figure
    numbers are bit-identical to the historical ones.
    """

    def __init__(self, bounded_capacity: Optional[int] = None) -> None:
        if bounded_capacity is None:
            env = os.environ.get("REPRO_HIST_CAPACITY", "").strip()
            if env:
                bounded_capacity = int(env)
        if bounded_capacity is not None and bounded_capacity < 1:
            raise ValueError("bounded_capacity must be >= 1")
        self.bounded_capacity = bounded_capacity
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def counter_value(self, name: str) -> int:
        """Current value of a counter; 0 if it was never created.

        Unlike :meth:`counter`, reading never materialises the counter,
        so observers (e.g. the churn-adaptive refresh daemon) do not
        perturb the snapshot key set.
        """
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            if self.bounded_capacity is not None:
                histogram = Histogram(name, bounded=True,
                                      capacity=self.bounded_capacity)
            else:
                histogram = Histogram(name)
            self._histograms[name] = histogram
        return histogram

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()

    def snapshot(self) -> Dict[str, Union[int, Dict[str, float]]]:
        """Flat dict: counters as ints, histograms as summary dicts."""
        out: Dict[str, Union[int, Dict[str, float]]] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._histograms):
            h = self._histograms[name]
            out[name] = {
                "count": h.count, "sum": h.sum, "mean": h.mean,
                "min": h.min, "max": h.max,
                "p50": h.percentile(50), "p99": h.percentile(99),
            }
        return out

    def render(self) -> str:
        """Aligned ASCII table of the snapshot (for reports/CLI)."""
        lines = []
        snap = self.snapshot()
        width = max((len(n) for n in snap), default=0)
        for name, value in snap.items():
            if isinstance(value, dict):
                detail = (f"n={value['count']} mean={value['mean']:.4g} "
                          f"p50={value['p50']:.4g} p99={value['p99']:.4g} "
                          f"max={value['max']:.4g}")
            else:
                detail = str(value)
            lines.append(f"{name.ljust(width)}  {detail}")
        return "\n".join(lines)
