"""Uniform counters and histograms for experiments and benchmarks.

Every :class:`~repro.simnet.network.SimNetwork` owns a
:class:`MetricsRegistry`; the simulator core and the access strategies
populate a fixed, documented set of metric names (see DESIGN.md,
Observability layer) so figure drivers and benchmarks can report audited
numbers instead of re-deriving them ad hoc:

* ``net.unicasts`` / ``net.broadcasts`` / ``net.unicast_failures`` /
  ``net.routing`` — transmission-level counters;
* ``access.<kind>.count|messages|routing|hits|reply_drops`` — per-access
  counters, ``<kind>`` in ``advertise``/``lookup``;
* ``access.<kind>.latency|quorum_size`` — per-access histograms.
"""

from __future__ import annotations

import math
from typing import Dict, List, Union


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A value distribution with summary statistics.

    Raw observations are retained (simulation scale makes this cheap),
    so exact quantiles are available.  An **empty** histogram reports
    ``nan`` for mean/min/max/percentiles (never raises), so summaries
    of runs with zero observations — e.g. a trace with no lookups —
    render cleanly instead of inventing a 0.0 latency.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.sum / len(self.values) if self.values else math.nan

    @property
    def min(self) -> float:
        return min(self.values) if self.values else math.nan

    @property
    def max(self) -> float:
        return max(self.values) if self.values else math.nan

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (nearest-rank), q in [0, 100].

        ``nan`` on an empty histogram (range checking still applies).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.values:
            return math.nan
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1,
                          int(math.ceil(q / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Histogram({self.name}: n={self.count}, "
                f"mean={self.mean:.4g})")


class MetricsRegistry:
    """Named counters and histograms with a stable snapshot format."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def counter_value(self, name: str) -> int:
        """Current value of a counter; 0 if it was never created.

        Unlike :meth:`counter`, reading never materialises the counter,
        so observers (e.g. the churn-adaptive refresh daemon) do not
        perturb the snapshot key set.
        """
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()

    def snapshot(self) -> Dict[str, Union[int, Dict[str, float]]]:
        """Flat dict: counters as ints, histograms as summary dicts."""
        out: Dict[str, Union[int, Dict[str, float]]] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._histograms):
            h = self._histograms[name]
            out[name] = {
                "count": h.count, "sum": h.sum, "mean": h.mean,
                "min": h.min, "max": h.max,
                "p50": h.percentile(50), "p99": h.percentile(99),
            }
        return out

    def render(self) -> str:
        """Aligned ASCII table of the snapshot (for reports/CLI)."""
        lines = []
        snap = self.snapshot()
        width = max((len(n) for n in snap), default=0)
        for name, value in snap.items():
            if isinstance(value, dict):
                detail = (f"n={value['count']} mean={value['mean']:.4g} "
                          f"p50={value['p50']:.4g} p99={value['p99']:.4g} "
                          f"max={value['max']:.4g}")
            else:
                detail = str(value)
            lines.append(f"{name.ljust(width)}  {detail}")
        return "\n".join(lines)
