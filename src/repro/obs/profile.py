"""Phase profiler: nested wall-clock timers for the simulator's hot paths.

Answers "where does fig8 spend its time" with one table.  A small, fixed
catalogue of phases (see DESIGN.md, Observability layer) instruments the
chunky operations — neighbor-table rebuilds, the batched kernel pass,
mobility position evaluation, strategy advertise/lookup, routing
discovery, reply delivery, churn patches — and aggregates per-phase
*calls*, *cumulative* (wall time inside the phase, children included)
and *self* (cumulative minus time spent in nested phases).

Profiling is **off by default** and near-zero cost when disabled: call
sites either get the shared no-op context manager back (one attribute
check + one call) or, via the :func:`profiled` decorator, skip straight
to the wrapped function after a single ``enabled`` check.  Enable it
with ``REPRO_PROFILE=1`` (any value other than ``0``/empty) or
:meth:`PhaseProfiler.enable`.

The profiler is process-local.  The sweep runner
(:func:`repro.experiments.runner.run_sweep`) ships each pool worker's
snapshot back with its result and merges them, so ``--jobs N`` runs
still produce one complete table.
"""

from __future__ import annotations

import functools
import os
from time import perf_counter
from typing import Callable, Dict, List, Optional


def profile_enabled_from_env(env: Optional[dict] = None) -> bool:
    """True when ``REPRO_PROFILE`` asks for profiling (unset/``0`` = off)."""
    value = (env or os.environ).get("REPRO_PROFILE", "").strip()
    return value not in ("", "0")


class _NullSpan:
    """Shared no-op context manager returned while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live phase activation (a frame on the profiler's stack)."""

    __slots__ = ("profiler", "name", "start", "child")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self.profiler = profiler
        self.name = name
        self.child = 0.0
        self.start = 0.0

    def __enter__(self) -> "_Span":
        self.profiler._stack.append(self)
        self.start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = perf_counter() - self.start
        stack = self.profiler._stack
        stack.pop()
        stat = self.profiler._stats.get(self.name)
        if stat is None:
            stat = self.profiler._stats[self.name] = [0, 0.0, 0.0]
        stat[0] += 1
        stat[1] += elapsed
        stat[2] += elapsed - self.child
        if stack:
            stack[-1].child += elapsed


class PhaseProfiler:
    """Aggregating nested wall-clock phase timer.

    ``phase(name)`` opens a span; spans nest, and a child's elapsed time
    is subtracted from its parent's *self* time.  A phase that re-enters
    itself recursively double-counts its cumulative time (the catalogue
    phases do not self-nest except for nested daemon accesses, which are
    rare enough not to matter for attribution).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._stack: List[_Span] = []
        # name -> [calls, cumulative_seconds, self_seconds]
        self._stats: Dict[str, List[float]] = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> "PhaseProfiler":
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._stack.clear()
        self._stats.clear()

    # -- recording ---------------------------------------------------------

    def phase(self, name: str):
        """Context manager timing one phase activation."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    # -- aggregation --------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {calls, cumulative, self}}`` with times in seconds."""
        return {
            name: {"calls": int(stat[0]), "cumulative": stat[1],
                   "self": stat[2]}
            for name, stat in self._stats.items()
        }

    def merge(self, snapshot: Dict[str, Dict[str, float]]) -> None:
        """Fold another profiler's snapshot in (e.g. a pool worker's)."""
        for name, stat in snapshot.items():
            mine = self._stats.get(name)
            if mine is None:
                mine = self._stats[name] = [0, 0.0, 0.0]
            mine[0] += int(stat.get("calls", 0))
            mine[1] += float(stat.get("cumulative", 0.0))
            mine[2] += float(stat.get("self", 0.0))

    def render(self) -> str:
        """Aligned per-phase table, heaviest *self* time first."""
        if not self._stats:
            return "phase profiler: no phases recorded"
        rows = sorted(self._stats.items(), key=lambda kv: -kv[1][2])
        total_self = sum(stat[2] for _, stat in rows) or 1.0
        width = max(len("phase"), max(len(name) for name, _ in rows))
        lines = [f"{'phase'.ljust(width)}  {'calls':>8}  {'cum s':>10}  "
                 f"{'self s':>10}  {'self %':>6}"]
        for name, (calls, cum, self_s) in rows:
            lines.append(
                f"{name.ljust(width)}  {int(calls):>8}  {cum:>10.4f}  "
                f"{self_s:>10.4f}  {100.0 * self_s / total_self:>5.1f}%")
        return "\n".join(lines)


#: The process-wide profiler every call site shares.
PROFILER = PhaseProfiler(enabled=profile_enabled_from_env())


def profiled(name: str) -> Callable:
    """Decorator timing every call of the wrapped function as ``name``.

    When profiling is disabled the wrapper is a single truthiness check
    on top of the call, so it is safe on warm (but not per-hop-hot)
    paths.
    """
    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not PROFILER.enabled:
                return fn(*args, **kwargs)
            with PROFILER.phase(name):
                return fn(*args, **kwargs)
        return wrapper
    return decorate
