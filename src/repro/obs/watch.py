"""Live invariant watchers on the trace stream.

Where the accounting auditor (:mod:`repro.obs.audit`) replays one
access's retained events *after* the access returns, watchers are
**streaming**: a :class:`WatcherHub` subscribes to
:meth:`EventTrace.emit <repro.obs.trace.EventTrace.record>` and delivers
every :class:`~repro.obs.trace.TraceEvent` to its registered
:class:`Watcher` objects the moment it is recorded — so a safety
invariant broken halfway through a fault campaign stops the run *there*,
not at the post-mortem.

Builtin invariant catalogue (see DESIGN.md §13):

* :class:`MonotonicityWatcher` — sim clock, event sequence numbers, and
  (when stamped) ``topology_version`` never regress;
* :class:`ConservationWatcher` — a streaming message/routing ledger per
  access span, mirroring the auditor's conservation check but windowed
  at every ``access-end`` so accounting drift is caught mid-run;
* :class:`NoFabricationWatcher` — no probe ever hits a key that no
  prior advertise stored (the Byzantine-campaign safety gate: a faulty
  replica cannot invent values);
* :class:`QuorumIntersectionWatcher` — the empirical advertise∩lookup
  hit rate never falls *statistically* below the exact hypergeometric
  bound of Lemma 5.2 (an anytime-valid sequential test, so a transient
  unlucky streak does not fire it but systematic degradation does).

Failure routing: a watcher that detects a violation — or crashes —
is routed through ``auditor.flag`` when the network carries an
accounting auditor: ``REPRO_AUDIT=strict`` raises
:class:`~repro.obs.audit.AuditError` (gating CI fault campaigns),
``record`` keeps the run alive with the violation on the ledger.
Without an auditor the hub collects violations locally and the CLI
reports them.  A crashing watcher can never corrupt the simulation:
only :class:`~repro.obs.audit.AuditError` (the deliberate strict-mode
signal) propagates out of the hub.

The same watchers replay recorded JSONL traces through
:func:`replay_trace` (the ``repro obs watch`` CLI), so a committed
golden trace or a CI artifact can be re-judged offline with byte-level
fidelity to the live run.
"""

from __future__ import annotations

import json
import math
import os
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.intersection import (
    masking_miss_probability_exact,
    miss_probability_exact,
)
from repro.obs.audit import AuditError, AuditViolation
from repro.obs.query import iter_trace
from repro.obs.trace import MESSAGE_KINDS, ROUTING_KINDS, TraceEvent

#: Advertise strategies whose quorums are uniform-without-replacement
#: samples — the precondition for the Lemma 5.2 structure-free bound.
UNIFORM_ADVERTISE_STRATEGIES = frozenset({"RANDOM", "RANDOM-SAMPLING"})

#: Shape of :class:`repro.core.masking.MaskingStrategy` names (kept in
#: sync with ``MASKING_NAME_RE`` there; duplicated locally because the
#: core package imports obs at module load, so obs cannot import back).
_MASKING_NAME_RE = re.compile(r"^MASKING\[b=(?P<b>\d+),(?P<inner>[^\]]+)\]$")


def _masking_name_parts(name: str) -> Optional[Tuple[int, str]]:
    """``(b, inner_strategy)`` when ``name`` is a MaskingStrategy name."""
    match = _MASKING_NAME_RE.match(name or "")
    if match is None:
        return None
    return int(match.group("b")), match.group("inner")


def _uniform_advertise(name: str) -> bool:
    """Whether an advertise strategy samples uniformly (Lemma 5.2).

    A masking wrapper is uniform exactly when its inner strategy is.
    """
    if name in UNIFORM_ADVERTISE_STRATEGIES:
        return True
    parts = _masking_name_parts(name)
    return parts is not None and parts[1] in UNIFORM_ADVERTISE_STRATEGIES

#: Violations recorded by env-attached hubs this process (newest last);
#: the CLI drains it to report live-watch results after a figure run.
SESSION_VIOLATIONS: List[AuditViolation] = []


def _noop(event: TraceEvent) -> None:
    """Dispatch target for kinds no watcher is interested in."""


class Watcher:
    """One streaming invariant over the trace event stream.

    Subclasses implement :meth:`on_event` (and optionally
    :meth:`finish` for end-of-stream checks) and report violations via
    ``self.violation(code, message)``.  ``kinds`` restricts delivery to
    the listed event kinds (``None`` = every event) so hop-heavy traces
    do not pay for watchers that only care about access boundaries.
    """

    name: str = "?"
    #: Event kinds this watcher wants; None = all.
    kinds: Optional[FrozenSet[str]] = None

    def __init__(self) -> None:
        self.events_seen = 0
        self.violations: List[AuditViolation] = []
        self._sink: Optional[Callable[..., None]] = None

    def handler_for(self, kind: str) -> Callable[[TraceEvent], None]:
        """The per-kind delivery target the hub should dispatch to.

        The default is :meth:`on_event`.  Hot watchers return a
        kind-specialized bound method instead — the hub builds one
        dispatch entry per kind anyway, so the specialization removes
        the kind-test chain (and the per-event ``events_seen``
        bookkeeping, which the hub then maintains in bulk) from the
        per-event path.
        """
        return self.on_event

    def bind(self, sink: Callable[..., None]) -> "Watcher":
        """Attach the hub's violation sink (auditor-routed)."""
        self._sink = sink
        return self

    def violation(self, code: str, message: str) -> None:
        """Report one invariant violation.

        Retained on the watcher, then routed through the hub sink —
        which may raise :class:`AuditError` in strict mode; the raise
        deliberately propagates out of the watcher.
        """
        self.violations.append(AuditViolation(
            code=code, message=message, strategy=self.name, kind="watch"))
        if self._sink is not None:
            self._sink(code, message, strategy=self.name, kind="watch")

    def on_event(self, event: TraceEvent) -> None:
        """Consume one trace event."""

    def finish(self) -> None:
        """End-of-stream hook (replay and explicit hub.finish only)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(events={self.events_seen}, "
                f"violations={len(self.violations)})")


class MonotonicityWatcher(Watcher):
    """Sim clock / seq / topology_version never regress.

    ``seq`` must advance by exactly one between consecutive events of
    one trace, ``t`` must be non-decreasing, and a ``topology_version``
    payload field (when present) must never shrink.  Replay resets at
    segment boundaries (``seq == 0``) before events reach the watcher,
    so a multi-run trace file does not trip it.
    """

    name = "monotonicity"
    kinds = None  # every event

    def __init__(self) -> None:
        super().__init__()
        # Sentinels instead of None: the hot path (every event) then
        # needs no is-None branches.
        self._next_seq: int = -1
        self._prev_t: float = -math.inf
        self._prev_topology: Optional[int] = None

    def handler_for(self, kind: str) -> Callable[[TraceEvent], None]:
        # Message/routing kinds are point transmissions — they never
        # carry a topology_version payload, so the hop-heavy bulk of
        # the stream skips even the field-presence test.
        if kind in MESSAGE_KINDS or kind in ROUTING_KINDS:
            return self._on_bulk
        return self._on_fast

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        self._on_fast(event)

    def _on_bulk(self, event: TraceEvent) -> None:
        seq = event.seq
        next_seq = self._next_seq
        if seq != next_seq and next_seq >= 0:
            self.violation(
                "monotonicity-seq",
                f"seq went {next_seq - 1} -> {seq} "
                f"(kind {event.kind}); sequence numbers must be contiguous")
        self._next_seq = seq + 1
        t = event.t
        if t < self._prev_t:
            self.violation(
                "monotonicity-clock",
                f"sim clock regressed {self._prev_t!r} -> {t!r} "
                f"at seq {seq} (kind {event.kind})")
        self._prev_t = t

    def _on_fast(self, event: TraceEvent) -> None:
        self._on_bulk(event)
        if "topology_version" in event.fields:
            self._check_topology(event)

    def _check_topology(self, event: TraceEvent) -> None:
        topo = event.fields["topology_version"]
        if topo is None:
            return
        if self._prev_topology is not None and topo < self._prev_topology:
            self.violation(
                "monotonicity-topology",
                f"topology_version regressed {self._prev_topology} -> "
                f"{topo} at seq {event.seq}")
        self._prev_topology = topo


class ConservationWatcher(Watcher):
    """Streaming message/routing ledger per access span.

    Mirrors the auditor's conservation invariant — the ``messages`` /
    ``routing`` an ``access-end`` claims must equal the network
    transmissions traced inside that access's own span (nested accesses
    excluded) — but evaluates it at *every* access end, so drifted
    accounting surfaces mid-run even when no auditor is attached.
    """

    name = "conservation"
    kinds = frozenset({"access-start", "access-end"}
                      | MESSAGE_KINDS | ROUTING_KINDS)

    def __init__(self) -> None:
        super().__init__()
        # One [messages, routing] frame per open access; message events
        # accrue to the innermost frame (auditor nesting semantics).
        self._frames: List[List[int]] = []
        self.accesses_checked = 0

    def handler_for(self, kind: str) -> Callable[[TraceEvent], None]:
        if kind == "access-start":
            return self._on_start
        if kind == "access-end":
            return self._on_end
        if kind in MESSAGE_KINDS:
            # hop/broadcast are one transmission per event; only
            # virtual-msg batches (``count``).  Update this table if a
            # recorder ever starts batching the unit kinds.
            if kind == "virtual-msg":
                return self._on_message
            return self._on_message_unit
        return self._on_routing  # ROUTING_KINDS by self.kinds construction

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        kind = event.kind
        if kind == "access-start":
            self._on_start(event)
        elif kind == "access-end":
            self._on_end(event)
        elif kind in MESSAGE_KINDS:
            self._on_message(event)
        elif kind in ROUTING_KINDS:
            self._on_routing(event)

    def _on_start(self, event: TraceEvent) -> None:
        self._frames.append([0, 0])

    def _on_message(self, event: TraceEvent) -> None:
        frames = self._frames
        if frames:
            count = event.fields.get("count")
            frames[-1][0] += 1 if count is None else int(count)

    def _on_message_unit(self, event: TraceEvent) -> None:
        frames = self._frames
        if frames:
            frames[-1][0] += 1

    def _on_routing(self, event: TraceEvent) -> None:
        frames = self._frames
        if frames:
            count = event.fields.get("count")
            frames[-1][1] += 1 if count is None else int(count)

    def _on_end(self, event: TraceEvent) -> None:
        frames = self._frames
        if not frames:
            self.violation(
                "conservation-unmatched-end",
                f"access-end at seq {event.seq} with no open "
                f"access-start")
            return
        frame = frames.pop()
        self.accesses_checked += 1
        claimed_m = int(event.fields.get("messages", 0))
        claimed_r = int(event.fields.get("routing", 0))
        if claimed_m != frame[0] or claimed_r != frame[1]:
            label = (f"{event.fields.get('strategy', '?')}/"
                     f"{event.fields.get('access', '?')} at seq "
                     f"{event.seq}")
            if claimed_m != frame[0]:
                self.violation(
                    "conservation-messages",
                    f"{label} claimed {claimed_m} network messages, "
                    f"traced {frame[0]}")
            if claimed_r != frame[1]:
                self.violation(
                    "conservation-routing",
                    f"{label} claimed {claimed_r} routing messages, "
                    f"traced {frame[1]}")

    def finish(self) -> None:
        if self._frames:
            # Open accesses at end-of-stream are normal for a live trace
            # cut mid-access, but a *finished* replay should balance.
            self._frames.clear()


class NoFabricationWatcher(Watcher):
    """No probe hit for a key never stored by a prior advertise.

    The Byzantine-campaign safety gate ("The Load and Availability of
    Byzantine Quorum Systems"): a faulty replica may deny a value, but
    the system must never *invent* one.  Store events brand (key) as
    legitimately advertised; a probe event with ``hit=true`` whose key
    was never stored — or that carries no hit at all on a found access —
    is a fabrication.  Events recorded without a ``key`` payload
    (pre-schema-2 traces, bare-strategy tests) are skipped.

    Versioned services additionally stamp store events and lookup
    ``access-end`` events with the written/accepted version.  The
    *accepted* version of a found lookup must have been legitimately
    stored for its key: a lying replica that fabricates a plausible
    value for a real key is caught the moment its fabrication wins an
    access, because its invented version was never written.  Raw probe
    events are deliberately *not* version-checked — under a masking
    strategy, fabricated probe replies are expected and harmless (the
    vote filter discards them); the invariant is about what the system
    accepts, not what an adversary says.
    """

    name = "no-fabricated-value"
    kinds = frozenset({"store", "probe", "access-end"})

    def __init__(self) -> None:
        super().__init__()
        self._stored_keys: set = set()
        self._stored_versions: set = set()   # (key, version) pairs
        self._hit_keys: set = set()

    def handler_for(self, kind: str) -> Callable[[TraceEvent], None]:
        if kind == "store":
            return self._on_store
        if kind == "probe":
            return self._on_probe
        return self._on_end  # access-end by self.kinds construction

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        kind = event.kind
        if kind == "store":
            self._on_store(event)
        elif kind == "probe":
            self._on_probe(event)
        elif kind == "access-end":
            self._on_end(event)

    def _on_store(self, event: TraceEvent) -> None:
        key = event.fields.get("key")
        if key is not None:
            self._stored_keys.add(key)
            version = event.fields.get("version")
            if version is not None:
                self._stored_versions.add((key, version))

    def _on_probe(self, event: TraceEvent) -> None:
        fields = event.fields
        if fields.get("hit"):
            key = fields.get("key")
            if key is not None:
                if key not in self._stored_keys:
                    self.violation(
                        "fabricated-value",
                        f"probe at node {fields.get('node', '?')} "
                        f"(seq {event.seq}) hit key {key!r} which no "
                        f"prior advertise ever stored")
                self._hit_keys.add(key)

    def _on_end(self, event: TraceEvent) -> None:
        fields = event.fields
        if (fields.get("access") == "lookup"
                and fields.get("found")):
            key = fields.get("key")
            if key is None:
                return
            if key not in self._stored_keys:
                self.violation(
                    "fabricated-value",
                    f"lookup access-end at seq {event.seq} claims "
                    f"found=True for never-stored key {key!r}")
                return
            version = fields.get("version")
            if (version is not None
                    and (key, version) not in self._stored_versions):
                self.violation(
                    "fabricated-value",
                    f"lookup access-end at seq {event.seq} accepted "
                    f"version {version!r} for key {key!r}, which no "
                    f"prior advertise ever wrote")


@dataclass
class _LookupFrame:
    key: Any
    strategy: str


class QuorumIntersectionWatcher(Watcher):
    """Empirical hit rate vs the exact hypergeometric bound, sequentially.

    For every lookup of an advertised key the exact Lemma 5.2 /
    Corollary 5.3 intersection probability is computed from the live
    state — ``n`` alive nodes, ``q_a`` surviving stored copies of the
    key, ``q_l`` nodes the lookup actually reached — and accumulated
    into an expected-hits floor.  An anytime-valid sequential test
    (Hoeffding radius with a union-bound alpha spend, so checking after
    every lookup stays honest) fires when the observed hit count drops
    statistically below that floor:

        ``H_k < sum_i p_i  -  sqrt(k/2 * ln(k(k+1)/alpha))``

    The bound only applies when the advertise side samples uniformly
    (Lemma 5.2's precondition), so the watcher arms itself only while
    every observed advertise strategy is in
    :data:`UNIFORM_ADVERTISE_STRATEGIES`, and needs the network size
    ``n`` (live: from the attached network; replay: from the run
    manifest or ``--n``).  Without ``n`` it stays dormant.
    """

    name = "quorum-intersection"
    kinds = frozenset({"access-start", "access-end", "store", "churn"})

    def __init__(self, n: Optional[int] = None,
                 alpha: float = 1e-4) -> None:
        super().__init__()
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.n = n
        self.alpha = alpha
        self.armed = True             # disarmed on non-uniform advertise
        self.lookups_counted = 0
        self.hits = 0
        self.expected_floor = 0.0     # sum of per-lookup p_intersection
        self._stored: Dict[Any, set] = {}     # key -> nodes ever storing it
        self._p_hit_memo: Dict[Tuple[int, int, int, int], float] = {}
        self._dead: set = set()
        self._joined = 0              # net alive-count delta from churn
        self._open_lookups: List[_LookupFrame] = []

    # -- live state tracking ------------------------------------------------

    def _alive_copies(self, key: Any) -> int:
        nodes = self._stored.get(key)
        if not nodes:
            return 0
        if not self._dead:
            return len(nodes)
        return len(nodes - self._dead)

    def _current_n(self) -> Optional[int]:
        if self.n is None:
            return None
        return self.n + self._joined - len(self._dead)

    def handler_for(self, kind: str) -> Callable[[TraceEvent], None]:
        return {"store": self._on_store, "churn": self._on_churn,
                "access-start": self._on_access_start,
                "access-end": self._on_access_end}[kind]

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        kind = event.kind
        if kind == "store":
            self._on_store(event)
        elif kind == "churn":
            self._on_churn(event)
        elif kind == "access-start":
            self._on_access_start(event)
        elif kind == "access-end":
            self._on_access_end(event)

    def _on_store(self, event: TraceEvent) -> None:
        f = event.fields
        key = f.get("key")
        node = f.get("node")
        if key is not None and node is not None:
            self._stored.setdefault(key, set()).add(node)

    def _on_churn(self, event: TraceEvent) -> None:
        f = event.fields
        action = f.get("action")
        node = f.get("node")
        if node is None:
            return
        if action == "fail":
            self._dead.add(node)
        elif action == "revive":
            self._dead.discard(node)
        elif action == "join":
            self._joined += 1

    def _on_access_start(self, event: TraceEvent) -> None:
        f = event.fields
        access = f.get("access")
        if access == "advertise":
            if not _uniform_advertise(str(f.get("strategy", "?"))):
                self.armed = False
        elif access == "lookup":
            self._open_lookups.append(_LookupFrame(
                key=f.get("key"), strategy=str(f.get("strategy", "?"))))

    def _on_access_end(self, event: TraceEvent) -> None:
        f = event.fields
        if f.get("access") == "lookup":
            frame = (self._open_lookups.pop()
                     if self._open_lookups else _LookupFrame(None, "?"))
            self._observe_lookup(frame, f)

    def _observe_lookup(self, frame: _LookupFrame, f: Dict[str, Any]) -> None:
        n = self._current_n()
        if not self.armed or n is None or frame.key is None:
            return
        q_a = self._alive_copies(frame.key)
        if q_a == 0:
            # Key never stored / all copies dead: intersection floor is
            # zero, the lookup carries no statistical information.
            return
        q_l = int(f.get("quorum", 0))
        if q_l <= 0 or n < 2:
            return
        q_a = min(q_a, n)
        q_l = min(q_l, n)
        # Masked lookups only report found when b+1 replies agree, so
        # their success floor is the masking bound Pr[|Qa ∩ Ql| >= 2b+1]
        # (sound for any adversary of size <= b — the honest part of the
        # intersection still corroborates the true value).
        masking = _masking_name_parts(frame.strategy)
        b = masking[0] if masking is not None else 0
        # Lookup sizes repeat across a run; memoize the O(q_a) product.
        memo_key = (q_a, q_l, n, b)
        p_hit = self._p_hit_memo.get(memo_key)
        if p_hit is None:
            if b > 0:
                p_hit = 1.0 - masking_miss_probability_exact(q_a, q_l, n, b)
            else:
                p_hit = 1.0 - miss_probability_exact(q_a, q_l, n)
            self._p_hit_memo[memo_key] = p_hit
        self.lookups_counted += 1
        self.expected_floor += p_hit
        if f.get("found"):
            self.hits += 1
        self._check()

    def _radius(self) -> float:
        k = self.lookups_counted
        return math.sqrt(
            k / 2.0 * math.log(k * (k + 1) / self.alpha))

    def _check(self) -> None:
        k = self.lookups_counted
        if k == 0:
            return
        shortfall = self.expected_floor - self._radius() - self.hits
        if shortfall > 0:
            self.violation(
                "intersection-below-bound",
                f"after {k} lookups: {self.hits} hits, hypergeometric "
                f"floor {self.expected_floor:.2f} "
                f"(sequential radius {self._radius():.2f}, "
                f"alpha={self.alpha:g}) — empirical intersection is "
                f"statistically below the Lemma 5.2 bound")


# ---------------------------------------------------------------------------
# Hub: subscription, dispatch, exception isolation, reporting
# ---------------------------------------------------------------------------


class WatcherHub:
    """Delivers trace events to watchers with exception isolation.

    One hub per :class:`~repro.obs.trace.EventTrace` (i.e. per network).
    Violations — and crashing watchers — are routed through
    ``auditor.flag`` when an auditor is attached (strict raises, record
    survives); otherwise collected on ``self.violations``.  Only
    :class:`AuditError` (the deliberate strict-mode raise) may propagate
    out of :meth:`on_event`; any other watcher exception is converted
    into a ``watcher-crashed`` violation and the simulation continues.
    """

    def __init__(self, watchers: List[Watcher],
                 auditor: Optional[Any] = None,
                 session_ledger: Optional[List[AuditViolation]] = None
                 ) -> None:
        self.watchers = list(watchers)
        self.auditor = auditor
        self.violations: List[AuditViolation] = []
        self.events_seen = 0
        self.crashes = 0
        self._session_ledger = session_ledger
        self._trace: Optional[Any] = None
        for watcher in self.watchers:
            watcher.bind(self._sink)
        # Per-kind dispatch entries ``[count, fused, flushees]``: one
        # fused closure calling every interested watcher's specialized
        # handler, plus a bulk delivery counter — this path runs for
        # every traced hop, so per-event bookkeeping is kept to a
        # single list increment and counts are distributed to the
        # watchers in :meth:`_flush`.  ``on_event`` is built as a
        # closure over the entry table: delivery pays no bound-method
        # or ``self`` attribute lookups.
        self._entries: Dict[str, list] = {}
        self.on_event = self._make_on_event()

    # -- violation routing --------------------------------------------------

    def _sink(self, code: str, message: str, strategy: str = "?",
              kind: str = "watch") -> None:
        violation = AuditViolation(code=code, message=message,
                                   strategy=strategy, kind=kind)
        self.violations.append(violation)
        if self._session_ledger is not None:
            self._session_ledger.append(violation)
        if self.auditor is not None:
            # strict: raises AuditError; record: retained on the ledger.
            self.auditor.flag(code, message, strategy=strategy, kind=kind)

    # -- dispatch -----------------------------------------------------------

    def _build_entry(self, kind: str) -> list:
        pairs = [(w.handler_for(kind), w) for w in self.watchers
                 if w.kinds is None or kind in w.kinds]
        # Watchers whose handler is the generic on_event count their
        # own deliveries; specialized handlers skip that bookkeeping,
        # so the hub's bulk counter covers them at flush time.
        flushees = tuple(w for fn, w in pairs if fn is not w.on_event)
        entry = [0, self._fuse(pairs), flushees]
        self._entries[kind] = entry
        return entry

    def _fuse(self, pairs: List[Tuple[Callable[[TraceEvent], None], Watcher]]
              ) -> Callable[[TraceEvent], None]:
        """One closure calling every handler with exception isolation.

        Arity-specialized: the common 1-4 watcher cases get straight-
        line calls with a zero-cost (Python >= 3.11) try per handler —
        no loop machinery on the hot path.  Only AuditError (the
        deliberate strict-audit raise) propagates; anything else turns
        into a ``watcher-crashed`` violation and delivery continues
        with the remaining watchers.
        """
        crash = self._crash
        if not pairs:
            return _noop
        if len(pairs) == 1:
            (f0, w0), = pairs

            def fused(event: TraceEvent) -> None:
                try:
                    f0(event)
                except AuditError:
                    raise
                except Exception as exc:
                    crash(w0, exc)
        elif len(pairs) == 2:
            (f0, w0), (f1, w1) = pairs

            def fused(event: TraceEvent) -> None:
                try:
                    f0(event)
                except AuditError:
                    raise
                except Exception as exc:
                    crash(w0, exc)
                try:
                    f1(event)
                except AuditError:
                    raise
                except Exception as exc:
                    crash(w1, exc)
        else:
            def fused(event: TraceEvent) -> None:
                for fn, watcher in pairs:
                    try:
                        fn(event)
                    except AuditError:
                        raise
                    except Exception as exc:
                        crash(watcher, exc)
        return fused

    def _make_on_event(self) -> Callable[[TraceEvent], None]:
        """Build the per-event delivery closure (``self.on_event``)."""
        build = self._build_entry

        def on_event(event: TraceEvent,
                     _get=self._entries.get) -> None:
            entry = _get(event.kind)
            if entry is None:
                entry = build(event.kind)
            entry[0] += 1
            entry[1](event)
        return on_event

    def _flush(self) -> None:
        """Fold per-kind delivery counts into the event counters."""
        for entry in self._entries.values():
            count = entry[0]
            if count:
                entry[0] = 0
                self.events_seen += count
                for watcher in entry[2]:
                    watcher.events_seen += count

    def _crash(self, watcher: Watcher, exc: Exception) -> None:
        self.crashes += 1
        self._sink("watcher-crashed",
                   f"{type(exc).__name__}: {exc}",
                   strategy=watcher.name)

    def finish(self) -> None:
        """End-of-stream: run every watcher's final checks."""
        self._flush()
        for watcher in self.watchers:
            try:
                watcher.finish()
            except AuditError:
                raise
            except Exception as exc:
                self._crash(watcher, exc)

    # -- trace lifecycle ----------------------------------------------------

    def attach(self, trace: Any) -> "WatcherHub":
        """Subscribe to a live :class:`EventTrace`; returns self."""
        trace.subscribe(self.on_event)
        self._trace = trace
        return self

    def detach(self) -> None:
        self._flush()
        if self._trace is not None:
            self._trace.unsubscribe(self.on_event)
            self._trace = None

    # -- reporting ----------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.violations

    def result(self) -> Dict[str, Any]:
        """Machine-readable verdict block (one hub / trace segment)."""
        self._flush()
        return {
            "events": self.events_seen,
            "crashes": self.crashes,
            "watchers": [
                {"name": w.name, "events": w.events_seen,
                 "violations": [str(v) for v in w.violations]}
                for w in self.watchers
            ],
            "violations": [str(v) for v in self.violations],
            "ok": self.clean,
        }

    def report(self) -> str:
        self._flush()
        if self.clean:
            return (f"watch clean: {self.events_seen} events through "
                    f"{len(self.watchers)} watchers")
        lines = [f"watch: {len(self.violations)} violations over "
                 f"{self.events_seen} events"]
        lines.extend(str(v) for v in self.violations)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Builtin sets, live attachment, env hook
# ---------------------------------------------------------------------------


def builtin_watchers(n: Optional[int] = None,
                     slo_specs: Optional[List[Any]] = None,
                     names: Optional[List[str]] = None) -> List[Watcher]:
    """The builtin invariant set (+ an SLO monitor when specs given).

    ``names`` restricts to a subset (``REPRO_WATCH=conservation,slo``);
    unknown names raise so typos cannot silently disable a gate.
    """
    factories: Dict[str, Callable[[], Watcher]] = {
        "monotonicity": MonotonicityWatcher,
        "conservation": ConservationWatcher,
        "no-fabricated-value": NoFabricationWatcher,
        "quorum-intersection": lambda: QuorumIntersectionWatcher(n=n),
    }
    if names:
        unknown = [x for x in names if x not in factories and x != "slo"]
        if unknown:
            raise ValueError(
                f"unknown watcher(s) {unknown}; valid: "
                f"{sorted(factories)} + ['slo']")
        selected = [factories[x]() for x in names if x in factories]
    else:
        selected = [factory() for factory in factories.values()]
    if slo_specs:
        from repro.obs.slo import SloMonitor
        selected.append(SloMonitor(slo_specs))
    return selected


def attach_watchers(net: Any,
                    watchers: Optional[List[Watcher]] = None,
                    slo_specs: Optional[List[Any]] = None,
                    session_ledger: Optional[List[AuditViolation]] = None
                    ) -> WatcherHub:
    """Attach a watcher hub to a live network's trace; returns the hub.

    Enables the trace in subscriber-only mode when it is off (no memory
    retention, no JSONL — the watchers are the only consumer), wires
    violations through the network's auditor, and stores the hub as
    ``net.watch_hub``.
    """
    if watchers is None:
        watchers = builtin_watchers(n=getattr(net, "n_alive", None),
                                    slo_specs=slo_specs)
    elif slo_specs:
        from repro.obs.slo import SloMonitor
        watchers = list(watchers) + [SloMonitor(slo_specs)]
    hub = WatcherHub(watchers, auditor=getattr(net, "auditor", None),
                     session_ledger=session_ledger)
    trace = net.trace
    if not trace.enabled:
        trace.enable(memory=False)
    hub.attach(trace)
    net.watch_hub = hub
    return hub


def attach_env_watchers(net: Any) -> Optional[WatcherHub]:
    """The ``REPRO_WATCH`` hook called from ``SimNetwork.__init__``.

    ``REPRO_WATCH=1`` attaches every builtin watcher; a comma list
    (``REPRO_WATCH=conservation,monotonicity``) selects a subset.
    ``REPRO_SLO=<path>`` additionally loads SLO specs into a live
    monitor.  Violations land on the module-level
    :data:`SESSION_VIOLATIONS` ledger so the CLI can report them after
    the run (same-process workers only; the post-run trace replay is
    the cross-process collector).
    """
    spec = os.environ.get("REPRO_WATCH", "").strip()
    if not spec:
        return None
    names = None
    if spec not in ("1", "true", "all", "builtin"):
        names = [x.strip() for x in spec.split(",") if x.strip()]
    slo_specs = None
    slo_path = os.environ.get("REPRO_SLO", "").strip()
    want_slo = slo_path and (names is None or "slo" in names)
    if want_slo:
        from repro.obs.slo import load_slo_specs
        slo_specs = load_slo_specs(slo_path)
    watchers = builtin_watchers(n=getattr(net, "n_alive", None) or None,
                                names=names)
    return attach_watchers(net, watchers=watchers, slo_specs=slo_specs,
                           session_ledger=SESSION_VIOLATIONS)


# ---------------------------------------------------------------------------
# Offline replay (the `repro obs watch` CLI)
# ---------------------------------------------------------------------------


@dataclass
class ReplayResult:
    """Outcome of replaying one JSONL trace through the watchers."""

    events: int = 0
    corrupt_lines: int = 0
    segments: int = 0
    violations: List[AuditViolation] = field(default_factory=list)
    segment_results: List[Dict[str, Any]] = field(default_factory=list)
    slo_reports: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "corrupt_lines": self.corrupt_lines,
            "segments": self.segments,
            "ok": self.clean,
            "violations": [str(v) for v in self.violations],
            "segment_results": self.segment_results,
            "slo": self.slo_reports,
        }

    def report(self) -> str:
        head = (f"watched {self.events} events in {self.segments} trace "
                f"segment(s); corrupt lines: {self.corrupt_lines}")
        if self.clean:
            return head + "\nno violations"
        lines = [head, f"{len(self.violations)} violations:"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def _event_from_dict(raw: Dict[str, Any]) -> TraceEvent:
    payload = {k: v for k, v in raw.items()
               if k not in ("seq", "t", "kind")}
    return TraceEvent(seq=int(raw.get("seq", 0)),
                      t=float(raw.get("t", 0.0)),
                      kind=str(raw["kind"]), fields=payload)


def replay_trace(source: Any,
                 make_watchers: Optional[Callable[[], List[Watcher]]] = None,
                 n: Optional[int] = None,
                 slo_specs: Optional[List[Any]] = None) -> ReplayResult:
    """Stream a recorded trace through fresh watchers, segment-aware.

    A trace file may hold several back-to-back runs (sweep points,
    Monte-Carlo replicas): every time a writer's ``seq`` restarts at 0 a
    *new simulation* began, so watcher state (stored keys, clocks,
    ledgers) is reset per ``(replica, restart)`` segment.  Watchers are
    built per segment from ``make_watchers`` (default: the builtin set
    with the given ``n`` / SLO specs).
    """
    if make_watchers is None:
        def make_watchers() -> List[Watcher]:
            return builtin_watchers(n=n, slo_specs=slo_specs)

    result = ReplayResult()
    hubs: Dict[Any, WatcherHub] = {}

    def close_hub(hub: WatcherHub) -> None:
        hub.finish()
        result.segment_results.append(hub.result())
        result.violations.extend(hub.violations)
        for watcher in hub.watchers:
            report = getattr(watcher, "slo_report", None)
            if report is not None:
                result.slo_reports.append(report())

    for raw in iter_trace(source):
        if raw is None:
            result.corrupt_lines += 1
            continue
        result.events += 1
        event = _event_from_dict(raw)
        replica = raw.get("replica")
        hub = hubs.get(replica)
        if hub is None or event.seq == 0:
            if hub is not None:
                close_hub(hub)
            hub = hubs[replica] = WatcherHub(make_watchers())
            result.segments += 1
        hub.on_event(event)
    for hub in hubs.values():
        close_hub(hub)
    return result


def resolve_trace_n(trace_path: str) -> Optional[int]:
    """Network size for a recorded trace, from its sibling manifest.

    ``<trace>.manifest.json`` is what the CLI writes next to every
    ``--trace`` output; its ``params.n`` arms the intersection watcher
    on replay.  Returns None when no manifest (or no ``n``) is found.
    """
    manifest_path = trace_path + ".manifest.json"
    if not os.path.exists(manifest_path):
        return None
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    n = manifest.get("params", {}).get("n")
    return int(n) if isinstance(n, (int, float)) else None
