"""Structured event tracing for the simulation core.

The trace is the observability ground truth: every network-level action
(hop, broadcast, routing discovery, walk step, reply, store, probe,
churn, access boundaries) is recorded as one typed :class:`TraceEvent`
with its simulated timestamp.  The accounting auditor
(:mod:`repro.obs.audit`) replays these events to cross-check the
``AccessResult`` cost fields every strategy reports, and the ``--trace``
CLI flag streams them to a JSONL file for offline analysis — the
structured-event-log practice of ns-3 trace sources and JiST/SWANS stats.

Tracing is **off by default** and costs one attribute check per call
site when disabled.  Event kinds and their payload fields are documented
in DESIGN.md (Observability layer).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, IO, List, Optional

try:  # POSIX-only; Windows falls back to unlocked appends.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Event kinds whose ``count`` field (default 1) is a network-layer
#: message claimable by an access's ``AccessResult.messages``.
#: ``virtual-msg`` covers modeled-but-not-transmitted messages (flood
#: acks, overheard one-hop replies) so the audit ledger still balances.
MESSAGE_KINDS = frozenset({"hop", "broadcast", "virtual-msg"})

#: Event kinds counting toward ``AccessResult.routing_messages``.
ROUTING_KINDS = frozenset({"routing"})

#: Default in-memory retention (events); old events fall off the left.
DEFAULT_RETENTION = 262_144

#: Version of the traced event vocabulary/payloads.  Bumped whenever the
#: emitted event stream changes shape (new kinds, new or renamed payload
#: fields); manifests stamp it so ``obs`` tools can warn before
#: diagnosing a trace recorded under an older schema.
#:
#: History: 1 = PR 2-7 event set; 2 = ``key`` payload on
#: store/probe/access-start/access-end events (live invariant watchers);
#: 3 = ``kv-op`` serving events (op/key/ok/stale/version/latency) from
#: the quorum key-value store.
TRACE_SCHEMA = 3

#: Trace close failures absorbed during GC (see ``Trace.__del__``).  The
#: auditor is unreachable from a finalizer, so a module counter is the
#: ledger; it should stay 0 in any healthy run.
_CLOSE_FAILURES = 0


def close_failures() -> int:
    """Trace close errors swallowed by the GC safety net so far."""
    return _CLOSE_FAILURES


@dataclass(slots=True)
class TraceEvent:
    """One typed simulation event."""

    seq: int
    t: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    @property
    def count(self) -> int:
        """Message multiplicity (events may batch identical messages)."""
        return int(self.fields.get("count", 1))

    def to_json(self) -> str:
        # Envelope keys win over same-named payload fields.
        record = dict(self.fields)
        record.update({"seq": self.seq, "t": round(self.t, 9),
                       "kind": self.kind})
        return json.dumps(record, default=str, separators=(",", ":"))


class EventTrace:
    """An event sink with optional in-memory retention and JSONL output.

    ``mark()`` returns a monotonically increasing sequence number;
    ``events_since(mark)`` slices the retained events at or after it —
    the mechanism the auditor uses to isolate one access's events.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._seq = 0
        self._memory = False
        self._events: Deque[TraceEvent] = deque()
        self._writer: Optional[IO[str]] = None
        self._jsonl_path: Optional[str] = None
        self._lock_writes = False
        #: Live subscribers: each registered callable receives every
        #: recorded :class:`TraceEvent`, synchronously, after it has been
        #: retained/written.  This is the watcher delivery path (see
        #: :mod:`repro.obs.watch`); exception isolation is the
        #: *subscriber's* job — a raise from here propagates into the
        #: simulation (which is exactly what strict-mode watchers want).
        self._subscribers: List[Any] = []
        #: Ambient fields stamped onto every recorded event (payload
        #: fields win on collision).  The replication engine sets
        #: ``{"replica": r}`` here so multi-replica traces stay
        #: attributable per replica.
        self.context: Dict[str, Any] = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self, memory: bool = True, jsonl_path: Optional[str] = None,
               retention: int = DEFAULT_RETENTION,
               lock: Optional[bool] = None) -> "EventTrace":
        """Turn the sink on (idempotent; combines with prior settings).

        ``lock`` guards each JSONL write with an OS-level advisory lock
        (``flock``), so sweep-pool workers appending to one shared
        ``REPRO_TRACE`` file can never interleave mid-record.  It
        defaults to on whenever a JSONL path is given (the lock is
        uncontended — and cheap — in the single-process case).
        """
        self.enabled = True
        if memory:
            self._memory = True
            self._events = deque(self._events, maxlen=retention)
        if jsonl_path and jsonl_path != self._jsonl_path:
            self.close()
            # O_APPEND + one write()+flush per event: each JSON line
            # lands in the file atomically relative to other writers.
            self._writer = open(jsonl_path, "a", buffering=1)
            self._jsonl_path = jsonl_path
        if jsonl_path:
            self._lock_writes = lock if lock is not None else True
        return self

    def disable(self) -> None:
        self.enabled = False
        self.close()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._jsonl_path = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        global _CLOSE_FAILURES
        try:
            self.close()
        except (OSError, ValueError):
            # Flushing a trace during interpreter teardown can hit a
            # closed fd; that is the only failure this net is allowed to
            # absorb.  Anything else (a coding bug) propagates to the
            # unraisable hook instead of vanishing, and absorbed ones
            # are still counted so tests can assert none occurred.
            _CLOSE_FAILURES += 1

    # -- subscribers -------------------------------------------------------

    def subscribe(self, callback: Any) -> Any:
        """Register a live event subscriber; returns the callback.

        The callback is invoked synchronously with every recorded
        :class:`TraceEvent` (retention and JSONL output have already
        happened).  Subscribing does not enable the trace — call
        :meth:`enable` (``memory=False`` suffices) so events flow.
        """
        if callback not in self._subscribers:
            self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Any) -> None:
        """Remove a subscriber; missing callbacks are ignored."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    # -- recording ---------------------------------------------------------

    def record(self, kind: str, t: float, /, **fields: Any) -> int:
        """Append one event; returns its sequence number.

        ``kind`` and ``t`` are positional-only so payload fields may
        reuse those names (the JSONL envelope keys win on collision).
        """
        seq = self._seq
        self._seq += 1
        if self.context:
            fields = {**self.context, **fields}
        event = TraceEvent(seq=seq, t=t, kind=kind, fields=fields)
        if self._memory:
            self._events.append(event)
        if self._writer is not None:
            self._write_line(event.to_json() + "\n")
        if self._subscribers:
            for subscriber in self._subscribers:
                subscriber(event)
        return seq

    #: Alias: ``emit`` is the subscriber-facing name for :meth:`record`.
    emit = record

    def _write_line(self, line: str) -> None:
        """One whole JSONL record, written atomically w.r.t. co-writers."""
        writer = self._writer
        if self._lock_writes and fcntl is not None:
            fcntl.flock(writer.fileno(), fcntl.LOCK_EX)
            try:
                writer.write(line)
                writer.flush()
            finally:
                fcntl.flock(writer.fileno(), fcntl.LOCK_UN)
        else:
            writer.write(line)
            writer.flush()

    # -- querying ----------------------------------------------------------

    def mark(self) -> int:
        """Current position; pass to :meth:`events_since` later."""
        return self._seq

    def events_since(self, mark: int) -> List[TraceEvent]:
        """All retained events with ``seq >= mark`` (oldest first).

        Raises :class:`TraceTruncated` when retention already dropped
        events at or after the mark — the caller cannot audit reliably.
        """
        if self._events and self._events[0].seq > mark:
            raise TraceTruncated(
                f"trace retention dropped events: oldest retained seq is "
                f"{self._events[0].seq}, requested mark {mark}")
        return [e for e in self._events if e.seq >= mark]

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class TraceTruncated(RuntimeError):
    """In-memory retention dropped events needed by the caller."""


def record_event(net: Any, kind: str, /, **fields: Any) -> None:
    """Record one event on ``net``'s trace, if it has an enabled one.

    Duck-type safe: network facades without a ``trace`` attribute (e.g.
    the packet-level :class:`~repro.stack.adapter.PacketQuorumNetwork`)
    are silently skipped, so instrumented code runs against any backend.
    """
    trace = getattr(net, "trace", None)
    if trace is not None and trace.enabled:
        trace.record(kind, net.now, **fields)
