"""Declarative streaming SLOs over the trace stream.

"Timed Quorum Systems for Large-Scale and Dynamic Environments"
motivates treating staleness and availability as *first-class service
levels* rather than end-of-run figures; this module does that for the
simulator: a JSON spec like ::

    [{"metric": "lookup.latency", "p": 99, "max": 0.25, "window": 100},
     {"metric": "lookup.hit_rate", "min": 0.85, "window": 200}]

is evaluated **live** over tumbling windows of the trace stream.  Each
spec watches one derived metric; percentile specs (``p``) use the O(1)
:class:`~repro.obs.metrics.P2Quantile` streaming estimator (no window
buffer, however large the window), plain specs use a running mean.
When a window fills — or the stream ends with a partial window — the
window's value is checked against ``max`` / ``min``; a breach is an
``slo-violation`` routed exactly like any invariant watcher violation
(strict auditor raises, record survives, the CLI reports).

Derived metrics (from ``access-start``/``access-end`` pairs):

* ``<kind>.latency`` — simulated seconds between the access's start and
  end events (``<kind>`` in ``advertise`` / ``lookup``);
* ``<kind>.messages`` / ``<kind>.routing`` / ``<kind>.quorum_size`` —
  the per-access accounting fields;
* ``lookup.hit_rate`` — 1.0/0.0 per lookup from the ``found`` flag
  (use with a ``min`` threshold and no ``p``).

And from ``kv-op`` serving events (the quorum key-value store):

* ``kv.<op>.latency`` — per-op simulated latency (``<op>`` in ``put`` /
  ``get`` / ``cas``);
* ``kv.availability`` — 1.0/0.0 per get from the ``ok`` flag;
* ``kv.stale_rate`` — 1.0/0.0 per get from the ``stale`` flag (reads
  that returned an older-than-newest committed version).

The monitor's machine-readable verdict (:meth:`SloMonitor.slo_report`)
is written beside the run manifest by the CLI (``<trace>.verdict.json``)
so CI can gate on it and archive it as an artifact.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import P2Quantile
from repro.obs.trace import TraceEvent
from repro.obs.watch import Watcher

#: Verdict report layout version.
SLO_REPORT_SCHEMA = 1

_ACCESS_FIELD_METRICS = (
    ("messages", "{kind}.messages"),
    ("routing", "{kind}.routing"),
    ("quorum", "{kind}.quorum_size"),
)


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a derived trace metric."""

    metric: str
    p: Optional[float] = None          # percentile (0..100); None = mean
    max: Optional[float] = None
    min: Optional[float] = None
    window: Optional[int] = None       # observations per window; None = run

    def __post_init__(self) -> None:
        if not self.metric:
            raise ValueError("SLO spec needs a 'metric'")
        if self.p is not None and not 0.0 < self.p < 100.0:
            raise ValueError("SLO percentile 'p' must be in (0, 100)")
        if self.max is None and self.min is None:
            raise ValueError(
                f"SLO spec for {self.metric!r} needs 'max' and/or 'min'")
        if self.window is not None and self.window < 1:
            raise ValueError("SLO 'window' must be >= 1")

    @property
    def label(self) -> str:
        stat = f"p{self.p:g}" if self.p is not None else "mean"
        bounds = []
        if self.max is not None:
            bounds.append(f"<= {self.max:g}")
        if self.min is not None:
            bounds.append(f">= {self.min:g}")
        win = f" per {self.window} obs" if self.window else " per run"
        return f"{self.metric} {stat} {' and '.join(bounds)}{win}"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"metric": self.metric}
        if self.p is not None:
            out["p"] = self.p
        if self.max is not None:
            out["max"] = self.max
        if self.min is not None:
            out["min"] = self.min
        if self.window is not None:
            out["window"] = self.window
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "SloSpec":
        known = {"metric", "p", "max", "min", "window"}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown SLO spec field(s) {sorted(unknown)}; "
                f"valid: {sorted(known)}")
        return cls(metric=str(raw["metric"]) if "metric" in raw else "",
                   p=raw.get("p"), max=raw.get("max"), min=raw.get("min"),
                   window=raw.get("window"))


def load_slo_specs(source: Any) -> List[SloSpec]:
    """Parse SLO specs from a JSON file path, JSON text, or list.

    Accepts a bare list of spec objects or ``{"slos": [...]}``.
    """
    if isinstance(source, str):
        if source.lstrip().startswith(("[", "{")):
            data = json.loads(source)
        else:
            with open(source) as handle:
                data = json.load(handle)
    else:
        data = source
    if isinstance(data, dict):
        data = data.get("slos", [])
    if not isinstance(data, list):
        raise ValueError("SLO spec file must hold a list (or {'slos': []})")
    specs = []
    for raw in data:
        if isinstance(raw, SloSpec):
            specs.append(raw)
        elif isinstance(raw, dict):
            specs.append(SloSpec.from_dict(raw))
        else:
            raise ValueError(f"SLO spec entries must be objects, got {raw!r}")
    return specs


class _MeanEstimator:
    """Windowed running mean (the non-percentile estimator)."""

    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value

    def value(self) -> float:
        return self.total / self.count if self.count else math.nan


class _SloSeries:
    """One spec's windowed evaluation state."""

    __slots__ = ("spec", "observations", "windows", "violations",
                 "worst", "_estimator")

    def __init__(self, spec: SloSpec) -> None:
        self.spec = spec
        self.observations = 0
        self.windows: List[Dict[str, Any]] = []
        self.violations = 0
        self.worst: Optional[float] = None
        self._estimator = self._fresh()

    def _fresh(self):
        if self.spec.p is not None:
            return P2Quantile(self.spec.p / 100.0)
        return _MeanEstimator()

    def observe(self, value: float) -> Optional[Dict[str, Any]]:
        """Feed one observation; returns a window verdict when one closes."""
        self.observations += 1
        self._estimator.observe(value)
        if (self.spec.window is not None
                and self._estimator.count >= self.spec.window):
            return self._close(partial=False)
        return None

    def flush(self) -> Optional[Dict[str, Any]]:
        """End-of-stream: evaluate a pending partial window."""
        if self._estimator.count == 0:
            return None
        return self._close(partial=True)

    def _close(self, partial: bool) -> Dict[str, Any]:
        value = self._estimator.value()
        ok = True
        if self.spec.max is not None and value > self.spec.max:
            ok = False
        if self.spec.min is not None and value < self.spec.min:
            ok = False
        verdict = {"window": len(self.windows),
                   "count": self._estimator.count,
                   "value": value, "ok": ok, "partial": partial}
        self.windows.append(verdict)
        if not ok:
            self.violations += 1
        if self.worst is None or self._is_worse(value):
            self.worst = value
        self._estimator = self._fresh()
        return verdict

    def _is_worse(self, value: float) -> bool:
        if math.isnan(value):
            return False
        if self.worst is None or math.isnan(self.worst):
            return True
        if self.spec.max is not None:
            return value > self.worst
        return value < self.worst

    def to_dict(self) -> Dict[str, Any]:
        def clean(v):
            if isinstance(v, float) and math.isnan(v):
                return None
            return v
        return {
            "spec": self.spec.to_dict(),
            "label": self.spec.label,
            "observations": self.observations,
            "violations": self.violations,
            "worst": clean(self.worst),
            "windows": [dict(w, value=clean(w["value"]))
                        for w in self.windows],
            "ok": self.violations == 0,
        }


class SloMonitor(Watcher):
    """A :class:`~repro.obs.watch.Watcher` evaluating SLO specs live.

    Plugs into a :class:`~repro.obs.watch.WatcherHub` like any invariant
    watcher: live on ``EventTrace`` subscriptions, or offline through
    ``repro obs watch TRACE --slo FILE``.  Window breaches surface as
    ``slo-violation`` watcher violations; :meth:`slo_report` returns the
    machine-readable verdict block.
    """

    name = "slo"
    kinds = frozenset({"access-start", "access-end", "kv-op"})

    def __init__(self, specs: Any) -> None:
        super().__init__()
        if isinstance(specs, (str, dict)):
            specs = load_slo_specs(specs)
        self.series = [
            _SloSeries(s if isinstance(s, SloSpec)
                       else SloSpec.from_dict(s))
            for s in specs]
        self._by_metric: Dict[str, List[_SloSeries]] = {}
        for series in self.series:
            self._by_metric.setdefault(series.spec.metric, []).append(series)
        # (strategy, access, origin) -> stack of start timestamps
        # (LIFO per key: the summarizer's nesting-safe pairing).
        self._open: Dict[Tuple[Any, Any, Any], List[float]] = {}

    # -- event consumption --------------------------------------------------

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        f = event.fields
        if event.kind == "kv-op":
            op = str(f.get("op", "?"))
            if "latency" in f:
                self._feed(f"kv.{op}.latency", float(f["latency"]))
            if op == "get":
                self._feed("kv.availability", 1.0 if f.get("ok") else 0.0)
                self._feed("kv.stale_rate", 1.0 if f.get("stale") else 0.0)
            return
        key = (f.get("strategy"), f.get("access"), f.get("origin"))
        if event.kind == "access-start":
            self._open.setdefault(key, []).append(event.t)
            return
        # access-end
        kind = str(f.get("access", "?"))
        stack = self._open.get(key)
        if stack:
            self._feed(f"{kind}.latency", event.t - stack.pop())
            if not stack:
                del self._open[key]
        for field_name, template in _ACCESS_FIELD_METRICS:
            if field_name in f:
                self._feed(template.format(kind=kind),
                           float(f[field_name]))
        if kind == "lookup" and "found" in f:
            self._feed("lookup.hit_rate", 1.0 if f.get("found") else 0.0)

    def _feed(self, metric: str, value: float) -> None:
        for series in self._by_metric.get(metric, ()):
            verdict = series.observe(value)
            if verdict is not None and not verdict["ok"]:
                self._breach(series, verdict)

    def _breach(self, series: _SloSeries, verdict: Dict[str, Any]) -> None:
        self.violation(
            "slo-violation",
            f"{series.spec.label}: window #{verdict['window']} "
            f"({verdict['count']} obs"
            + (", partial" if verdict["partial"] else "")
            + f") measured {verdict['value']:.6g}")

    def finish(self) -> None:
        for series in self.series:
            verdict = series.flush()
            if verdict is not None and not verdict["ok"]:
                self._breach(series, verdict)

    # -- reporting ----------------------------------------------------------

    def slo_report(self) -> Dict[str, Any]:
        """Machine-readable verdict block (written beside the manifest)."""
        results = [series.to_dict() for series in self.series]
        return {
            "schema": SLO_REPORT_SCHEMA,
            "specs": len(self.series),
            "violations": sum(r["violations"] for r in results),
            "ok": all(r["ok"] for r in results),
            "slos": results,
        }


def write_verdict_report(path: str, payload: Dict[str, Any]) -> str:
    """Write a verdict report as JSON; returns the path written."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def verdict_path_for(trace_path: str) -> str:
    """Where a trace's verdict report lives (beside its manifest)."""
    return trace_path + ".verdict.json"
