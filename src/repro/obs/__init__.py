"""Observability layer: event tracing, metrics, accounting audit,
run manifests, phase profiling, and offline trace analysis.

See DESIGN.md (Observability layer) for the event schema, the metric
name catalogue, the manifest schema, the profiler phase catalogue, and
the audit invariants.
"""

from repro.obs.audit import (
    AccountingAuditor,
    AuditError,
    AuditViolation,
    audit_access,
    auditor_from_env,
    own_events,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    collect_manifest,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, P2Quantile
from repro.obs.profile import (
    PROFILER,
    PhaseProfiler,
    profile_enabled_from_env,
    profiled,
)
from repro.obs.query import (
    AccessAggregate,
    TraceSummary,
    access_timeline,
    check_trace_schema,
    diff_summaries,
    iter_trace,
    render_diff,
    render_summary,
    render_timeline,
    summarize_trace,
    summary_to_jsonable,
)
from repro.obs.slo import (
    SloMonitor,
    SloSpec,
    load_slo_specs,
)
from repro.obs.trace import (
    MESSAGE_KINDS,
    ROUTING_KINDS,
    TRACE_SCHEMA,
    EventTrace,
    TraceEvent,
    TraceTruncated,
    record_event,
)
from repro.obs.watch import (
    ConservationWatcher,
    MonotonicityWatcher,
    NoFabricationWatcher,
    QuorumIntersectionWatcher,
    ReplayResult,
    Watcher,
    WatcherHub,
    attach_watchers,
    builtin_watchers,
    replay_trace,
)

__all__ = [
    "AccessAggregate",
    "AccountingAuditor",
    "AuditError",
    "AuditViolation",
    "ConservationWatcher",
    "Counter",
    "EventTrace",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MESSAGE_KINDS",
    "MetricsRegistry",
    "MonotonicityWatcher",
    "NoFabricationWatcher",
    "P2Quantile",
    "PROFILER",
    "PhaseProfiler",
    "QuorumIntersectionWatcher",
    "ROUTING_KINDS",
    "ReplayResult",
    "RunManifest",
    "SloMonitor",
    "SloSpec",
    "TRACE_SCHEMA",
    "TraceEvent",
    "TraceSummary",
    "TraceTruncated",
    "Watcher",
    "WatcherHub",
    "access_timeline",
    "attach_watchers",
    "audit_access",
    "auditor_from_env",
    "builtin_watchers",
    "check_trace_schema",
    "collect_manifest",
    "diff_summaries",
    "iter_trace",
    "load_slo_specs",
    "own_events",
    "profile_enabled_from_env",
    "profiled",
    "record_event",
    "render_diff",
    "render_summary",
    "render_timeline",
    "replay_trace",
    "summarize_trace",
    "summary_to_jsonable",
]
