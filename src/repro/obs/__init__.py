"""Observability layer: event tracing, metrics, accounting audit,
run manifests, phase profiling, and offline trace analysis.

See DESIGN.md (Observability layer) for the event schema, the metric
name catalogue, the manifest schema, the profiler phase catalogue, and
the audit invariants.
"""

from repro.obs.audit import (
    AccountingAuditor,
    AuditError,
    AuditViolation,
    audit_access,
    auditor_from_env,
    own_events,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    collect_manifest,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.profile import (
    PROFILER,
    PhaseProfiler,
    profile_enabled_from_env,
    profiled,
)
from repro.obs.query import (
    AccessAggregate,
    TraceSummary,
    access_timeline,
    diff_summaries,
    iter_trace,
    render_diff,
    render_summary,
    render_timeline,
    summarize_trace,
    summary_to_jsonable,
)
from repro.obs.trace import (
    MESSAGE_KINDS,
    ROUTING_KINDS,
    EventTrace,
    TraceEvent,
    TraceTruncated,
    record_event,
)

__all__ = [
    "AccessAggregate",
    "AccountingAuditor",
    "AuditError",
    "AuditViolation",
    "Counter",
    "EventTrace",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MESSAGE_KINDS",
    "MetricsRegistry",
    "PROFILER",
    "PhaseProfiler",
    "ROUTING_KINDS",
    "RunManifest",
    "TraceEvent",
    "TraceSummary",
    "TraceTruncated",
    "access_timeline",
    "audit_access",
    "auditor_from_env",
    "collect_manifest",
    "diff_summaries",
    "iter_trace",
    "own_events",
    "profile_enabled_from_env",
    "profiled",
    "record_event",
    "render_diff",
    "render_summary",
    "render_timeline",
    "summarize_trace",
    "summary_to_jsonable",
]
