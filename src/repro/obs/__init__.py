"""Observability layer: event tracing, metrics, accounting audit.

See DESIGN.md (Observability layer) for the event schema, the metric
name catalogue, and the audit invariants.
"""

from repro.obs.audit import (
    AccountingAuditor,
    AuditError,
    AuditViolation,
    audit_access,
    auditor_from_env,
    own_events,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.trace import (
    MESSAGE_KINDS,
    ROUTING_KINDS,
    EventTrace,
    TraceEvent,
    TraceTruncated,
    record_event,
)

__all__ = [
    "AccountingAuditor",
    "AuditError",
    "AuditViolation",
    "Counter",
    "EventTrace",
    "Histogram",
    "MESSAGE_KINDS",
    "MetricsRegistry",
    "ROUTING_KINDS",
    "TraceEvent",
    "TraceTruncated",
    "audit_access",
    "auditor_from_env",
    "own_events",
    "record_event",
]
