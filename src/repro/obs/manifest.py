"""Run manifests: provenance for every figure run, sweep, and bench.

A :class:`RunManifest` records *which* code, configuration, and seed
produced a result — git revision (+ dirty flag), interpreter and numpy
versions, host/platform, the experiment parameters, the neighbor
backend, the job count, and the wall time — so a number in
``BENCH_simnet.json`` or a trace on disk can always be tied back to the
exact run that produced it.  The schema is documented in DESIGN.md
(Observability layer).

Producers:

* the CLI writes ``<trace>.manifest.json`` next to every ``--trace``
  output (or wherever ``--manifest PATH`` points);
* :func:`repro.experiments.runner.run_sweep` records one manifest per
  sweep batch (written to ``$REPRO_MANIFEST_DIR`` when set, and always
  kept in ``runner.last_sweep_manifest``);
* the benchmark harness attaches a ``manifest`` block to each run key
  of ``BENCH_simnet.json``.
"""

from __future__ import annotations

import functools
import json
import os
import platform
import socket
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.trace import TRACE_SCHEMA

#: Bumped when the manifest layout changes incompatibly.
#: History: 1 = PR 4 layout; 2 = adds ``trace_schema``.
MANIFEST_SCHEMA = 2


@functools.lru_cache(maxsize=1)
def _git_info() -> Dict[str, Any]:
    """``{rev, dirty}`` for the repo containing this package (cached)."""
    root = Path(__file__).resolve()
    for parent in root.parents:
        if (parent / ".git").exists():
            try:
                rev = subprocess.run(
                    ["git", "-C", str(parent), "rev-parse", "HEAD"],
                    capture_output=True, text=True, timeout=10,
                ).stdout.strip()
                status = subprocess.run(
                    ["git", "-C", str(parent), "status", "--porcelain",
                     "--untracked-files=no"],
                    capture_output=True, text=True, timeout=10,
                ).stdout.strip()
                if rev:
                    return {"rev": rev, "dirty": bool(status)}
            except (OSError, subprocess.SubprocessError):
                break
            break
    return {"rev": "unknown", "dirty": None}


def _numpy_version() -> Optional[str]:
    try:
        import numpy
        return numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep today
        return None


@dataclass
class RunManifest:
    """Provenance record for one run (figure, sweep batch, or bench)."""

    command: str                              # "fig8", "sweep", "bench", ...
    params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    jobs: Optional[int] = None
    neighbor_backend: str = ""
    access_backend: str = ""
    trace_path: Optional[str] = None
    git_rev: str = "unknown"
    git_dirty: Optional[bool] = None
    python_version: str = ""
    numpy_version: Optional[str] = None
    platform: str = ""
    host: str = ""
    started_at: str = ""                      # UTC ISO-8601
    wall_time_s: Optional[float] = None
    schema: int = MANIFEST_SCHEMA
    #: Version of the traced event vocabulary the run emitted (see
    #: :data:`repro.obs.trace.TRACE_SCHEMA`); ``obs`` tools compare it
    #: against their own and warn before diagnosing an old trace.
    trace_schema: int = TRACE_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True,
                          default=str) + "\n"

    def write(self, path: str) -> str:
        """Write the manifest as JSON; returns the path written."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
        return path


def collect_manifest(
    command: str,
    params: Optional[Dict[str, Any]] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    trace_path: Optional[str] = None,
) -> RunManifest:
    """Snapshot the environment into a :class:`RunManifest`.

    ``wall_time_s`` is left unset; the caller stamps it when the run
    finishes.  Parameters must be JSON-serializable (dataclass configs
    can be passed through :func:`dataclasses.asdict` first).
    """
    git = _git_info()
    return RunManifest(
        command=command,
        params=dict(params or {}),
        seed=seed,
        jobs=jobs,
        neighbor_backend=os.environ.get("REPRO_NEIGHBOR_BACKEND",
                                        "vectorized"),
        access_backend=os.environ.get("REPRO_ACCESS_BACKEND", "batched"),
        trace_path=trace_path,
        git_rev=git["rev"],
        git_dirty=git["dirty"],
        python_version=sys.version.split()[0],
        numpy_version=_numpy_version(),
        platform=platform.platform(),
        host=socket.gethostname(),
        started_at=datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
    )
