"""Accounting auditor: cross-checks ``AccessResult`` against the trace.

The paper's evaluation (Sections 3, 8) stands on per-access accounting —
messages, routing overhead, latency, replies.  The auditor turns that
accounting into a standing invariant: for every access it replays the
access's slice of the event trace and verifies

* **messages**: ``AccessResult.messages`` equals the traced network
  transmissions (hop + broadcast + modeled virtual messages);
* **routing**: ``AccessResult.routing_messages`` equals the traced
  routing control cost;
* **replies**: ``reply_delivered`` is True iff some traced reply event
  succeeded, False only when every traced reply failed, and None only
  when no reply was attempted;
* **probes**: a ``found`` lookup is backed by a traced probe hit;
* **latency**: ``AccessResult.latency`` equals the simulated time
  between the access-start and access-end events.

Events belonging to *nested* accesses (e.g. a maintenance daemon's
refresh firing on a timer while an outer access advances simulated time)
are excluded — each nested access is audited at its own level.

Set ``REPRO_AUDIT=strict`` to make every violation raise
:class:`AuditError` (the CI mode); ``REPRO_AUDIT=record`` collects
violations without raising.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.obs.trace import MESSAGE_KINDS, ROUTING_KINDS, TraceEvent

LATENCY_TOLERANCE = 1e-9


class AuditError(RuntimeError):
    """A strict-mode accounting violation."""


@dataclass
class AuditViolation:
    """One failed accounting invariant."""

    code: str        # e.g. "message-mismatch"
    message: str     # human-readable description
    strategy: str = "?"
    kind: str = "?"

    def __str__(self) -> str:
        return f"[{self.code}] {self.strategy}/{self.kind}: {self.message}"


def own_events(events: Sequence[TraceEvent]) -> List[TraceEvent]:
    """Drop events belonging to accesses nested inside this one.

    The slice starts at the access's own ``access-start``; any further
    ``access-start`` opens a nested span that is excluded up to its
    matching ``access-end``.
    """
    kept: List[TraceEvent] = []
    depth = 0
    started = False
    for event in events:
        if event.kind == "access-start":
            if started:
                depth += 1
            else:
                started = True
                kept.append(event)
        elif event.kind == "access-end":
            if depth > 0:
                depth -= 1
            else:
                kept.append(event)
        elif depth == 0:
            kept.append(event)
    return kept


def audit_access(result, events: Sequence[TraceEvent]) -> List[AuditViolation]:
    """Check one ``AccessResult`` against its traced event slice."""
    violations: List[AuditViolation] = []

    def flag(code: str, message: str) -> None:
        violations.append(AuditViolation(
            code=code, message=message,
            strategy=result.strategy, kind=result.kind))

    mine = own_events(events)

    traced_messages = sum(e.count for e in mine if e.kind in MESSAGE_KINDS)
    if traced_messages != result.messages:
        flag("message-mismatch",
             f"claimed {result.messages} network messages, "
             f"traced {traced_messages}")

    traced_routing = sum(e.count for e in mine if e.kind in ROUTING_KINDS)
    if traced_routing != result.routing_messages:
        flag("routing-mismatch",
             f"claimed {result.routing_messages} routing messages, "
             f"traced {traced_routing}")

    replies = [e for e in mine if e.kind == "reply"]
    delivered_traced = any(e.fields.get("success") for e in replies)
    if result.reply_delivered is None:
        if replies:
            flag("reply-unclaimed",
                 f"{len(replies)} reply events traced but the access "
                 f"claims no reply was needed")
    elif result.reply_delivered:
        if not delivered_traced:
            flag("reply-mismatch",
                 "reply_delivered=True but no successful reply was traced")
    else:
        if not replies:
            flag("reply-mismatch",
                 "reply_delivered=False but no reply attempt was traced")
        elif delivered_traced:
            flag("reply-mismatch",
                 "reply_delivered=False but a traced reply succeeded")

    if result.kind == "lookup":
        probe_hit = any(e.kind == "probe" and e.fields.get("hit")
                        for e in mine)
        if result.found and not probe_hit:
            flag("found-without-probe", "found=True but no probe hit traced")
        if probe_hit and not result.found and not getattr(
                result, "masked", False):
            # Masked lookups legitimately discard traced probe hits:
            # the masking vote filter rejected every reply that failed
            # to gather b+1 matching votes.
            flag("probe-without-found", "probe hit traced but found=False")

    starts = [e for e in mine if e.kind == "access-start"]
    ends = [e for e in mine if e.kind == "access-end"]
    if starts and ends:
        traced_latency = ends[-1].t - starts[0].t
        if abs(traced_latency - result.latency) > LATENCY_TOLERANCE:
            flag("latency-mismatch",
                 f"claimed latency {result.latency!r}, "
                 f"traced {traced_latency!r}")
    return violations


class AccountingAuditor:
    """Collects (and in strict mode raises on) accounting violations."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.checked = 0
        self.violations: List[AuditViolation] = []

    def check(self, result, events: Sequence[TraceEvent]
              ) -> List[AuditViolation]:
        """Audit one access; returns (and retains) its violations."""
        found = audit_access(result, events)
        self.checked += 1
        self.violations.extend(found)
        if found and self.strict:
            raise AuditError("; ".join(str(v) for v in found))
        return found

    def flag(self, code: str, message: str, strategy: str = "?",
             kind: str = "?") -> None:
        """Report a violation detected outside :func:`audit_access`
        (e.g. the biquorum latency cross-check)."""
        violation = AuditViolation(code=code, message=message,
                                   strategy=strategy, kind=kind)
        self.violations.append(violation)
        if self.strict:
            raise AuditError(str(violation))

    @property
    def clean(self) -> bool:
        return not self.violations

    def report(self) -> str:
        if self.clean:
            return f"audit clean: {self.checked} accesses checked"
        lines = [f"audit: {len(self.violations)} violations over "
                 f"{self.checked} accesses"]
        lines.extend(str(v) for v in self.violations)
        return "\n".join(lines)


def auditor_from_env(env: Optional[dict] = None
                     ) -> Optional[AccountingAuditor]:
    """Build an auditor from ``REPRO_AUDIT`` (strict | record | unset)."""
    mode = (env or os.environ).get("REPRO_AUDIT", "").strip().lower()
    if mode == "strict":
        return AccountingAuditor(strict=True)
    if mode == "record":
        return AccountingAuditor(strict=False)
    return None
