"""Offline trace analysis: summarize, timeline, diff.

Consumes the JSONL event traces written by
:class:`~repro.obs.trace.EventTrace` (``--trace`` / ``REPRO_TRACE``)
**streamingly** — one line at a time, O(accesses) memory — so multi-GB
sweep traces work.  Three queries, surfaced as the ``repro obs`` CLI
namespace:

* :func:`summarize_trace` — per-event-kind counts, network/routing
  message totals, and per-access-kind aggregates (count, messages,
  routing, hits, reply drops, latency/quorum-size percentiles).  The
  access aggregates use the same :class:`~repro.obs.metrics.Histogram`
  and key names as the in-process ``MetricsRegistry.snapshot()``, so a
  trace summary of a seeded run reproduces the live metrics exactly.
* :func:`access_timeline` — the ordered event slice of one access,
  identified by its ordinal (the N-th ``access-start`` in the file).
* :func:`diff_summaries` — metric deltas between two runs; the building
  block for perf/behaviour regression gating (CI runs it over two
  seeded fig8 traces and expects zero delta).

Corrupt lines (a crashed worker, a truncated tail) are *counted*, never
fatal: sweep-pool traces are append-shared across processes and the
tooling must degrade gracefully.
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.obs.metrics import Histogram
from repro.obs.trace import MESSAGE_KINDS, ROUTING_KINDS, TRACE_SCHEMA

PathOrLines = Union[str, Iterable[str]]


def _iter_lines(source: PathOrLines) -> Iterator[str]:
    if isinstance(source, str):
        if source == "-":
            # Live pipe: `repro fig8 --trace /dev/stdout | repro obs
            # summarize -` (and friends).
            yield from sys.stdin
            return
        with open(source, "r") as handle:
            yield from handle
    else:
        yield from source


def check_trace_schema(trace_path: str) -> Optional[int]:
    """Warn on stderr when a trace was recorded under another schema.

    Reads the sibling ``<trace>.manifest.json``; silent when there is
    no manifest (or no path — stdin).  Manifests predating the stamp
    count as schema 1.  Returns the recorded schema, or ``None`` when
    unknown.
    """
    if not isinstance(trace_path, str) or trace_path == "-":
        return None
    try:
        with open(trace_path + ".manifest.json") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(manifest, dict):
        return None
    recorded = manifest.get("trace_schema", 1)
    if recorded != TRACE_SCHEMA:
        print(f"warning: trace {trace_path} was recorded under trace "
              f"schema {recorded}; these tools expect {TRACE_SCHEMA} — "
              f"fields added since may be missing from old events",
              file=sys.stderr)
    return recorded


def iter_trace(source: PathOrLines) -> Iterator[Optional[Dict[str, Any]]]:
    """Yield one parsed event dict per line; ``None`` for corrupt lines."""
    for line in _iter_lines(source):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            yield None
            continue
        if not isinstance(event, dict) or "kind" not in event:
            yield None
            continue
        yield event


@dataclass
class AccessAggregate:
    """Per-access-kind totals mirroring the ``access.<kind>.*`` metrics."""

    count: int = 0
    messages: int = 0
    routing: int = 0
    hits: int = 0
    reply_drops: int = 0
    unmatched: int = 0               # access-ends with no paired start
    latency: Histogram = field(
        default_factory=lambda: Histogram("latency"))
    quorum_size: Histogram = field(
        default_factory=lambda: Histogram("quorum_size"))


@dataclass
class KvOpAggregate:
    """Per-op rollup of ``kv-op`` serving events (schema 3)."""

    count: int = 0
    ok: int = 0
    stale: int = 0
    messages: int = 0
    latency: Histogram = field(
        default_factory=lambda: Histogram("latency"))


@dataclass
class TraceSummary:
    """Streaming aggregation of one JSONL trace."""

    events: int = 0
    corrupt_lines: int = 0
    kind_counts: Dict[str, int] = field(default_factory=dict)
    access: Dict[str, AccessAggregate] = field(default_factory=dict)
    kv_ops: Dict[str, KvOpAggregate] = field(default_factory=dict)
    traced_messages: int = 0         # hop + broadcast + virtual-msg counts
    traced_routing: int = 0
    replies: int = 0
    replies_delivered: int = 0
    open_accesses: int = 0           # starts never matched by an end
    access_retries: int = 0          # policy retry launches
    deadline_misses: int = 0         # policy deadline violations
    churn_actions: Dict[str, int] = field(default_factory=dict)
    t_min: float = math.inf
    t_max: float = -math.inf

    def snapshot(self) -> Dict[str, Any]:
        """Flat dict in ``MetricsRegistry.snapshot()`` key format."""
        out: Dict[str, Any] = {}
        # Policy/churn counters are created lazily in the live registry
        # (only on first increment), so mirror them only when nonzero to
        # keep the offline snapshot key-identical to the live one.
        if self.access_retries:
            out["access.retries"] = self.access_retries
        if self.deadline_misses:
            out["access.deadline_misses"] = self.deadline_misses
        for action, metric in (("fail", "churn.failures"),
                               ("join", "churn.joins"),
                               ("revive", "churn.revives")):
            count = self.churn_actions.get(action, 0)
            if count:
                out[metric] = count
        for kind in sorted(self.access):
            agg = self.access[kind]
            prefix = f"access.{kind}"
            out[prefix + ".count"] = agg.count
            out[prefix + ".messages"] = agg.messages
            out[prefix + ".routing"] = agg.routing
            if kind == "lookup":
                out[prefix + ".hits"] = agg.hits
                out[prefix + ".reply_drops"] = agg.reply_drops
            for name, h in (("latency", agg.latency),
                            ("quorum_size", agg.quorum_size)):
                out[f"{prefix}.{name}"] = {
                    "count": h.count, "sum": h.sum, "mean": h.mean,
                    "min": h.min, "max": h.max,
                    "p50": h.percentile(50), "p99": h.percentile(99),
                }
        for op in sorted(self.kv_ops):
            agg = self.kv_ops[op]
            prefix = f"kv.{op}"
            out[prefix + ".count"] = agg.count
            out[prefix + ".ok"] = agg.ok
            out[prefix + ".stale"] = agg.stale
            out[prefix + ".messages"] = agg.messages
            h = agg.latency
            out[prefix + ".latency"] = {
                "count": h.count, "sum": h.sum, "mean": h.mean,
                "min": h.min, "max": h.max,
                "p50": h.percentile(50), "p99": h.percentile(99),
            }
        return out


def summarize_trace(source: PathOrLines) -> TraceSummary:
    """One streaming pass over a trace (path or line iterable).

    Access latencies come from pairing each ``access-end`` with the most
    recent unmatched ``access-start`` of the same (strategy, access
    kind, origin) — LIFO per key, so nested daemon accesses pair
    correctly, and concurrently appended sweep traces pair per worker
    as long as keys do not collide mid-flight.
    """
    summary = TraceSummary()
    # (strategy, kind, origin) -> stack of access-start timestamps
    open_starts: Dict[Tuple[Any, Any, Any], List[float]] = {}

    for event in iter_trace(source):
        if event is None:
            summary.corrupt_lines += 1
            continue
        summary.events += 1
        kind = event["kind"]
        summary.kind_counts[kind] = summary.kind_counts.get(kind, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            summary.t_min = min(summary.t_min, t)
            summary.t_max = max(summary.t_max, t)

        if kind in MESSAGE_KINDS:
            summary.traced_messages += int(event.get("count", 1))
        elif kind in ROUTING_KINDS:
            summary.traced_routing += int(event.get("count", 1))
        elif kind == "reply":
            summary.replies += 1
            if event.get("success"):
                summary.replies_delivered += 1
        elif kind == "access-retry":
            summary.access_retries += 1
        elif kind == "access-deadline-miss":
            summary.deadline_misses += 1
        elif kind == "churn":
            action = str(event.get("action", "?"))
            summary.churn_actions[action] = (
                summary.churn_actions.get(action, 0) + 1)
        elif kind == "kv-op":
            op = str(event.get("op", "?"))
            agg_kv = summary.kv_ops.get(op)
            if agg_kv is None:
                agg_kv = summary.kv_ops[op] = KvOpAggregate()
            agg_kv.count += 1
            if event.get("ok"):
                agg_kv.ok += 1
            if event.get("stale"):
                agg_kv.stale += 1
            agg_kv.messages += int(event.get("messages", 0))
            if "latency" in event:
                agg_kv.latency.observe(float(event["latency"]))
        elif kind == "access-start":
            key = (event.get("strategy"), event.get("access"),
                   event.get("origin"))
            open_starts.setdefault(key, []).append(
                float(event.get("t", 0.0)))
        elif kind == "access-end":
            access_kind = event.get("access", "?")
            agg = summary.access.get(access_kind)
            if agg is None:
                agg = summary.access[access_kind] = AccessAggregate()
            agg.count += 1
            agg.messages += int(event.get("messages", 0))
            agg.routing += int(event.get("routing", 0))
            if event.get("found"):
                agg.hits += 1
                if event.get("reply") is False:
                    agg.reply_drops += 1
            if "quorum" in event:
                agg.quorum_size.observe(float(event["quorum"]))
            key = (event.get("strategy"), event.get("access"),
                   event.get("origin"))
            stack = open_starts.get(key)
            if stack:
                agg.latency.observe(float(event.get("t", 0.0)) - stack.pop())
                if not stack:
                    del open_starts[key]
            else:
                agg.unmatched += 1
    summary.open_accesses = sum(len(s) for s in open_starts.values())
    return summary


def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_summary(summary: TraceSummary) -> str:
    """Human-readable summary table (the ``repro obs summarize`` output)."""
    lines = [f"events: {summary.events}   "
             f"corrupt lines: {summary.corrupt_lines}"]
    if summary.events and summary.t_max >= summary.t_min:
        lines[0] += (f"   sim time: {summary.t_min:.4g} .. "
                     f"{summary.t_max:.4g} s")
    if summary.kind_counts:
        lines.append("")
        lines.append("event kinds:")
        width = max(len(k) for k in summary.kind_counts)
        for kind in sorted(summary.kind_counts):
            lines.append(f"  {kind.ljust(width)}  "
                         f"{summary.kind_counts[kind]}")
    lines.append("")
    lines.append(f"network messages traced: {summary.traced_messages}   "
                 f"routing: {summary.traced_routing}   "
                 f"replies: {summary.replies_delivered}/{summary.replies} "
                 f"delivered")
    if summary.access_retries or summary.deadline_misses:
        lines.append(f"access policy: retries={summary.access_retries}   "
                     f"deadline misses={summary.deadline_misses}")
    if summary.churn_actions:
        detail = " ".join(f"{action}={count}" for action, count
                          in sorted(summary.churn_actions.items()))
        lines.append(f"churn: {detail}")
    for kind in sorted(summary.access):
        agg = summary.access[kind]
        lines.append("")
        lines.append(f"access.{kind}: count={agg.count} "
                     f"messages={agg.messages} routing={agg.routing}"
                     + (f" hits={agg.hits} reply_drops={agg.reply_drops}"
                        if kind == "lookup" else ""))
        lat, qs = agg.latency, agg.quorum_size
        lines.append(f"  latency      n={lat.count} mean={_fmt(lat.mean)} "
                     f"p50={_fmt(lat.percentile(50))} "
                     f"p99={_fmt(lat.percentile(99))} max={_fmt(lat.max)}")
        lines.append(f"  quorum size  n={qs.count} mean={_fmt(qs.mean)} "
                     f"p50={_fmt(qs.percentile(50))} "
                     f"p99={_fmt(qs.percentile(99))} max={_fmt(qs.max)}")
        if agg.unmatched:
            lines.append(f"  (unpaired access-ends: {agg.unmatched})")
    for op in sorted(summary.kv_ops):
        agg = summary.kv_ops[op]
        lines.append("")
        lines.append(f"kv.{op}: count={agg.count} ok={agg.ok} "
                     f"stale={agg.stale} messages={agg.messages}")
        lat = agg.latency
        lines.append(f"  latency      n={lat.count} mean={_fmt(lat.mean)} "
                     f"p50={_fmt(lat.percentile(50))} "
                     f"p99={_fmt(lat.percentile(99))} max={_fmt(lat.max)}")
    if summary.open_accesses:
        lines.append("")
        lines.append(f"open accesses (start without end): "
                     f"{summary.open_accesses}")
    return "\n".join(lines)


def summary_to_jsonable(summary: TraceSummary) -> Dict[str, Any]:
    """JSON-safe dict (NaN percentiles become null)."""
    def clean(value):
        if isinstance(value, float) and math.isnan(value):
            return None
        if isinstance(value, dict):
            return {k: clean(v) for k, v in value.items()}
        return value

    return {
        "events": summary.events,
        "corrupt_lines": summary.corrupt_lines,
        "kind_counts": dict(sorted(summary.kind_counts.items())),
        "traced_messages": summary.traced_messages,
        "traced_routing": summary.traced_routing,
        "replies": summary.replies,
        "replies_delivered": summary.replies_delivered,
        "open_accesses": summary.open_accesses,
        "access_retries": summary.access_retries,
        "deadline_misses": summary.deadline_misses,
        "churn_actions": dict(sorted(summary.churn_actions.items())),
        "metrics": clean(summary.snapshot()),
    }


# -- timeline ---------------------------------------------------------------


def access_timeline(source: PathOrLines, access_index: int
                    ) -> List[Dict[str, Any]]:
    """Ordered events of the ``access_index``-th access (0-based ordinal
    of its ``access-start`` line), including any nested access's events,
    from start to the matching end.  Streaming: stops reading once the
    access closes.
    """
    if access_index < 0:
        raise ValueError("access index must be >= 0")
    seen_starts = -1
    depth = 0
    capturing = False
    events: List[Dict[str, Any]] = []
    for event in iter_trace(source):
        if event is None:
            continue
        kind = event["kind"]
        if kind == "access-start":
            seen_starts += 1
            if capturing:
                depth += 1
            elif seen_starts == access_index:
                capturing = True
                depth = 0
        if not capturing:
            continue
        events.append(event)
        if kind == "access-end":
            if depth == 0:
                break
            depth -= 1
    if not events:
        raise ValueError(
            f"trace has no access #{access_index} "
            f"(found {seen_starts + 1} accesses)")
    return events


def render_timeline(events: List[Dict[str, Any]],
                    access_index: Optional[int] = None) -> str:
    lines = []
    if access_index is not None and events:
        head = events[0]
        lines.append(
            f"access #{access_index}: {head.get('strategy', '?')} "
            f"{head.get('access', '?')} from node "
            f"{head.get('origin', '?')} ({len(events)} events)")
    depth = 0
    for event in events:
        kind = event["kind"]
        if kind == "access-end" and depth > 0:
            depth -= 1
        payload = {k: v for k, v in event.items()
                   if k not in ("seq", "t", "kind")}
        detail = " ".join(f"{k}={v}" for k, v in payload.items())
        indent = "  " * depth
        lines.append(f"{event.get('seq', '?'):>8}  "
                     f"{float(event.get('t', 0.0)):>12.6f}  "
                     f"{indent}{kind}  {detail}".rstrip())
        if kind == "access-start":
            depth += 1
    return "\n".join(lines)


# -- diff -------------------------------------------------------------------


def _flatten(snapshot: Dict[str, Any]) -> Dict[str, float]:
    flat: Dict[str, float] = {}
    for name, value in snapshot.items():
        if isinstance(value, dict):
            for sub, v in value.items():
                flat[f"{name}.{sub}"] = v
        else:
            flat[name] = value
    return flat


def diff_summaries(a: TraceSummary, b: TraceSummary
                   ) -> List[Tuple[str, float, float]]:
    """Changed metrics between two summaries: ``[(name, a, b), ...]``.

    Compares the scalar totals plus the flattened access metric
    snapshots.  NaN == NaN here (two empty histograms are not a
    difference).
    """
    flat_a = {"events": a.events, "corrupt_lines": a.corrupt_lines,
              "traced_messages": a.traced_messages,
              "traced_routing": a.traced_routing,
              "replies": a.replies,
              "replies_delivered": a.replies_delivered}
    flat_b = {"events": b.events, "corrupt_lines": b.corrupt_lines,
              "traced_messages": b.traced_messages,
              "traced_routing": b.traced_routing,
              "replies": b.replies,
              "replies_delivered": b.replies_delivered}
    flat_a.update(_flatten(a.snapshot()))
    flat_b.update(_flatten(b.snapshot()))
    changes: List[Tuple[str, float, float]] = []
    for name in sorted(set(flat_a) | set(flat_b)):
        va = flat_a.get(name, math.nan)
        vb = flat_b.get(name, math.nan)
        both_nan = (isinstance(va, float) and math.isnan(va)
                    and isinstance(vb, float) and math.isnan(vb))
        if va != vb and not both_nan:
            changes.append((name, va, vb))
    return changes


def render_diff(changes: List[Tuple[str, float, float]],
                label_a: str = "a", label_b: str = "b") -> str:
    if not changes:
        return "no differences"
    width = max(len(name) for name, _, _ in changes)
    lines = [f"{len(changes)} metrics differ ({label_a} -> {label_b}):"]
    for name, va, vb in changes:
        delta = ""
        if (isinstance(va, (int, float)) and isinstance(vb, (int, float))
                and not (isinstance(va, float) and math.isnan(va))
                and not (isinstance(vb, float) and math.isnan(vb))):
            delta = f"  ({vb - va:+.6g})"
        lines.append(f"  {name.ljust(width)}  {_fmt(va)} -> "
                     f"{_fmt(vb)}{delta}")
    return "\n".join(lines)
