"""Network substrate: packets, AODV routing, TTL-scoped flooding."""

from repro.net.aodv import AodvAgent, AodvParams, RouteEntry
from repro.net.flooding import FloodingAgent
from repro.net.packet import (
    DataPacket,
    FloodPacket,
    RouteError,
    RouteReply,
    RouteRequest,
    next_packet_id,
)

__all__ = [
    "AodvAgent",
    "AodvParams",
    "RouteEntry",
    "FloodingAgent",
    "DataPacket",
    "FloodPacket",
    "RouteError",
    "RouteReply",
    "RouteRequest",
    "next_packet_id",
]
