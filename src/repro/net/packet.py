"""Network-layer packet types shared by routing and flooding."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, List, Tuple

_packet_ids = itertools.count()


def next_packet_id() -> int:
    """Globally unique packet id (per process)."""
    return next(_packet_ids)


@dataclass
class DataPacket:
    """A routed application payload."""

    pkt_id: int
    src: int
    dst: int
    payload: Any
    ttl: int = 64
    hop_count: int = 0


@dataclass
class FloodPacket:
    """A TTL-scoped flood of an application payload (Section 4.4).

    Every node that receives it for the first time delivers the payload to
    the application, decrements the TTL and rebroadcasts while TTL > 0.
    """

    pkt_id: int
    origin: int
    payload: Any
    ttl: int
    hop_count: int = 0


@dataclass
class RouteRequest:
    """AODV RREQ."""

    rreq_id: int
    origin: int
    origin_seq: int
    dst: int
    dst_seq: int
    hop_count: int = 0
    ttl: int = 1


@dataclass
class RouteReply:
    """AODV RREP, unicast hop by hop back to the RREQ origin."""

    origin: int
    dst: int
    dst_seq: int
    hop_count: int
    lifetime: float


@dataclass
class RouteError:
    """AODV RERR listing now-unreachable destinations."""

    unreachable: List[Tuple[int, int]]  # (dst, dst_seq)
