"""AODV routing agent (per node).

Implements the parts of AODV the paper's RANDOM / RANDOM-OPT strategies
exercise: on-demand route discovery with expanding-ring RREQ floods,
reverse-path RREPs, hop-by-hop data forwarding, route lifetimes, RERR on
link break, and — critically for Section 6.2 — *cross-layer notifications*:
a MAC-level unicast failure invalidates the route and is propagated to the
application instead of a silent drop.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.mac.csma import MacLayer
from repro.net.packet import (
    DataPacket,
    RouteError,
    RouteReply,
    RouteRequest,
    next_packet_id,
)
from repro.sim.kernel import Simulator


@dataclass
class RouteEntry:
    next_hop: int
    hop_count: int
    dst_seq: int
    expires: float
    valid: bool = True


@dataclass(frozen=True)
class AodvParams:
    """Timing/expanding-ring constants (scaled-down RFC 3561 defaults)."""

    active_route_timeout: float = 10.0
    ttl_start: int = 2
    ttl_increment: int = 2
    ttl_threshold: int = 7
    net_diameter: int = 35
    rreq_retries: int = 2
    ring_traversal_time_per_ttl: float = 0.05
    buffer_timeout: float = 5.0


@dataclass
class _BufferedPacket:
    packet: DataPacket
    queued_at: float
    on_unroutable: Optional[Callable[[DataPacket], None]] = None


class AodvAgent:
    """AODV routing state machine for one node."""

    def __init__(
        self,
        sim: Simulator,
        mac: MacLayer,
        node_id: int,
        deliver: Callable[[Any, DataPacket], None],
        params: Optional[AodvParams] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.mac = mac
        self.node_id = node_id
        self.deliver = deliver
        self.params = params or AodvParams()
        self.rng = rng or random.Random()

        self.seq = 0
        self._rreq_id = itertools.count(1)
        self.routes: Dict[int, RouteEntry] = {}
        self._seen_rreqs: Dict[Tuple[int, int], float] = {}
        self._buffers: Dict[int, List[_BufferedPacket]] = {}
        self._discovery_state: Dict[int, Tuple[int, int]] = {}  # dst -> (attempt, ttl)

        # Cross-layer notification hook: called when a data packet this node
        # originated cannot be sent/forwarded (Section 6.2).
        self.on_send_failure: Optional[Callable[[DataPacket], None]] = None

        # Statistics (routing overhead = control transmissions; Section 8).
        self.rreq_sent = 0
        self.rrep_sent = 0
        self.rerr_sent = 0
        self.data_forwarded = 0
        self.data_originated = 0
        self.data_delivered = 0

    # -- public API --------------------------------------------------------

    def control_messages(self) -> int:
        """Total routing-layer control transmissions by this node."""
        return self.rreq_sent + self.rrep_sent + self.rerr_sent

    def has_route(self, dst: int) -> bool:
        entry = self.routes.get(dst)
        return bool(entry and entry.valid and entry.expires > self.sim.now)

    def send_data(
        self,
        dst: int,
        payload: Any,
        on_unroutable: Optional[Callable[[DataPacket], None]] = None,
    ) -> DataPacket:
        """Originate a data packet towards ``dst`` (discovering if needed)."""
        packet = DataPacket(pkt_id=next_packet_id(), src=self.node_id,
                            dst=dst, payload=payload)
        self.data_originated += 1
        if dst == self.node_id:
            self.data_delivered += 1
            self.deliver(payload, packet)
            return packet
        self._route_or_discover(packet, on_unroutable)
        return packet

    # -- receive dispatch ----------------------------------------------------

    def on_payload(self, payload: Any, from_node: int) -> None:
        """Entry point for every network payload handed up by the MAC."""
        if isinstance(payload, RouteRequest):
            self._handle_rreq(payload, from_node)
        elif isinstance(payload, RouteReply):
            self._handle_rrep(payload, from_node)
        elif isinstance(payload, RouteError):
            self._handle_rerr(payload, from_node)
        elif isinstance(payload, DataPacket):
            self._handle_data(payload, from_node)

    # -- data path -----------------------------------------------------------

    def _route_or_discover(
        self,
        packet: DataPacket,
        on_unroutable: Optional[Callable[[DataPacket], None]] = None,
    ) -> None:
        if self.has_route(packet.dst):
            self._forward(packet)
            return
        self._buffers.setdefault(packet.dst, []).append(
            _BufferedPacket(packet=packet, queued_at=self.sim.now,
                            on_unroutable=on_unroutable)
        )
        if packet.dst not in self._discovery_state:
            self._start_discovery(packet.dst)

    def _forward(self, packet: DataPacket) -> None:
        entry = self.routes.get(packet.dst)
        if entry is None or not entry.valid or entry.expires <= self.sim.now:
            self._on_forward_failure(packet)
            return
        entry.expires = self.sim.now + self.params.active_route_timeout
        packet.hop_count += 1
        packet.ttl -= 1
        if packet.ttl <= 0:
            self._on_forward_failure(packet)
            return
        if packet.src != self.node_id:
            self.data_forwarded += 1
        self.mac.send_unicast(
            entry.next_hop,
            packet,
            on_failure=lambda p=packet, nh=entry.next_hop: self._on_link_break(p, nh),
        )

    def _on_link_break(self, packet: DataPacket, next_hop: int) -> None:
        """MAC reported 7 failed retries to ``next_hop``: route is dead."""
        broken = [
            (dst, entry.dst_seq)
            for dst, entry in self.routes.items()
            if entry.valid and entry.next_hop == next_hop
        ]
        for dst, _seq in broken:
            self.routes[dst].valid = False
        if broken:
            self.rerr_sent += 1
            self.mac.send_broadcast(RouteError(unreachable=broken),
                                    payload_bytes=32)
        self._on_forward_failure(packet)

    def _on_forward_failure(self, packet: DataPacket) -> None:
        if packet.src == self.node_id and self.on_send_failure is not None:
            self.on_send_failure(packet)

    def _handle_data(self, packet: DataPacket, _from_node: int) -> None:
        if packet.dst == self.node_id:
            self.data_delivered += 1
            self.deliver(packet.payload, packet)
            return
        self._route_or_discover(packet)

    # -- route discovery -----------------------------------------------------

    def _start_discovery(self, dst: int) -> None:
        self._discovery_state[dst] = (0, self.params.ttl_start)
        self._send_rreq(dst)

    def _send_rreq(self, dst: int) -> None:
        attempt, ttl = self._discovery_state[dst]
        self.seq += 1
        known = self.routes.get(dst)
        rreq = RouteRequest(
            rreq_id=next(self._rreq_id),
            origin=self.node_id,
            origin_seq=self.seq,
            dst=dst,
            dst_seq=known.dst_seq if known else 0,
            hop_count=0,
            ttl=ttl,
        )
        self._seen_rreqs[(self.node_id, rreq.rreq_id)] = self.sim.now
        self.rreq_sent += 1
        self.mac.send_broadcast(rreq, payload_bytes=32)
        wait = max(2 * ttl, 2) * self.params.ring_traversal_time_per_ttl
        self.sim.schedule(wait, self._check_discovery, dst, rreq.rreq_id)

    def _check_discovery(self, dst: int, _rreq_id: int) -> None:
        if dst not in self._discovery_state:
            return
        if self.has_route(dst):
            self._discovery_done(dst)
            return
        attempt, ttl = self._discovery_state[dst]
        if ttl < self.params.ttl_threshold:
            ttl = min(ttl + self.params.ttl_increment, self.params.ttl_threshold)
            self._discovery_state[dst] = (attempt, ttl)
            self._send_rreq(dst)
            return
        if attempt < self.params.rreq_retries:
            self._discovery_state[dst] = (attempt + 1, self.params.net_diameter)
            self._send_rreq(dst)
            return
        # Give up: flush buffered packets as unroutable.
        self._discovery_state.pop(dst, None)
        for buffered in self._buffers.pop(dst, []):
            if buffered.on_unroutable is not None:
                buffered.on_unroutable(buffered.packet)
            elif (buffered.packet.src == self.node_id
                  and self.on_send_failure is not None):
                self.on_send_failure(buffered.packet)

    def _discovery_done(self, dst: int) -> None:
        self._discovery_state.pop(dst, None)
        now = self.sim.now
        pending = self._buffers.pop(dst, [])
        for buffered in pending:
            if now - buffered.queued_at <= self.params.buffer_timeout:
                self._forward(buffered.packet)

    def _update_route(self, dst: int, next_hop: int, hop_count: int,
                      dst_seq: int) -> None:
        now = self.sim.now
        entry = self.routes.get(dst)
        fresher = (
            entry is None
            or not entry.valid
            or entry.expires <= now
            or dst_seq > entry.dst_seq
            or (dst_seq == entry.dst_seq and hop_count < entry.hop_count)
        )
        if fresher:
            self.routes[dst] = RouteEntry(
                next_hop=next_hop,
                hop_count=hop_count,
                dst_seq=dst_seq,
                expires=now + self.params.active_route_timeout,
            )
            if dst in self._discovery_state:
                self._discovery_done(dst)

    def _handle_rreq(self, rreq: RouteRequest, from_node: int) -> None:
        key = (rreq.origin, rreq.rreq_id)
        if key in self._seen_rreqs:
            return
        self._seen_rreqs[key] = self.sim.now
        if len(self._seen_rreqs) > 8192:
            horizon = self.sim.now - 30.0
            self._seen_rreqs = {
                k: v for k, v in self._seen_rreqs.items() if v >= horizon
            }
        hops_here = rreq.hop_count + 1
        self._update_route(rreq.origin, from_node, hops_here, rreq.origin_seq)
        # Also learn the one-hop route to the forwarder.
        self._update_route(from_node, from_node, 1, 0)

        if rreq.dst == self.node_id:
            self.seq = max(self.seq, rreq.dst_seq) + 1
            self._send_rrep_towards(rreq.origin, dst=self.node_id,
                                    dst_seq=self.seq, hop_count=0)
            return
        entry = self.routes.get(rreq.dst)
        if (entry and entry.valid and entry.expires > self.sim.now
                and entry.dst_seq >= rreq.dst_seq and entry.dst_seq > 0):
            self._send_rrep_towards(rreq.origin, dst=rreq.dst,
                                    dst_seq=entry.dst_seq,
                                    hop_count=entry.hop_count)
            return
        if rreq.ttl > 1:
            fwd = RouteRequest(
                rreq_id=rreq.rreq_id, origin=rreq.origin,
                origin_seq=rreq.origin_seq, dst=rreq.dst,
                dst_seq=rreq.dst_seq, hop_count=hops_here, ttl=rreq.ttl - 1,
            )
            self.rreq_sent += 1
            self.mac.send_broadcast(fwd, payload_bytes=32)

    def _send_rrep_towards(self, origin: int, dst: int, dst_seq: int,
                           hop_count: int) -> None:
        entry = self.routes.get(origin)
        if entry is None or not entry.valid:
            return
        rrep = RouteReply(origin=origin, dst=dst, dst_seq=dst_seq,
                          hop_count=hop_count,
                          lifetime=self.params.active_route_timeout)
        self.rrep_sent += 1
        self.mac.send_unicast(entry.next_hop, rrep, payload_bytes=24)

    def _handle_rrep(self, rrep: RouteReply, from_node: int) -> None:
        hops_here = rrep.hop_count + 1
        self._update_route(rrep.dst, from_node, hops_here, rrep.dst_seq)
        self._update_route(from_node, from_node, 1, 0)
        if rrep.origin == self.node_id:
            return
        entry = self.routes.get(rrep.origin)
        if entry is None or not entry.valid:
            return
        fwd = RouteReply(origin=rrep.origin, dst=rrep.dst,
                         dst_seq=rrep.dst_seq, hop_count=hops_here,
                         lifetime=rrep.lifetime)
        self.rrep_sent += 1
        self.mac.send_unicast(entry.next_hop, fwd, payload_bytes=24)

    def _handle_rerr(self, rerr: RouteError, from_node: int) -> None:
        invalidated: List[Tuple[int, int]] = []
        for dst, dst_seq in rerr.unreachable:
            entry = self.routes.get(dst)
            if entry and entry.valid and entry.next_hop == from_node:
                entry.valid = False
                invalidated.append((dst, max(entry.dst_seq, dst_seq)))
        if invalidated:
            self.rerr_sent += 1
            self.mac.send_broadcast(RouteError(unreachable=invalidated),
                                    payload_bytes=32)
