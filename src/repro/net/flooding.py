"""TTL-scoped network flooding (Section 4.4).

A flood starts at an originating node with a time-to-live; each node that
receives the packet for the first time delivers the payload to the
application, decrements the TTL, and (if it stays positive) rebroadcasts
after a random jitter.  Works over any object exposing the MAC broadcast
interface.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.mac.csma import MacLayer
from repro.net.packet import FloodPacket, next_packet_id
from repro.sim.kernel import Simulator


class FloodingAgent:
    """Per-node limited-scope flooding entity."""

    def __init__(
        self,
        sim: Simulator,
        mac: MacLayer,
        node_id: int,
        deliver: Callable[[Any, FloodPacket], None],
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.mac = mac
        self.node_id = node_id
        self.deliver = deliver
        self.rng = rng or random.Random()
        self._seen: Dict[int, float] = {}
        self.floods_originated = 0
        self.rebroadcasts = 0

    def originate(self, payload: Any, ttl: int) -> FloodPacket:
        """Start a flood from this node; the originator also delivers."""
        if ttl < 1:
            raise ValueError("flood TTL must be >= 1")
        packet = FloodPacket(pkt_id=next_packet_id(), origin=self.node_id,
                             payload=payload, ttl=ttl)
        self._seen[packet.pkt_id] = self.sim.now
        self.floods_originated += 1
        self.deliver(payload, packet)
        self.mac.send_broadcast(packet)
        return packet

    def on_payload(self, payload: Any, _from_node: int) -> None:
        """Handle a flood packet heard from a neighbor."""
        if not isinstance(payload, FloodPacket):
            return
        packet = payload
        if packet.pkt_id in self._seen:
            return
        self._seen[packet.pkt_id] = self.sim.now
        self._gc()
        self.deliver(packet.payload, packet)
        if packet.ttl - 1 > 0:
            fwd = FloodPacket(pkt_id=packet.pkt_id, origin=packet.origin,
                              payload=packet.payload, ttl=packet.ttl - 1,
                              hop_count=packet.hop_count + 1)
            self.rebroadcasts += 1
            self.mac.send_broadcast(fwd)

    def _gc(self) -> None:
        if len(self._seen) > 8192:
            horizon = self.sim.now - 60.0
            self._seen = {k: v for k, v in self._seen.items() if v >= horizon}
