"""Command-line interface: regenerate any of the paper's figures.

Usage::

    python -m repro list
    python -m repro fig10 --n 200 --lookups 100
    python -m repro fig7 --epsilon 0.05
    python -m repro quickstart

plus the offline trace analysis tools::

    python -m repro fig8 --trace t.jsonl
    python -m repro obs summarize t.jsonl
    python -m repro obs timeline t.jsonl --access 0
    python -m repro obs diff a.jsonl b.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List

import repro.experiments as ex
from repro.analysis import figure3_table, figure6_table
from repro.experiments import format_pm, format_table
from repro.quorum import BUILTIN_SYSTEMS, OBJECTIVES


def _rep_kwargs(args) -> dict:
    """Replication options shared by every replication-aware figure."""
    return {
        "reps": getattr(args, "reps", 1),
        "rep_backend": getattr(args, "rep_backend", None),
        "ci_target": getattr(args, "ci", None),
    }


def _pm(point, mean_value: float, metric: str) -> str:
    """``mean ± half-width`` cell for a replicated sweep point."""
    return format_pm(mean_value, point.ci.get(metric))


def _fig3(args) -> str:
    rows = figure3_table(args.n)
    return "Figure 3 (asymptotic strategy comparison)\n" + format_table(
        ["strategy", "accessed", "cost", "routing?", "membership?",
         "replies", "early halt?"],
        [(r["strategy"], r["accessed_nodes"], r["cost_rgg"],
          r["needs_routing"], r["needs_membership"], r["lookup_replies"],
          r["early_halting"]) for r in rows])


def _fig4(args) -> str:
    points = ex.pct_by_network_size(sizes=(args.n // 2, args.n),
                                    walks=args.walks)
    points += ex.pct_by_density(densities=(7, 10, 20), n=args.n,
                                walks=args.walks)
    return "Figure 4 (partial cover time)\n" + format_table(
        ["n", "d_avg", "target", "self-avoiding", "steps/unique"],
        [(p.n, p.avg_degree, p.unique_target, p.unique, p.steps_per_unique)
         for p in points])


def _fig5(args) -> str:
    points = ex.flooding_coverage(n=args.n, ttls=tuple(range(1, 6)))
    return "Figure 5 (flooding coverage)\n" + format_table(
        ["n", "ttl", "coverage", "messages", "CG"],
        [(p.n, p.ttl, p.coverage, p.messages, p.granularity)
         for p in points])


def _fig6(args) -> str:
    combos = figure6_table(args.n)
    return "Figure 6 (combination costs)\n" + format_table(
        ["advertise", "lookup", "adv cost", "lookup cost", "combined"],
        [(c.advertise, c.lookup, c.advertise_cost, c.lookup_cost, c.combined)
         for c in combos])


def _fig7(args) -> str:
    points = ex.degradation_curves(epsilon=args.epsilon, n=args.n,
                                   trials=args.trials)
    return "Figure 7 (degradation under churn)\n" + format_table(
        ["mode", "f", "analytic", "simulated"],
        [(p.mode, p.f, p.analytic_intersection, p.simulated_intersection)
         for p in points])


def _fig8(args) -> str:
    rep = _rep_kwargs(args)
    adv = ex.random_advertise_cost(sizes=(args.n,), n_keys=args.keys,
                                   jobs=args.jobs, **rep)
    look = ex.random_lookup_hit_ratio(sizes=(args.n,), n_keys=args.keys,
                                      n_lookups=args.lookups, jobs=args.jobs,
                                      **rep)
    out = "Figure 8(a,b) (RANDOM advertise cost)\n" + format_table(
        ["n", "|Qa|", "msgs", "routing", "latency"],
        [(p.n, p.quorum_size,
          _pm(p, p.avg_messages, "avg_advertise_messages"),
          _pm(p, p.avg_routing, "avg_advertise_routing"),
          _pm(p, p.avg_latency, "avg_advertise_latency"))
         for p in adv])
    out += "\n\nFigure 8(c) (RANDOM lookup hit ratio)\n" + format_table(
        ["n", "|Ql|", "factor", "hit", "msgs", "latency"],
        [(p.n, p.lookup_size, p.lookup_size_factor,
          _pm(p, p.hit_ratio, "hit_ratio"),
          _pm(p, p.avg_messages, "avg_lookup_messages"),
          _pm(p, p.avg_latency, "avg_lookup_latency")) for p in look])
    return out


def _fig9(args) -> str:
    points = ex.random_opt_lookup(n=args.n, mobility=args.mobility,
                                  n_keys=args.keys, n_lookups=args.lookups,
                                  jobs=args.jobs, **_rep_kwargs(args))
    return "Figure 9 (RANDOM-OPT lookup)\n" + format_table(
        ["n", "X", "hit", "msgs", "routing", "probed"],
        [(p.n, p.initiations, _pm(p, p.hit_ratio, "hit_ratio"),
          _pm(p, p.avg_messages, "avg_lookup_messages"),
          _pm(p, p.avg_routing, "avg_lookup_routing"),
          p.avg_quorum_size) for p in points])


def _fig10(args) -> str:
    from repro.experiments.ascii_plot import render_series

    points = ex.unique_path_lookup(n=args.n, mobility=args.mobility,
                                   n_keys=args.keys, n_lookups=args.lookups,
                                   jobs=args.jobs, **_rep_kwargs(args))
    table = format_table(
        ["n", "|Ql|", "factor", "hit", "msgs", "msgs(hit)", "msgs(miss)",
         "latency"],
        [(p.n, p.lookup_size, p.lookup_size_factor,
          _pm(p, p.hit_ratio, "hit_ratio"),
          _pm(p, p.avg_messages, "avg_lookup_messages"),
          _pm(p, p.avg_messages_on_hit, "avg_lookup_messages_on_hit"),
          _pm(p, p.avg_messages_on_miss, "avg_lookup_messages_on_miss"),
          _pm(p, p.avg_latency, "avg_lookup_latency")) for p in points])
    chart = render_series(
        {"hit ratio": [(p.lookup_size_factor, p.hit_ratio) for p in points]},
        x_label="|Ql| / sqrt(n)", y_label="hit ratio")
    return f"Figure 10 (UNIQUE-PATH lookup)\n{table}\n\n{chart}"


def _fig11(args) -> str:
    points = ex.flooding_lookup(n=args.n, mobility=args.mobility,
                                n_keys=args.keys, n_lookups=args.lookups,
                                jobs=args.jobs, **_rep_kwargs(args))
    return "Figure 11 (FLOODING lookup)\n" + format_table(
        ["n", "ttl", "hit", "msgs", "coverage"],
        [(p.n, p.ttl, _pm(p, p.hit_ratio, "hit_ratio"),
          _pm(p, p.avg_messages, "avg_lookup_messages"), p.avg_coverage)
         for p in points])


def _fig12(args) -> str:
    points = ex.path_x_path(n=args.n, n_keys=args.keys,
                            n_lookups=args.lookups, jobs=args.jobs,
                            **_rep_kwargs(args))
    return "Figure 12 (UNIQUE-PATH x UNIQUE-PATH)\n" + format_table(
        ["n", "|Q|/side", "combined/n", "hit", "adv msgs", "lookup msgs"],
        [(p.n, p.quorum_size, p.combined_fraction,
          _pm(p, p.hit_ratio, "hit_ratio"),
          _pm(p, p.avg_advertise_messages, "avg_advertise_messages"),
          _pm(p, p.avg_lookup_messages, "avg_lookup_messages"))
         for p in points])


def _fig13(args) -> str:
    points = ex.mobility_sweep(n=args.n, local_repair=False,
                               n_keys=args.keys, n_lookups=args.lookups,
                               jobs=args.jobs, **_rep_kwargs(args))
    return "Figure 13 (fast mobility, no repair)\n" + format_table(
        ["speed", "hit", "intersection", "drops", "msgs"],
        [(p.max_speed, _pm(p, p.hit_ratio, "hit_ratio"),
          _pm(p, p.intersection_ratio, "intersection_ratio"),
          _pm(p, p.reply_drop_ratio, "reply_drop_ratio"),
          _pm(p, p.avg_messages, "avg_lookup_messages")) for p in points])


def _fig14(args) -> str:
    rep = _rep_kwargs(args)
    points = ex.mobility_sweep(n=args.n, local_repair=True,
                               n_keys=args.keys, n_lookups=args.lookups,
                               jobs=args.jobs, **rep)
    churn = ex.churn_sweep(n=args.n, n_keys=args.keys,
                           n_lookups=args.lookups, jobs=args.jobs, **rep)
    out = "Figure 14(a-d) (reply-path repair)\n" + format_table(
        ["speed", "hit", "drops", "msgs", "routing"],
        [(p.max_speed, _pm(p, p.hit_ratio, "hit_ratio"),
          _pm(p, p.reply_drop_ratio, "reply_drop_ratio"),
          _pm(p, p.avg_messages, "avg_lookup_messages"),
          _pm(p, p.avg_routing, "avg_lookup_routing")) for p in points])
    out += "\n\nFigure 14(f) (churn)\n" + format_table(
        ["f", "hit", "analytic floor"],
        [(p.churn_fraction, _pm(p, p.hit_ratio, "hit_ratio"),
          p.analytic_floor) for p in churn])
    return out


def _fig15(args) -> str:
    from repro.experiments.ascii_plot import render_series

    curves = ex.lookup_tradeoff_curves(n=args.n, n_keys=args.keys,
                                       n_lookups=args.lookups)
    rows = []
    for name, points in curves.items():
        rows.extend((name, p.knob, p.hit_ratio, p.avg_messages,
                     p.avg_routing) for p in points)
    table = format_table(
        ["strategy", "knob", "hit", "msgs", "routing"], rows)
    chart = render_series(
        {name: [(p.avg_messages, p.hit_ratio) for p in points]
         for name, points in curves.items()},
        x_label="messages/lookup", y_label="hit ratio")
    return f"Figure 15 (lookup strategy comparison)\n{table}\n\n{chart}"


def _fig16(args) -> str:
    rows = ex.summary_table(n=args.n, n_keys=args.keys,
                            n_lookups=args.lookups)
    return "Figure 16 (summary)\n" + ex.render_summary(rows)


def _maint(args) -> str:
    from repro.experiments.ascii_plot import render_series

    points = ex.maintenance_curves(n=args.n, epsilon=args.epsilon,
                                   n_keys=args.keys)
    table = format_table(
        ["refresh", "t", "n", "intersection", "rounds"],
        [(p.refresh, p.t, p.n_alive, p.intersection, p.refresh_rounds)
         for p in points])
    chart = render_series(
        {f"refresh {mode}": [(p.t, p.intersection) for p in points
                             if p.refresh == mode]
         for mode in ("off", "on")},
        x_label="sim time (s)", y_label="intersection")
    return (f"Maintenance degradation under churn (Section 6.1)\n"
            f"{table}\n\n{chart}")


def _quorum(args) -> str:
    from repro.experiments.ascii_plot import render_series

    points = ex.quorum_load_sweep(
        systems=tuple(args.systems),
        read_fractions=tuple(args.read_fractions),
        n=args.n, m=args.quorum_nodes, optimize=args.optimize,
        reps=args.reps, ops=args.lookups,
        rep_backend=args.rep_backend)
    table = format_table(
        ["system", "fr", "pred load", "bound", "sim load", "gap", "CI ok",
         "E|Qr|", "E|Qw|", "hit"],
        [(p.system, p.read_fraction, p.predicted_load, p.load_lower_bound,
          format_pm(p.simulated_load, p.simulated_load_hw), p.max_gap,
          ("yes" if p.within_ci else "NO") if p.feasible else "-",
          p.expected_read_size, p.expected_write_size, p.hit_ratio)
         for p in points])
    series = {}
    for system in dict.fromkeys(p.system for p in points):
        mine = [p for p in points if p.system == system and p.feasible]
        series[f"{system} predicted"] = [
            (p.read_fraction, p.predicted_load) for p in mine]
        series[f"{system} simulated"] = [
            (p.read_fraction, p.simulated_load) for p in mine]
    chart = render_series(series, x_label="read fraction",
                          y_label="system load")
    return (f"Quorum algebra ({args.optimize}-optimized strategy vs "
            f"simulation)\n{table}\n\n{chart}")


def _byz(args) -> str:
    from repro.experiments.ascii_plot import render_series

    points = ex.byzantine_sweep(
        n=args.n, fractions=tuple(args.byz_fractions), b=args.byz_b,
        epsilon=args.epsilon, n_keys=args.keys, n_lookups=args.lookups)
    table = format_table(
        ["mode", "f", "liars", "b", "q", "hit", "masked", "corrupt",
         "pred", "caught", "load", "pred load"],
        [(p.mode, p.byz_fraction, p.liars,
          "-" if p.b is None else p.b, p.quorum_size,
          p.hit_ratio, p.masked_lookups, p.corrupt_fraction,
          p.predicted_corrupt, p.caught, p.per_node_load,
          p.predicted_load) for p in points])
    chart = render_series(
        {mode: [(p.byz_fraction, p.corrupt_fraction) for p in points
                if p.mode == mode]
         for mode in ("undefended", "masked")},
        x_label="byzantine fraction", y_label="corrupt reads")
    return ("Byzantine sweep (masking quorums vs undefended RANDOM)\n"
            f"{table}\n\n{chart}")


def _kv(args) -> str:
    from repro.experiments.ascii_plot import render_series

    cells = ex.kv_sweep(
        backend=args.kv_backend, strategies=tuple(args.strategies),
        ttls=tuple(args.ttl), rates=tuple(args.rate), ops=args.ops,
        n=args.n, n_keys=args.keys, read_fraction=args.read_fraction,
        cas_fraction=args.cas_fraction, zipf_s=args.zipf,
        churn_rate=args.churn_rate, epsilon=args.epsilon,
        reps=args.reps, jobs=args.jobs, seed=args.seed)
    table = format_table(
        ["strategy", "ttl", "rate", "p50", "p99", "p999", "stale",
         "pred", "avail", "cas ok", "viol", "ok"],
        [(c.point.strategy, round(c.point.effective_ttl, 2), c.point.rate,
          c.p50, c.p99, c.p999,
          format_pm(c.stale, c.stale_hw), c.predicted, c.availability,
          c.cas_ok, c.violations,
          {True: "yes", False: "NO", None: "-"}[c.tracks_prediction])
         for c in cells])
    series = {}
    for rate in dict.fromkeys(c.point.rate for c in cells):
        mine = [c for c in cells if c.point.rate == rate]
        series[f"stale rate={rate:g}"] = [
            (c.point.effective_ttl, c.stale) for c in mine]
        if any(c.predicted == c.predicted for c in mine):
            series[f"analytic rate={rate:g}"] = [
                (c.point.effective_ttl, c.predicted) for c in mine
                if c.predicted == c.predicted]
    chart = render_series(series, x_label="lease TTL (s)",
                          y_label="stale-read fraction")
    dirty = sum(c.violations for c in cells)
    verdict = ("consistency checker: clean" if dirty == 0
               else f"consistency checker: {dirty} VIOLATIONS")
    return (f"KV serving benchmark ({args.kv_backend} backend, "
            f"{args.ops} ops/point, churn {args.churn_rate}/node-s)\n"
            f"{table}\n\n{chart}\n\n{verdict}")


FIGURES: Dict[str, Callable] = {
    "fig3": _fig3, "fig4": _fig4, "fig5": _fig5, "fig6": _fig6,
    "fig7": _fig7, "fig8": _fig8, "fig9": _fig9, "fig10": _fig10,
    "fig11": _fig11, "fig12": _fig12, "fig13": _fig13, "fig14": _fig14,
    "fig15": _fig15, "fig16": _fig16, "maint": _maint,
    "quorum": _quorum, "byz": _byz, "kv": _kv,
}

DESCRIPTIONS = {
    "fig3": "asymptotic strategy comparison table",
    "fig4": "random-walk partial cover time",
    "fig5": "flooding coverage vs TTL",
    "fig6": "strategy combination costs",
    "fig7": "intersection degradation under churn",
    "fig8": "RANDOM advertise cost / lookup hit ratio",
    "fig9": "RANDOM-OPT lookup",
    "fig10": "UNIQUE-PATH lookup (headline result)",
    "fig11": "FLOODING lookup",
    "fig12": "UNIQUE-PATH x UNIQUE-PATH",
    "fig13": "fast mobility without reply repair",
    "fig14": "reply-path repair + churn",
    "fig15": "lookup strategy trade-off curves",
    "fig16": "summary cost table",
    "maint": "maintenance degradation, refresh off vs adaptive",
    "quorum": "algebraic quorum systems: optimized strategy vs simulation",
    "byz": "byzantine sweep: masking quorums vs undefended RANDOM",
    "kv": "replicated kv serving benchmark: leases, latency, staleness",
}


def collect_report(results_dir: str) -> str:
    """Aggregate all recorded benchmark tables into one report."""
    from pathlib import Path

    directory = Path(results_dir)
    if not directory.is_dir():
        return (f"no results at {directory} — run "
                "`pytest benchmarks/ --benchmark-only` first")
    sections = []
    for path in sorted(directory.glob("*.txt")):
        sections.append(f"## {path.stem}\n\n{path.read_text().rstrip()}")
    if not sections:
        return f"no recorded results in {directory}"
    header = ("# Regenerated evaluation — Probabilistic Quorum Systems "
              "in Wireless Ad Hoc Networks\n")
    return header + "\n\n".join(sections) + "\n"


ENV_VARS = {
    "REPRO_TRACE": "stream simulation events as JSONL to this path",
    "REPRO_AUDIT": "accounting audit mode: strict (raise) or record",
    "REPRO_WATCH": "1 attaches every live invariant watcher; a comma "
                   "list (e.g. conservation,slo) selects a subset",
    "REPRO_SLO": "JSON SLO spec file evaluated live by the watchers",
    "REPRO_HIST_CAPACITY": "bound every metrics histogram to a reservoir "
                           "of this size (default: exact, unbounded)",
    "REPRO_PROFILE": "1 enables the phase profiler (table on stderr)",
    "REPRO_JOBS": "default parallel sweep workers",
    "REPRO_MANIFEST_DIR": "directory for per-sweep provenance manifests",
    "REPRO_NEIGHBOR_BACKEND": "neighbor engine: vectorized or reference",
    "REPRO_REP_BACKEND": "Monte-Carlo replication engine: batched or "
                         "sequential (statistic-identical; batched is "
                         "faster)",
    "REPRO_ACCESS_BACKEND": "access engine: batched (numpy kernels) or "
                            "sequential (statistic-identical; batched is "
                            "faster)",
}

OBS_COMMANDS = {
    "summarize": "per-access-kind counts and latency percentiles",
    "timeline": "ordered events of one access (--access N)",
    "diff": "compare two trace summaries",
    "watch": "replay a trace through the invariant watchers / SLO monitor",
}

FAULTS_COMMANDS = {
    "run": "run a workload under a seeded fault campaign",
    "list": "list builtin campaigns",
    "show": "print a campaign's JSON schema",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Probabilistic quorum systems "
                    "in wireless ad hoc networks' (Friedman, Kliot, Avin).",
        epilog="environment variables: " + "; ".join(
            f"{name} ({desc})" for name, desc in ENV_VARS.items()))
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available figures and obs tools")
    obs = sub.add_parser(
        "obs", help="offline trace analysis (summarize / timeline / diff)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize", help=OBS_COMMANDS["summarize"])
    summarize.add_argument("trace",
                           help="JSONL trace file (from --trace), or - "
                                "to read a piped trace from stdin")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as JSON instead of a table")
    timeline = obs_sub.add_parser("timeline", help=OBS_COMMANDS["timeline"])
    timeline.add_argument("trace", help="JSONL trace file, or - for stdin")
    timeline.add_argument("--access", type=int, required=True,
                          metavar="N", help="0-based access ordinal")
    diff = obs_sub.add_parser("diff", help=OBS_COMMANDS["diff"])
    diff.add_argument("trace_a", help="baseline JSONL trace")
    diff.add_argument("trace_b", help="candidate JSONL trace")
    diff.add_argument("--fail-on-change", action="store_true",
                      help="exit 1 when the summaries differ")
    watch = obs_sub.add_parser("watch", help=OBS_COMMANDS["watch"])
    watch.add_argument("trace", help="JSONL trace file, or - for stdin")
    watch.add_argument("--slo", metavar="FILE", default=None,
                       help="JSON SLO spec file to evaluate alongside the "
                            "invariant watchers")
    watch.add_argument("--n", type=int, default=None,
                       help="network size for the quorum-intersection "
                            "watcher (default: the trace's sibling "
                            "manifest, params.n)")
    watch.add_argument("--fail-on-violation", action="store_true",
                       help="exit 1 when any watcher reports a violation")
    watch.add_argument("--report", metavar="PATH", default=None,
                       help="write the machine-readable verdict report "
                            "here (default: <trace>.verdict.json; pass "
                            "'none' to skip)")
    watch.add_argument("--json", action="store_true",
                       help="print the verdict as JSON instead of text")
    faults = sub.add_parser(
        "faults", help="deterministic fault-injection campaigns")
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    frun = faults_sub.add_parser("run", help=FAULTS_COMMANDS["run"])
    frun.add_argument("--campaign", default="smoke",
                      help="builtin campaign name or JSON schema path")
    frun.add_argument("--n", type=int, default=100, help="network size")
    frun.add_argument("--seed", type=int, default=7, help="master seed")
    frun.add_argument("--keys", type=int, default=10,
                      help="number of advertisements")
    frun.add_argument("--lookups", type=int, default=60,
                      help="number of lookups spread over the campaign")
    frun.add_argument("--workload", choices=("location", "kv"),
                      default="location",
                      help="service under test: the location service "
                           "lookup workload (default) or the quorum "
                           "key-value store with timed leases and the "
                           "consistency-history checker")
    frun.add_argument("--kv-ops", type=int, default=200, metavar="OPS",
                      help="kv workload: operations spread over the "
                           "campaign (--workload kv)")
    frun.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                      help="kv workload: fixed lease TTL in seconds "
                           "(default: adaptive, derived from observed "
                           "churn)")
    frun.add_argument("--refresh", choices=("adaptive", "static", "off"),
                      default="adaptive", help="refresh daemon mode")
    frun.add_argument("--masking-b", type=int, default=None, metavar="B",
                      help="run the workload over b-masking quorums "
                           "(vote-filtered lookups sized for the "
                           "hypergeometric masking bound) — the defended "
                           "mode for campaigns with byzantine injections")
    frun.add_argument("--trace", metavar="PATH", default=None,
                      help="stream simulation events as JSONL to PATH")
    frun.add_argument("--watch", action="store_true",
                      help="run every live invariant watcher on the "
                           "campaign's trace stream")
    frun.add_argument("--slo", metavar="FILE", default=None,
                      help="JSON SLO spec file evaluated live")
    frun.add_argument("--fail-on-violation", action="store_true",
                      help="exit 1 when a watcher reports a violation")
    faults_sub.add_parser("list", help=FAULTS_COMMANDS["list"])
    fshow = faults_sub.add_parser("show", help=FAULTS_COMMANDS["show"])
    fshow.add_argument("campaign", help="builtin name or JSON schema path")
    report = sub.add_parser(
        "report", help="aggregate benchmarks/results/ into one document")
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--output", default=None,
                        help="write to a file instead of stdout")
    for name in FIGURES:
        p = sub.add_parser(name, help=DESCRIPTIONS[name])
        p.add_argument("--n", type=int, default=200,
                       help="network size (default 200; paper uses 800)")
        p.add_argument("--keys", type=int, default=10,
                       help="number of advertisements")
        p.add_argument("--lookups", type=int, default=60,
                       help="number of lookups")
        p.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default: REPRO_JOBS "
                            "env var, else 1)")
        p.add_argument("--walks", type=int, default=8,
                       help="walks per PCT point (fig4)")
        p.add_argument("--trials", type=int, default=400,
                       help="Monte-Carlo trials (fig7)")
        p.add_argument("--epsilon", type=float, default=0.05,
                       help="initial epsilon (fig7)")
        p.add_argument("--mobility", choices=("static", "waypoint"),
                       default="static")
        p.add_argument("--reps", type=int, default=1,
                       help="Monte-Carlo replicas per sweep point; with "
                            "reps > 1 tables report mean±CI (default 1, "
                            "which reproduces the historical single-run "
                            "numbers exactly)")
        p.add_argument("--ci", type=float, default=None, metavar="DELTA",
                       help="sequential stopping: add replicas (beyond "
                            "--reps, up to 8x) until the hit-ratio CI "
                            "half-width drops below DELTA")
        p.add_argument("--rep-backend", choices=("batched", "sequential"),
                       default=None,
                       help="replication engine (default: REPRO_REP_BACKEND "
                            "env var, else batched; both backends produce "
                            "identical statistics)")
        p.add_argument("--trace", metavar="PATH", default=None,
                       help="stream simulation events as JSONL to PATH "
                            "(with --jobs > 1, pool workers append to the "
                            "same file; writes are flock-serialized)")
        p.add_argument("--manifest", metavar="PATH", default=None,
                       help="write a provenance manifest to PATH (default: "
                            "<trace>.manifest.json when --trace is given)")
        p.add_argument("--watch", action="store_true",
                       help="attach the live invariant watchers to every "
                            "network the figure builds (REPRO_WATCH=1)")
        p.add_argument("--slo", metavar="FILE", default=None,
                       help="JSON SLO spec file evaluated live by the "
                            "watchers (REPRO_SLO)")
        p.add_argument("--fail-on-violation", action="store_true",
                       help="exit 1 when a watcher reports a violation")
        if name == "byz":
            p.add_argument("--byz-fractions", type=float, nargs="+",
                           metavar="F", default=[0.0, 0.02, 0.05, 0.1],
                           help="byzantine (lying replica) fractions to "
                                "sweep (0..1)")
            p.add_argument("--byz-b", type=int, default=None, metavar="B",
                           help="masking budget b for the defended legs "
                                "(default: ceil(max fraction * n))")
        if name == "kv":
            p.add_argument("--kv-backend", choices=("batched", "sequential"),
                           default="batched",
                           help="workload engine: batched numpy kernel "
                                "(~1M ops in seconds) or the live "
                                "QuorumKVStore service")
            p.add_argument("--strategies", nargs="+", metavar="NAME",
                           default=["random"],
                           help="sequential-backend access strategies "
                                "(random, masking:<b>); the batched "
                                "backend always models uniform quorums")
            p.add_argument("--ttl", type=float, nargs="+", metavar="SEC",
                           default=[5.0, 20.0, 80.0],
                           help="lease TTLs to sweep; 0 derives the TTL "
                                "from the churn rate via the lease "
                                "analysis")
            p.add_argument("--rate", type=float, nargs="+", metavar="OPS",
                           default=[2000.0],
                           help="open-loop arrival rates (ops per "
                                "simulated second)")
            p.add_argument("--ops", type=int, default=200_000,
                           help="operations per sweep point")
            p.add_argument("--read-fraction", type=float, default=0.92,
                           help="fraction of ops that are reads")
            p.add_argument("--cas-fraction", type=float, default=0.05,
                           help="fraction of the write share issued as "
                                "compare-and-swap")
            p.add_argument("--zipf", type=float, default=0.99,
                           help="Zipf key-popularity exponent")
            p.add_argument("--churn-rate", type=float, default=0.01,
                           help="node churn events per node-second")
            p.add_argument("--seed", type=int, default=7,
                           help="master seed")
        if name == "quorum":
            p.add_argument("--systems", nargs="+", metavar="NAME",
                           choices=sorted(BUILTIN_SYSTEMS),
                           default=["majority", "grid"],
                           help="algebraic systems to sweep "
                                f"({', '.join(sorted(BUILTIN_SYSTEMS))})")
            p.add_argument("--optimize", choices=OBJECTIVES, default="load",
                           help="strategy objective (default load)")
            p.add_argument("--read-fractions", type=float, nargs="+",
                           metavar="FR",
                           default=[0.0, 0.25, 0.5, 0.75, 1.0],
                           help="read fractions to sweep (0..1)")
            p.add_argument("--quorum-nodes", type=int, default=9,
                           metavar="M",
                           help="replicas in the algebraic system "
                                "(rounded to the system's natural shape)")
    return parser


def _run_obs_watch(args) -> int:
    from repro.obs.query import check_trace_schema
    from repro.obs.slo import load_slo_specs, verdict_path_for, write_verdict_report
    from repro.obs.watch import replay_trace, resolve_trace_n

    check_trace_schema(args.trace)
    n = args.n
    if n is None and args.trace != "-":
        n = resolve_trace_n(args.trace)
    slo_specs = None
    if args.slo:
        try:
            slo_specs = load_slo_specs(args.slo)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: bad SLO spec {args.slo}: {exc}", file=sys.stderr)
            return 2
    try:
        result = replay_trace(args.trace, n=n, slo_specs=slo_specs)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_jsonable(), indent=2, sort_keys=True))
    else:
        print(result.report())
    report_path = args.report
    if report_path != "none" and (report_path or args.trace != "-"):
        report_path = report_path or verdict_path_for(args.trace)
        write_verdict_report(report_path, result.to_jsonable())
        print(f"[verdict] report written to {report_path}", file=sys.stderr)
    if args.fail_on_violation and not result.clean:
        return 1
    return 0


def _run_obs(args) -> int:
    from repro.obs.query import (
        access_timeline,
        check_trace_schema,
        diff_summaries,
        render_diff,
        render_summary,
        render_timeline,
        summarize_trace,
        summary_to_jsonable,
    )

    if args.obs_command == "watch":
        return _run_obs_watch(args)
    if args.obs_command == "summarize":
        check_trace_schema(args.trace)
        summary = summarize_trace(args.trace)
        if args.json:
            print(json.dumps(summary_to_jsonable(summary), indent=2,
                             sort_keys=True))
        else:
            print(render_summary(summary))
        return 0
    if args.obs_command == "timeline":
        check_trace_schema(args.trace)
        try:
            events = access_timeline(args.trace, args.access)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_timeline(events, args.access))
        return 0
    # diff
    changes = diff_summaries(summarize_trace(args.trace_a),
                             summarize_trace(args.trace_b))
    print(render_diff(changes, args.trace_a, args.trace_b))
    if changes and args.fail_on_change:
        return 1
    return 0


def _run_faults(args) -> int:
    from repro.faults import BUILTIN_CAMPAIGNS, load_campaign, run_fault_campaign
    from repro.obs.audit import AuditError

    if args.faults_command == "list":
        print("builtin campaigns:")
        for name, campaign in sorted(BUILTIN_CAMPAIGNS.items()):
            print(f"  {name:12} {len(campaign.injections)} injections over "
                  f"{campaign.duration:.4g}s")
        return 0
    if args.faults_command == "show":
        try:
            campaign = load_campaign(args.campaign)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(campaign.to_dict(), indent=2))
        return 0
    # run
    if args.trace:
        os.environ["REPRO_TRACE"] = args.trace
    slo_specs = None
    if args.slo:
        from repro.obs.slo import load_slo_specs
        try:
            slo_specs = load_slo_specs(args.slo)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: bad SLO spec {args.slo}: {exc}", file=sys.stderr)
            return 2
    try:
        if args.workload == "kv":
            from repro.faults import run_kv_fault_campaign
            report = run_kv_fault_campaign(
                campaign=args.campaign, n=args.n, seed=args.seed,
                n_keys=args.keys, n_ops=args.kv_ops,
                lease_ttl=args.lease_ttl,
                watch=args.watch, slo_specs=slo_specs,
                masking_b=args.masking_b)
        else:
            report = run_fault_campaign(
                campaign=args.campaign, n=args.n, seed=args.seed,
                n_keys=args.keys, n_lookups=args.lookups,
                refresh=args.refresh,
                watch=args.watch, slo_specs=slo_specs,
                masking_b=args.masking_b)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except AuditError as exc:
        # REPRO_AUDIT=strict turns the first watcher violation into a
        # raise mid-campaign; surface it as the gate it is.
        print(f"watch violation (strict audit): {exc}", file=sys.stderr)
        return 1
    print("\n".join(report.lines()))
    if args.trace:
        print(f"[trace] events written to {args.trace}", file=sys.stderr)
    if (args.workload == "kv" and args.fail_on_violation
            and not report.clean):
        print("kv consistency checker reported violations", file=sys.stderr)
        return 1
    if report.watch is not None:
        from repro.obs.slo import verdict_path_for, write_verdict_report
        payload = dict(report.watch)
        payload["violations"] = [str(v) for v in report.watch_violations]
        payload["ok"] = report.watch_clean
        if args.trace:
            path = verdict_path_for(args.trace)
            write_verdict_report(path, payload)
            print(f"[verdict] report written to {path}", file=sys.stderr)
        if args.fail_on_violation and not report.watch_clean:
            return 1
    return 0


def _write_figure_manifest(args, wall_time_s: float) -> str:
    from repro.obs.manifest import collect_manifest

    path = args.manifest or (args.trace + ".manifest.json")
    params = {
        key: getattr(args, key)
        for key in ("n", "keys", "lookups", "walks", "trials", "epsilon",
                    "mobility", "reps", "ci", "rep_backend")
        if getattr(args, key, None) is not None
    }
    manifest = collect_manifest(
        command=args.command,
        params=params,
        seed=None,
        jobs=args.jobs,
        trace_path=getattr(args, "trace", None),
    )
    manifest.wall_time_s = round(wall_time_s, 6)
    manifest.write(path)
    return path


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available figures:")
        for name, desc in DESCRIPTIONS.items():
            print(f"  {name:7} {desc}")
        print("\ntrace analysis (python -m repro obs <cmd>):")
        for name, desc in OBS_COMMANDS.items():
            print(f"  {name:10} {desc}")
        print("\nfault campaigns (python -m repro faults <cmd>):")
        for name, desc in FAULTS_COMMANDS.items():
            print(f"  {name:10} {desc}")
        print("\nenvironment variables:")
        for name, desc in ENV_VARS.items():
            print(f"  {name:24} {desc}")
        print("\nexample: python -m repro fig10 --n 200 --lookups 100")
        return 0
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "faults":
        return _run_faults(args)
    if args.command == "report":
        text = collect_report(args.results_dir)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0
    if getattr(args, "trace", None):
        # Picked up by every SimNetwork built from here on — including
        # the ones constructed inside sweep pool workers, which inherit
        # the environment and append to the same flock-serialized file.
        os.environ["REPRO_TRACE"] = args.trace
    watching = getattr(args, "watch", False) or getattr(args, "slo", None)
    if watching:
        # Same mechanism: every network (pool workers included) attaches
        # the watchers from the environment.
        os.environ["REPRO_WATCH"] = "1"
        if getattr(args, "slo", None):
            os.environ["REPRO_SLO"] = args.slo
    started = time.perf_counter()
    print(FIGURES[args.command](args))
    wall = time.perf_counter() - started
    if getattr(args, "trace", None):
        print(f"\n[trace] events written to {args.trace}", file=sys.stderr)
    if getattr(args, "manifest", None) or getattr(args, "trace", None):
        path = _write_figure_manifest(args, wall)
        print(f"[manifest] run provenance written to {path}",
              file=sys.stderr)
    rc = 0
    if watching:
        rc = _report_live_watch(args)
    from repro.obs.profile import PROFILER
    if PROFILER.enabled:
        print(f"\n{PROFILER.render()}", file=sys.stderr)
    return rc


def _report_live_watch(args) -> int:
    """Post-run verdict for a figure run under ``--watch``/``--slo``.

    In-process violations land on the session ledger; with ``--trace``
    the recorded file is additionally replayed through fresh watchers —
    the cross-process collector for pool workers — and the verdict is
    written beside the manifest.
    """
    from repro.obs.watch import SESSION_VIOLATIONS

    violations = [str(v) for v in SESSION_VIOLATIONS]
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro.obs.slo import load_slo_specs, verdict_path_for, write_verdict_report
        from repro.obs.watch import replay_trace, resolve_trace_n

        slo_specs = (load_slo_specs(args.slo)
                     if getattr(args, "slo", None) else None)
        result = replay_trace(trace_path, n=resolve_trace_n(trace_path),
                              slo_specs=slo_specs)
        payload = result.to_jsonable()
        payload["live_violations"] = violations
        violations = violations + [v for v in payload["violations"]
                                   if v not in violations]
        path = verdict_path_for(trace_path)
        write_verdict_report(path, payload)
        print(f"[verdict] report written to {path}", file=sys.stderr)
    if violations:
        print(f"[watch] {len(violations)} violation(s):", file=sys.stderr)
        for line in violations:
            print(f"  {line}", file=sys.stderr)
        if getattr(args, "fail_on_violation", False):
            return 1
    else:
        print("[watch] clean", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
