"""Node environment for the packet-level stack.

Implements the :class:`~repro.phy.channel.NodeEnvironment` protocol over a
mobility manager plus a lazily refreshed spatial grid: the PHY channel asks
it for node positions, proximity sets, and liveness.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set

from repro.geometry.grid import SpatialGrid
from repro.geometry.space import Point
from repro.mobility.models import MobilityManager
from repro.sim.kernel import Simulator


class StackEnvironment:
    """Positions, proximity and liveness for the PHY layer."""

    def __init__(self, sim: Simulator, mobility: MobilityManager,
                 side: float, torus: bool = False,
                 grid_refresh: float = 0.5,
                 max_speed: float = 0.0) -> None:
        self.sim = sim
        self.mobility = mobility
        self.side = side
        self.torus = torus
        self.grid_refresh = grid_refresh
        self.max_speed = max_speed
        self._alive: Set[int] = set()
        self._grid: Optional[SpatialGrid] = None
        self._grid_time = -math.inf
        self._grid_cell: float = 0.0

    # -- liveness ----------------------------------------------------------

    def add_node(self, node_id: int, position: Optional[Point] = None) -> Point:
        pos = self.mobility.add_node(node_id, t=self.sim.now, position=position)
        self._alive.add(node_id)
        self._grid_time = -math.inf
        return pos

    def remove_node(self, node_id: int) -> None:
        self._alive.discard(node_id)
        self._grid_time = -math.inf

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._alive

    def alive_nodes(self) -> List[int]:
        return sorted(self._alive)

    # -- NodeEnvironment protocol ----------------------------------------------

    def position_of(self, node_id: int) -> Point:
        return self.mobility.position_at(node_id, self.sim.now)

    def distance(self, a: Point, b: Point) -> float:
        dx = abs(a[0] - b[0])
        dy = abs(a[1] - b[1])
        if self.torus:
            dx = min(dx, self.side - dx)
            dy = min(dy, self.side - dy)
        return math.hypot(dx, dy)

    def _ensure_grid(self, cell: float) -> SpatialGrid:
        stale = (self._grid is None
                 or self._grid_cell != cell
                 or self.sim.now - self._grid_time >= self.grid_refresh)
        if stale:
            grid = SpatialGrid(side=self.side, cell_size=cell, torus=self.torus)
            for node_id in self._alive:
                grid.insert(node_id, self.position_of(node_id))
            self._grid = grid
            self._grid_time = self.sim.now
            self._grid_cell = cell
        return self._grid

    def nodes_near(self, pos: Point, radius: float) -> List[int]:
        grid = self._ensure_grid(cell=max(radius, 1.0))
        margin = 2 * self.max_speed * self.grid_refresh
        candidates = grid.within(pos, radius + margin)
        return [
            nid for nid in candidates
            if nid in self._alive
            and self.distance(pos, self.position_of(nid)) <= radius
        ]
