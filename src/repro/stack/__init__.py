"""Packet-level network stack: PHY + MAC + AODV + flooding per node,
plus the facade that runs quorum strategies over it."""

from repro.stack.adapter import PacketQuorumNetwork
from repro.stack.environment import StackEnvironment
from repro.stack.network import AdhocStack, StackConfig
from repro.stack.node import StackNode

__all__ = [
    "PacketQuorumNetwork",
    "StackEnvironment",
    "AdhocStack",
    "StackConfig",
    "StackNode",
]
