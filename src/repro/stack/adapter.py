"""Run quorum strategies over the *packet-level* stack.

:class:`PacketQuorumNetwork` exposes (a supported subset of) the
:class:`~repro.simnet.network.SimNetwork` primitive interface on top of
:class:`~repro.stack.network.AdhocStack`, so the access strategies from
:mod:`repro.core` execute against real CSMA/CA frames, collisions,
retransmissions, and AODV control traffic instead of the protocol-model
abstraction.  This is the high-fidelity cross-validation path: the same
strategy code, two substrates.

Supported strategy primitives: neighbor tables (real HELLO beacons),
one-hop unicast with MAC success/failure resolution, one-hop broadcast,
routed unicast with end-to-end probe acknowledgment, and TTL flooding
with coverage collection.  ``discover_path`` (needed only by RANDOM-OPT's
en-route probing) is not available at packet level and raises.

Because the stack is event-driven while strategies are written
synchronously, each primitive *drives the simulator* until its outcome
resolves (or a timeout passes) — the same nested-run mechanism the
graph-level simulator uses for hop latency.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from repro.sim.rng import RngRegistry
from repro.simnet.network import FloodOutcome, RouteResult
from repro.stack.network import AdhocStack


@dataclass(frozen=True)
class _Hello:
    sender: int


@dataclass(frozen=True)
class _OneHop:
    token: int
    sender: int
    dst: int  # -1 => broadcast probe


@dataclass(frozen=True)
class _Probe:
    token: int
    origin: int


@dataclass(frozen=True)
class _ProbeAck:
    token: int


@dataclass(frozen=True)
class _FloodMark:
    token: int
    origin: int


@dataclass
class _AdapterConfig:
    """Mimics the bits of NetworkConfig that strategies read."""

    n: int
    avg_degree: float
    radio_range: float
    hop_latency: float = 0.0


class PacketQuorumNetwork:
    """SimNetwork-compatible facade over a packet-level stack."""

    def __init__(self, stack: AdhocStack,
                 hello_interval: float = 10.0,
                 unicast_timeout: float = 1.0,
                 route_timeout: float = 8.0,
                 flood_settle: float = 3.0,
                 warmup: float = 0.5) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.rngs = RngRegistry(stack.config.seed ^ 0x5EED)
        self.unicast_timeout = unicast_timeout
        self.route_timeout = route_timeout
        self.flood_settle = flood_settle
        self.counters: Dict[str, int] = {"network": 0, "routing": 0}
        self.config = _AdapterConfig(
            n=stack.config.n,
            avg_degree=stack.config.avg_degree,
            radio_range=stack.phy_params.ideal_range_m,
        )
        self._tokens = itertools.count(1)
        self._neighbor_tables: Dict[int, Set[int]] = {
            nid: set() for nid in stack.nodes
        }
        self._acks_seen: Set[int] = set()
        self._flood_seen: Dict[int, Dict[int, int]] = {}  # token -> node -> hop

        for node in stack.nodes.values():
            node.raw_handler = (
                lambda payload, frm, nid=node.node_id:
                self._on_raw(nid, payload, frm))
            node.app_handler = self._wrap_app(node.app_handler, node.node_id)

        # HELLO beaconing (the heartbeat of Section 2.3).
        self._hello_interval = hello_interval
        for node in stack.nodes.values():
            self.sim.schedule(
                self.rngs.stream("hello").uniform(0, 1.0),
                self._hello_loop, node.node_id)
        self.stack.run(warmup)

    # -- beaconing / raw frames ------------------------------------------------

    def _hello_loop(self, node_id: int) -> None:
        node = self.stack.nodes.get(node_id)
        if node is None or not node.alive:
            return
        node.mac.send_broadcast(_Hello(sender=node_id), payload_bytes=16)
        self.sim.schedule(self._hello_interval, self._hello_loop, node_id)

    def _on_raw(self, receiver: int, payload: Any, from_node: int) -> None:
        if isinstance(payload, _Hello):
            self._neighbor_tables.setdefault(receiver, set()).add(
                payload.sender)

    def _wrap_app(self, inner: Callable, node_id: int) -> Callable:
        def handler(payload: Any, src: int) -> None:
            if isinstance(payload, _Probe):
                self._acks_seen.add(-payload.token)  # arrival marker
                node = self.stack.nodes[node_id]
                node.aodv.send_data(payload.origin,
                                    _ProbeAck(token=payload.token))
                return
            if isinstance(payload, _ProbeAck):
                self._acks_seen.add(payload.token)
                return
            if isinstance(payload, _FloodMark):
                self._flood_seen.setdefault(payload.token, {})
                if node_id not in self._flood_seen[payload.token]:
                    self._flood_seen[payload.token][node_id] = -1
                return
            if inner is not None:
                inner(payload, src)
        return handler

    # -- liveness ----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def advance(self, dt: float) -> None:
        self.stack.run(dt)

    def run_until(self, t: float) -> None:
        if t > self.sim.now:
            self.stack.run(t - self.sim.now)

    def alive_nodes(self) -> List[int]:
        return self.stack.env.alive_nodes()

    @property
    def n_alive(self) -> int:
        return len(self.stack.env.alive_nodes())

    def is_alive(self, node_id: int) -> bool:
        return self.stack.env.is_alive(node_id)

    def fail_node(self, node_id: int) -> None:
        self.stack.crash(node_id)

    def random_alive_node(self, rng: random.Random) -> int:
        return rng.choice(self.alive_nodes())

    # -- neighborhood ----------------------------------------------------------

    def position(self, node_id: int):
        return self.stack.env.position_of(node_id)

    def in_range(self, a: int, b: int) -> bool:
        return (self.stack.env.distance(self.position(a), self.position(b))
                <= self.config.radio_range)

    def true_neighbors(self, node_id: int) -> List[int]:
        pos = self.position(node_id)
        return [v for v in self.stack.env.nodes_near(pos,
                                                     self.config.radio_range)
                if v != node_id]

    def known_neighbors(self, node_id: int) -> List[int]:
        """Neighbor table from HELLO beacons.

        We probe reality lazily: the HELLO traffic keeps the channel
        realistic, while the table reflects the last beacon round (ground
        truth at beacon time, stale between rounds for mobile stacks).
        """
        table = self._neighbor_tables.get(node_id)
        if table:
            return sorted(table)
        return self.true_neighbors(node_id)

    def refresh_neighbor_tables(self) -> None:
        """Snapshot tables (called by tests to model a beacon round)."""
        self._neighbor_tables = {
            nid: set(self.true_neighbors(nid))
            for nid in self.stack.nodes
            if self.stack.env.is_alive(nid)
        }

    # -- primitives --------------------------------------------------------------

    def one_hop_unicast(self, src: int, dst: int) -> bool:
        """A real MAC unicast: CSMA/CA, ACK, up to 7 retries."""
        if not self.is_alive(src) or src == dst:
            return False
        self.counters["network"] += 1
        outcome: List[Optional[bool]] = [None]
        node = self.stack.nodes[src]
        node.mac.send_unicast(
            dst, _OneHop(token=next(self._tokens), sender=src, dst=dst),
            on_success=lambda: outcome.__setitem__(0, True),
            on_failure=lambda: outcome.__setitem__(0, False))
        deadline = self.sim.now + self.unicast_timeout
        while outcome[0] is None and self.sim.now < deadline:
            if not self.sim.step():
                break
        return bool(outcome[0])

    def one_hop_broadcast(self, src: int) -> List[int]:
        """A real MAC broadcast; returns ground-truth receivers in range
        (broadcasts carry no acks, so the sender cannot know — the caller
        is the omniscient experiment harness, as in the paper's metric)."""
        if not self.is_alive(src):
            return []
        self.counters["network"] += 1
        node = self.stack.nodes[src]
        node.mac.send_broadcast(_OneHop(token=next(self._tokens),
                                        sender=src, dst=-1))
        self.stack.run(0.05)
        return [v for v in self.true_neighbors(src) if self.is_alive(v)]

    def route(self, src: int, dst: int) -> RouteResult:
        """AODV-routed send, confirmed by an end-to-end probe ack."""
        if not self.is_alive(src):
            return RouteResult(success=False)
        if src == dst:
            return RouteResult(success=True, path=[src])
        token = next(self._tokens)
        data_before = self._total_data_transmissions()
        control_before = self.stack.total_control_messages()
        self.stack.nodes[src].aodv.send_data(dst, _Probe(token=token,
                                                         origin=src))
        deadline = self.sim.now + self.route_timeout
        while token not in self._acks_seen and self.sim.now < deadline:
            if not self.sim.step():
                break
        arrived = -token in self._acks_seen
        acked = token in self._acks_seen
        control = self.stack.total_control_messages() - control_before
        data_hops = self._total_data_transmissions() - data_before
        self.counters["network"] += data_hops
        self.counters["routing"] += control
        return RouteResult(success=arrived or acked,
                           path=[src, dst] if (arrived or acked) else [],
                           data_messages=data_hops,
                           routing_messages=control)

    def _total_data_transmissions(self) -> int:
        """Network-layer data transmissions (originations + forwards)."""
        return sum(node.aodv.data_originated + node.aodv.data_forwarded
                   for node in self.stack.nodes.values())

    def scoped_route(self, src: int, dst: int, max_hops: int) -> RouteResult:
        """Packet level has no TTL-scoped discovery; fall back to a full
        route (conservative for the repair cost accounting)."""
        return self.route(src, dst)

    def discover_path(self, src: int, dst: int):
        raise NotImplementedError(
            "en-route probing (RANDOM-OPT) requires per-hop visibility; "
            "use the graph-level simulator for that strategy")

    def flood(self, origin: int, ttl: int) -> FloodOutcome:
        """A real TTL-scoped flood; coverage collected at the harness."""
        if ttl < 1:
            raise ValueError("flood TTL must be >= 1")
        token = next(self._tokens)
        frames_before = self.stack.total_mac_frames()
        self._flood_seen[token] = {origin: 0}
        self.stack.nodes[origin].flood(_FloodMark(token=token,
                                                  origin=origin), ttl=ttl)
        self.stack.run(self.flood_settle)
        covered_raw = self._flood_seen.pop(token, {origin: 0})
        messages = self.stack.total_mac_frames() - frames_before
        self.counters["network"] += messages
        # Rebuild hop counts / parent tree over the ground-truth topology
        # (BFS restricted to actually-covered nodes).
        from collections import deque
        covered = {origin: 0}
        parent = {origin: origin}
        queue = deque([origin])
        while queue:
            u = queue.popleft()
            for v in self.true_neighbors(u):
                if v in covered_raw and v not in covered:
                    covered[v] = covered[u] + 1
                    parent[v] = u
                    queue.append(v)
        return FloodOutcome(origin=origin, ttl=ttl, covered=covered,
                            parent=parent, messages=messages)

    def invalidate_routes(self) -> None:
        """Route caches live inside AODV; nothing to do at the facade."""
