"""Packet-level ad hoc network: PHY + MAC + AODV + flooding, end to end.

This is the high-fidelity counterpart of :mod:`repro.simnet` — it runs the
full stack (SINR or protocol-model radio, CSMA/CA MAC with acked unicast
and retry/backoff, AODV routing, TTL flooding) for each node.  It is used
to validate the graph-level simulator on small networks and to exercise
the substrate implementations under collisions and contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.geometry.space import area_side_for_density
from repro.mac.csma import MacParams
from repro.mobility.models import (
    MobilityManager,
    RandomWaypoint,
    StaticPlacement,
)
from repro.net.aodv import AodvParams
from repro.phy.channel import ProtocolChannel, SINRChannel
from repro.phy.params import PhyParams
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.stack.environment import StackEnvironment
from repro.stack.node import StackNode


@dataclass
class StackConfig:
    """Deployment parameters for the packet-level network."""

    n: int = 20
    avg_degree: float = 10.0
    seed: int = 0
    mobility: str = "static"  # "static" | "waypoint"
    min_speed: float = 0.5
    max_speed: float = 2.0
    pause_time: float = 30.0
    channel: str = "sinr"  # "sinr" | "protocol"
    torus: bool = False

    @property
    def side(self) -> float:
        return area_side_for_density(self.n, PhyParams().ideal_range_m,
                                     self.avg_degree)


class AdhocStack:
    """A deployed packet-level network of :class:`StackNode` instances."""

    def __init__(self, config: StackConfig,
                 phy_params: Optional[PhyParams] = None,
                 mac_params: Optional[MacParams] = None,
                 aodv_params: Optional[AodvParams] = None) -> None:
        self.config = config
        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)
        self.phy_params = phy_params or PhyParams()
        side = config.side

        if config.mobility == "waypoint":
            model = RandomWaypoint(side=side, min_speed=config.min_speed,
                                   max_speed=config.max_speed,
                                   pause_time=config.pause_time,
                                   rng=self.rngs.stream("mobility"))
            max_speed = config.max_speed
        else:
            model = StaticPlacement(side, rng=self.rngs.stream("placement"))
            max_speed = 0.0
        self.env = StackEnvironment(
            self.sim, MobilityManager(model), side=side, torus=config.torus,
            max_speed=max_speed,
        )

        if config.channel == "sinr":
            self.channel = SINRChannel(self.sim, self.env,
                                       params=self.phy_params)
        elif config.channel == "protocol":
            self.channel = ProtocolChannel(
                self.sim, self.env,
                range_m=self.phy_params.ideal_range_m,
                params=self.phy_params)
        else:
            raise ValueError(f"unknown channel model {config.channel!r}")

        self.nodes: Dict[int, StackNode] = {}
        self.received: List[Tuple[int, Any, int]] = []  # (dst, payload, src)
        for i in range(config.n):
            self._add_node(i, mac_params, aodv_params)

    def _add_node(self, node_id: int,
                  mac_params: Optional[MacParams],
                  aodv_params: Optional[AodvParams]) -> StackNode:
        self.env.add_node(node_id)
        node = StackNode(
            self.sim, self.channel, node_id,
            mac_params=mac_params, aodv_params=aodv_params,
            rng=self.rngs.stream(f"node:{node_id}"),
            app_handler=lambda payload, src, nid=node_id:
                self.received.append((nid, payload, src)),
        )
        self.nodes[node_id] = node
        return node

    # -- control -----------------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance the packet-level simulation by ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)

    def crash(self, node_id: int) -> None:
        """Crash a node mid-run."""
        self.nodes[node_id].shutdown()
        self.env.remove_node(node_id)

    def send(self, src: int, dst: int, payload: Any) -> None:
        self.nodes[src].send(dst, payload)

    def flood(self, src: int, payload: Any, ttl: int) -> None:
        self.nodes[src].flood(payload, ttl)

    # -- metrics ----------------------------------------------------------------

    def delivered_to(self, node_id: int) -> List[Tuple[Any, int]]:
        """(payload, src) pairs delivered to ``node_id``'s application."""
        return [(p, s) for (d, p, s) in self.received if d == node_id]

    def total_control_messages(self) -> int:
        return sum(node.aodv.control_messages() for node in self.nodes.values())

    def total_mac_frames(self) -> int:
        return self.channel.frames_sent
