"""A full protocol stack instance for one node: MAC + AODV + flooding + app."""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.mac.csma import MacLayer, MacParams
from repro.net.aodv import AodvAgent, AodvParams
from repro.net.flooding import FloodingAgent
from repro.net.packet import (
    DataPacket,
    FloodPacket,
    RouteError,
    RouteReply,
    RouteRequest,
)
from repro.sim.kernel import Simulator

AppHandler = Callable[[Any, int], None]  # (payload, src_node)


class StackNode:
    """One node's networking stack.

    Dispatches MAC deliveries to AODV (routing control + routed data) and
    the flooding agent; routed/flooded application payloads reach the
    ``app_handler``.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Any,
        node_id: int,
        mac_params: Optional[MacParams] = None,
        aodv_params: Optional[AodvParams] = None,
        rng: Optional[random.Random] = None,
        app_handler: Optional[AppHandler] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.app_handler = app_handler
        rng = rng or random.Random()
        self.mac = MacLayer(sim, channel, node_id, deliver=self._dispatch,
                            params=mac_params, rng=rng)
        self.aodv = AodvAgent(sim, self.mac, node_id,
                              deliver=self._deliver_routed,
                              params=aodv_params, rng=rng)
        self.flooder = FloodingAgent(sim, self.mac, node_id,
                                     deliver=self._deliver_flooded, rng=rng)
        self.alive = True
        #: Hook for payloads that are neither routing control nor routed
        #: data nor floods (e.g. HELLO beacons, one-hop protocol frames).
        #: Signature: (payload, from_node) -> None.
        self.raw_handler: Optional[Callable[[Any, int], None]] = None

    # -- dispatch ----------------------------------------------------------

    _ROUTING_TYPES = (DataPacket, RouteRequest, RouteReply, RouteError)

    def _dispatch(self, payload: Any, from_node: int) -> None:
        if not self.alive:
            return
        if isinstance(payload, FloodPacket):
            self.flooder.on_payload(payload, from_node)
        elif isinstance(payload, self._ROUTING_TYPES):
            self.aodv.on_payload(payload, from_node)
        elif self.raw_handler is not None:
            self.raw_handler(payload, from_node)

    def _deliver_routed(self, payload: Any, packet: DataPacket) -> None:
        if self.app_handler is not None:
            self.app_handler(payload, packet.src)

    def _deliver_flooded(self, payload: Any, packet: FloodPacket) -> None:
        if self.app_handler is not None:
            self.app_handler(payload, packet.origin)

    # -- sending ------------------------------------------------------------

    def send(self, dst: int, payload: Any) -> None:
        """Send an application payload via AODV routing."""
        self.aodv.send_data(dst, payload)

    def flood(self, payload: Any, ttl: int) -> None:
        """Start a TTL-scoped flood of an application payload."""
        self.flooder.originate(payload, ttl)

    def shutdown(self) -> None:
        """Crash the node: silence its MAC and drop its state."""
        self.alive = False
        self.mac.shutdown()
