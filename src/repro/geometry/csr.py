"""Packed CSR topology snapshots for the batched access engine.

The access engine (:mod:`repro.core.access_engine`) advances floods,
BFS trees, and walker batches with numpy passes over the adjacency.  A
:class:`CsrSnapshot` is the packed ``indptr``/``indices`` form of one
frozen view of the network graph:

* the **true** view — ground-truth neighbor tables (alive nodes within
  radio range, rows sorted by id), built from
  ``SimNetwork._neighbor_tables``;
* the **known** view — the last-heartbeat neighbor snapshot each node
  routes on, preserving the *stored row order* (sorted after a
  heartbeat, append-order after a join) because walker shuffles consume
  the list in that order.

Snapshots are immutable; staleness is handled by the cache, never by
mutating a snapshot.  :class:`CsrCache` reuses the
``TopologyRouteOracle`` staleness-guard pattern
(:mod:`repro.simnet.replication`): every lookup re-keys on the
network's ``topology_version`` (true view) or
``(topology_version, known_version)`` (known view) and rebuilds on any
mismatch, so a stale topology version can never be served.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class CsrSnapshot:
    """One frozen adjacency in packed CSR form.

    ``node_ids`` is the sorted id array defining the row space;
    ``indices`` stores neighbor *ids* (not row indexes) concatenated
    row by row, with ``indptr[r]:indptr[r+1]`` delimiting row ``r``.
    ``neighbor_rows`` lazily translates ``indices`` into row indexes
    for gather kernels; it requires every stored neighbor to be a row
    (guaranteed for the true view, and for known views built with
    ``prune_missing=True``).
    """

    __slots__ = ("key", "node_ids", "indptr", "indices", "_rows")

    def __init__(self, key, node_ids: np.ndarray, indptr: np.ndarray,
                 indices: np.ndarray) -> None:
        self.key = key
        self.node_ids = node_ids
        self.indptr = indptr
        self.indices = indices
        self._rows: Optional[np.ndarray] = None

    @property
    def n(self) -> int:
        return len(self.node_ids)

    @property
    def n_edges(self) -> int:
        """Directed edge slots (each undirected link counts twice)."""
        return len(self.indices)

    @property
    def neighbor_rows(self) -> np.ndarray:
        """``indices`` as row indexes into ``node_ids`` (lazy, cached)."""
        if self._rows is None:
            rows = np.searchsorted(self.node_ids, self.indices)
            if len(rows) and (rows >= len(self.node_ids)).any():
                raise ValueError("snapshot stores neighbors outside its "
                                 "row space; build with prune_missing=True")
            if len(rows) and (self.node_ids[rows] != self.indices).any():
                raise ValueError("snapshot stores neighbors outside its "
                                 "row space; build with prune_missing=True")
            self._rows = rows
        return self._rows

    def row_of(self, node_id: int) -> Optional[int]:
        """Row index of ``node_id``, or None if absent."""
        r = int(np.searchsorted(self.node_ids, node_id))
        if r < len(self.node_ids) and int(self.node_ids[r]) == node_id:
            return r
        return None

    def rows_of(self, ids: np.ndarray) -> np.ndarray:
        """Row indexes for ids known to be present (true-view frontier)."""
        return np.searchsorted(self.node_ids, ids)

    def degree(self, node_id: int) -> int:
        r = self.row_of(node_id)
        if r is None:
            return 0
        return int(self.indptr[r + 1] - self.indptr[r])

    def degrees(self) -> np.ndarray:
        return self.indptr[1:] - self.indptr[:-1]

    def neighbors(self, node_id: int) -> List[int]:
        """Neighbor ids of one node in stored row order (a fresh list)."""
        r = self.row_of(node_id)
        if r is None:
            return []
        return self.indices[self.indptr[r]:self.indptr[r + 1]].tolist()


def _pack(key, tables: Dict[int, List[int]],
          prune_missing: bool = False) -> CsrSnapshot:
    node_ids = np.array(sorted(tables), dtype=np.int64)
    id_set = set(tables) if prune_missing else None
    indptr = np.zeros(len(node_ids) + 1, dtype=np.int64)
    chunks: List[List[int]] = []
    for r, node in enumerate(node_ids.tolist()):
        row = tables[node]
        if id_set is not None:
            row = [v for v in row if v in id_set]
        chunks.append(row)
        indptr[r + 1] = indptr[r] + len(row)
    if chunks:
        indices = np.array([v for row in chunks for v in row],
                           dtype=np.int64)
    else:
        indices = np.zeros(0, dtype=np.int64)
    return CsrSnapshot(key=key, node_ids=node_ids, indptr=indptr,
                       indices=indices)


def build_true_csr(net) -> CsrSnapshot:
    """True-view snapshot at the network's current topology version.

    Requires the vectorized neighbor backend (the packed tables are the
    kernel's own adjacency); rows come out sorted because the tables
    keep each neighbor list sorted.
    """
    if net.config.neighbor_backend != "vectorized":
        raise ValueError("true CSR snapshots require the vectorized "
                         "neighbor backend")
    version = net.topology_version
    tables = net._neighbor_tables()
    snap = _pack(version, tables)
    if net.topology_version != version:  # pragma: no cover - defensive
        raise RuntimeError("topology mutated during CSR build")
    return snap


def build_known_csr(net, prune_missing: bool = True) -> CsrSnapshot:
    """Known-view (heartbeat) snapshot, preserving stored row order.

    Known tables may reference departed nodes until the next heartbeat;
    ``prune_missing`` drops entries that are not themselves rows so
    gather kernels can index the row space (the walk kernels model the
    *reachable* stale view).  ``prune_missing=False`` keeps the raw
    stored lists, ids and all.
    """
    key = (net.topology_version, net.known_version)
    return _pack(key, dict(net._known_neighbors),
                 prune_missing=prune_missing)


class CsrCache:
    """Staleness-guarded snapshot cache, one per view per network.

    The guard mirrors :class:`~repro.simnet.replication.TopologyRouteOracle`:
    a snapshot is only served while its key still equals the network's
    *current* version counters — any topology or heartbeat mutation
    changes the key, forcing a rebuild.  ``hits``/``misses`` expose the
    guard's behaviour to tests.
    """

    def __init__(self) -> None:
        self._true: Optional[CsrSnapshot] = None
        self._known: Optional[CsrSnapshot] = None
        self.hits = 0
        self.misses = 0

    def true_snapshot(self, net) -> CsrSnapshot:
        version = net.topology_version
        snap = self._true
        if snap is not None and snap.key == version:
            self.hits += 1
            return snap
        self.misses += 1
        snap = build_true_csr(net)
        self._true = snap
        return snap

    def known_snapshot(self, net) -> CsrSnapshot:
        key: Tuple[int, int] = (net.topology_version, net.known_version)
        snap = self._known
        if snap is not None and snap.key == key:
            self.hits += 1
            return snap
        self.misses += 1
        snap = build_known_csr(net)
        self._known = snap
        return snap
