"""Uniform spatial hash grid for O(1) range queries.

Every range query in the simulator (neighbor discovery, PHY reception sets,
interference accumulation) goes through this index.  Cell size equals the
query radius, so a radius query inspects at most the 3x3 surrounding cells
(wrapping on a torus).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Set, Tuple

from repro.geometry.space import Point


class SpatialGrid:
    """Bucketed point index keyed by integer node ids."""

    def __init__(self, side: float, cell_size: float, torus: bool = False) -> None:
        if side <= 0 or cell_size <= 0:
            raise ValueError("side and cell_size must be positive")
        self.side = side
        self.torus = torus
        self.cells_per_axis = max(1, int(math.floor(side / cell_size)))
        self.cell_size = side / self.cells_per_axis
        self._cells: Dict[Tuple[int, int], Set[int]] = {}
        self._positions: Dict[int, Point] = {}

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._positions

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        cx = int(p[0] / self.cell_size)
        cy = int(p[1] / self.cell_size)
        # Points exactly on the far boundary fall into the last cell.
        cx = min(cx, self.cells_per_axis - 1)
        cy = min(cy, self.cells_per_axis - 1)
        return (cx, cy)

    def insert(self, node_id: int, p: Point) -> None:
        """Insert or move a node to position ``p``."""
        if node_id in self._positions:
            self.remove(node_id)
        self._positions[node_id] = p
        self._cells.setdefault(self._cell_of(p), set()).add(node_id)

    def remove(self, node_id: int) -> None:
        p = self._positions.pop(node_id, None)
        if p is None:
            return
        cell = self._cell_of(p)
        bucket = self._cells.get(cell)
        if bucket is not None:
            bucket.discard(node_id)
            if not bucket:
                del self._cells[cell]

    def position(self, node_id: int) -> Point:
        return self._positions[node_id]

    def ids(self) -> Iterable[int]:
        return self._positions.keys()

    def _dist_sq(self, a: Point, b: Point) -> float:
        dx = abs(a[0] - b[0])
        dy = abs(a[1] - b[1])
        if self.torus:
            dx = min(dx, self.side - dx)
            dy = min(dy, self.side - dy)
        return dx * dx + dy * dy

    def within(self, center: Point, radius: float) -> List[int]:
        """Node ids within ``radius`` of ``center`` (inclusive)."""
        if radius <= 0:
            return []
        r_sq = radius * radius
        reach = int(math.ceil(radius / self.cell_size))
        cx, cy = self._cell_of(center)
        found: List[int] = []
        axis = self.cells_per_axis
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                if self.torus:
                    cell = ((cx + dx) % axis, (cy + dy) % axis)
                else:
                    cell = (cx + dx, cy + dy)
                    if not (0 <= cell[0] < axis and 0 <= cell[1] < axis):
                        continue
                bucket = self._cells.get(cell)
                if not bucket:
                    continue
                for nid in bucket:
                    if self._dist_sq(center, self._positions[nid]) <= r_sq:
                        found.append(nid)
        return found

    def neighbors_of(self, node_id: int, radius: float) -> List[int]:
        """Ids within ``radius`` of node ``node_id``, excluding itself."""
        center = self._positions[node_id]
        return [nid for nid in self.within(center, radius) if nid != node_id]
