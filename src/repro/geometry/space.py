"""2-D deployment areas and distance metrics.

The paper's theory lives on the unit torus (to avoid boundary effects in the
random-geometric-graph analysis) while its simulations live on a flat square
plane scaled so that ``area = pi * r^2 * n / d_avg`` (Section 2.4).  Both
metrics are provided here behind one interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

Point = Tuple[float, float]


@dataclass(frozen=True)
class PlaneMetric:
    """Euclidean distance on a bounded square ``[0, side] x [0, side]``."""

    side: float

    def distance(self, a: Point, b: Point) -> float:
        dx = a[0] - b[0]
        dy = a[1] - b[1]
        return math.hypot(dx, dy)

    def distance_sq(self, a: Point, b: Point) -> float:
        dx = a[0] - b[0]
        dy = a[1] - b[1]
        return dx * dx + dy * dy

    def wrap(self, p: Point) -> Point:
        """Clamp a point into the area (plane: clip to bounds)."""
        return (min(max(p[0], 0.0), self.side), min(max(p[1], 0.0), self.side))

    @property
    def is_torus(self) -> bool:
        return False

    @property
    def area(self) -> float:
        return self.side * self.side


@dataclass(frozen=True)
class TorusMetric:
    """Wrap-around distance on a square torus of given side length."""

    side: float

    def distance(self, a: Point, b: Point) -> float:
        return math.sqrt(self.distance_sq(a, b))

    def distance_sq(self, a: Point, b: Point) -> float:
        dx = abs(a[0] - b[0])
        dy = abs(a[1] - b[1])
        dx = min(dx, self.side - dx)
        dy = min(dy, self.side - dy)
        return dx * dx + dy * dy

    def wrap(self, p: Point) -> Point:
        return (p[0] % self.side, p[1] % self.side)

    @property
    def is_torus(self) -> bool:
        return True

    @property
    def area(self) -> float:
        return self.side * self.side


def area_side_for_density(n: int, radio_range: float, avg_degree: float) -> float:
    """Side length of the square so the mean node degree is ``avg_degree``.

    From Section 2.4: ``a^2 = pi * r^2 * n / d_avg``.  A node's expected
    neighbor count under uniform placement is ``(n-1) * pi r^2 / a^2``; the
    paper uses the ``n`` approximation, which we follow for comparability.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if radio_range <= 0:
        raise ValueError("radio_range must be positive")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    return math.sqrt(math.pi * radio_range * radio_range * n / avg_degree)


def critical_range_for_connectivity(n: int, constant: float = 1.0) -> float:
    """Gupta–Kumar critical transmission range on the unit square.

    ``r = sqrt(C * ln(n) / (pi * n))``; connectivity w.h.p. requires C > 1
    (Section 6.1).
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    return math.sqrt(constant * math.log(n) / (math.pi * n))


def expected_degree(n: int, radio_range: float, side: float) -> float:
    """Expected number of neighbors for uniform placement (paper's formula)."""
    return math.pi * radio_range * radio_range * n / (side * side)
