"""Vectorized position/neighbor engine (numpy backend).

The graph-level simulator answers the same query millions of times per
sweep: *which alive nodes are within radio range of node v right now?*
The pure-Python :class:`~repro.geometry.grid.SpatialGrid` answers it one
node at a time; this module instead keeps every alive node's position in
one contiguous ``(n, 2)`` float64 array and computes the **entire**
neighbor table in a single batched cell-binning pass:

1. bin every node into a uniform grid cell (cell size = query radius, the
   same scheme as ``SpatialGrid``);
2. for each of the 3x3 cell offsets, pair every node with the nodes in the
   offset cell via ``argsort`` + ``searchsorted`` range arithmetic — no
   Python-level loop over nodes;
3. filter candidate pairs by exact distance (``np.hypot``, bit-identical
   to the ``math.hypot`` predicate of the reference path) and bucket the
   survivors into per-node sorted id lists.

Both the plane and torus metrics are supported.  Membership updates
(``insert``/``remove`` for churn, ``set_positions`` for a mobility tick)
are incremental — no full rebuild of the structure is required.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.space import Point
from repro.obs.profile import profiled


def _cell_offsets(axis: int, torus: bool) -> Iterable[Tuple[int, int]]:
    raw = [(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)]
    if torus and axis < 3:
        # Wrapped offsets alias each other on tiny grids; deduplicate so
        # a pair of nodes is considered exactly once.
        return sorted({(dx % axis, dy % axis) for dx, dy in raw})
    return raw


@profiled("kernel.batch_pass_replicas")
def batched_neighbor_tables(
    ids: Sequence[int],
    positions,
    side: float,
    radius: float,
    torus: bool = False,
) -> List[Dict[int, List[int]]]:
    """Neighbor tables for R replica deployments in ONE cell-binning pass.

    ``positions`` has shape ``(R, N, 2)`` (or ``(N, 2)`` for a single
    replica); row ``i`` of every replica holds the position of node
    ``ids[i]``.  Returns one ``{node_id: sorted neighbor ids}`` dict per
    replica, each identical to what :meth:`NeighborKernel.neighbor_tables`
    computes for that replica alone — the same binning, the same exact
    ``np.hypot`` distance predicate — but amortizing the argsort /
    searchsorted machinery over the whole replica batch.

    Replicas never mix: each node is binned into a *composite* cell index
    ``replica * cells + cell``, so the 3x3 candidate-pair expansion can
    only pair rows of the same replica.
    """
    pos = np.asarray(positions, dtype=np.float64)
    if pos.ndim == 2:
        pos = pos[np.newaxis]
    if pos.ndim != 3 or pos.shape[2] != 2:
        raise ValueError(f"positions must be (R, N, 2); got {pos.shape}")
    reps, n, _ = pos.shape
    if len(ids) != n:
        raise ValueError(f"{len(ids)} ids for {n} position rows")
    if side <= 0 or radius <= 0:
        raise ValueError("side and radius must be positive")
    ids_arr = np.asarray(ids, dtype=np.int64)
    axis = max(1, int(math.floor(side / radius)))
    cell_size = side / axis
    if radius > cell_size * (1 + 1e-12):
        raise ValueError(
            f"query radius {radius} exceeds cell size {cell_size}")
    if n == 0:
        return [dict() for _ in range(reps)]
    if n == 1:
        return [{int(ids_arr[0]): []} for _ in range(reps)]

    cells = axis * axis
    flat = pos.reshape(reps * n, 2)
    total_rows = reps * n
    cx = np.minimum((flat[:, 0] / cell_size).astype(np.int64), axis - 1)
    cy = np.minimum((flat[:, 1] / cell_size).astype(np.int64), axis - 1)
    np.clip(cx, 0, axis - 1, out=cx)
    np.clip(cy, 0, axis - 1, out=cy)
    rep_of = np.repeat(np.arange(reps, dtype=np.int64), n)
    cell = rep_of * cells + cx * axis + cy
    order = np.argsort(cell, kind="stable")
    sorted_cell = cell[order]

    row_chunks: List[np.ndarray] = []
    col_chunks: List[np.ndarray] = []
    all_rows = np.arange(total_rows, dtype=np.intp)
    for dx, dy in _cell_offsets(axis, torus):
        if torus:
            tx = (cx + dx) % axis
            ty = (cy + dy) % axis
            target = rep_of * cells + tx * axis + ty
        else:
            tx = cx + dx
            ty = cy + dy
            target = rep_of * cells + tx * axis + ty
            invalid = (tx < 0) | (tx >= axis) | (ty < 0) | (ty >= axis)
            target = np.where(invalid, np.int64(-1), target)
        starts = np.searchsorted(sorted_cell, target, side="left")
        ends = np.searchsorted(sorted_cell, target, side="right")
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            continue
        rows = np.repeat(all_rows, counts)
        bases = np.concatenate(([0], np.cumsum(counts)[:-1]))
        flat_idx = (np.arange(total, dtype=np.intp)
                    - np.repeat(bases, counts)
                    + np.repeat(starts, counts))
        row_chunks.append(rows)
        col_chunks.append(order[flat_idx])

    if not row_chunks:
        return [{int(i): [] for i in ids_arr} for _ in range(reps)]
    rows = np.concatenate(row_chunks)
    cols = np.concatenate(col_chunks)
    if torus:
        ddx = np.abs(flat[rows, 0] - flat[cols, 0])
        ddy = np.abs(flat[rows, 1] - flat[cols, 1])
        ddx = np.minimum(ddx, side - ddx)
        ddy = np.minimum(ddy, side - ddy)
    else:
        ddx = flat[rows, 0] - flat[cols, 0]
        ddy = flat[rows, 1] - flat[cols, 1]
    keep = (np.hypot(ddx, ddy) <= radius) & (rows != cols)
    rows = rows[keep]
    cols = cols[keep]

    neighbor_ids = ids_arr[cols % n]
    by_row = np.lexsort((neighbor_ids, rows))
    rows = rows[by_row]
    neighbor_ids = neighbor_ids[by_row]
    per_row = np.bincount(rows, minlength=total_rows)
    chunks = np.split(neighbor_ids, np.cumsum(per_row)[:-1])
    return [
        {int(ids_arr[i]): [int(v) for v in chunks[r * n + i]]
         for i in range(n)}
        for r in range(reps)
    ]


class NeighborKernel:
    """Contiguous-array neighbor engine over integer node ids.

    Rows are kept dense: removing a node swaps the last row into its slot,
    so position data stays contiguous regardless of churn history.
    """

    def __init__(self, side: float, radius: float, torus: bool = False) -> None:
        if side <= 0 or radius <= 0:
            raise ValueError("side and radius must be positive")
        self.side = float(side)
        self.radius = float(radius)
        self.torus = torus
        self.cells_per_axis = max(1, int(math.floor(side / radius)))
        self.cell_size = side / self.cells_per_axis
        self._ids = np.empty(0, dtype=np.int64)
        self._pos = np.empty((0, 2), dtype=np.float64)
        self._row: Dict[int, int] = {}

    # -- membership ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._row)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._row

    def ids(self) -> List[int]:
        return [int(i) for i in self._ids]

    def position(self, node_id: int) -> Point:
        row = self._pos[self._row[node_id]]
        return (float(row[0]), float(row[1]))

    def _grow(self, extra: int) -> None:
        n = len(self._row)
        capacity = self._pos.shape[0]
        if n + extra <= capacity:
            return
        new_cap = max(n + extra, 2 * capacity, 16)
        ids = np.empty(new_cap, dtype=np.int64)
        pos = np.empty((new_cap, 2), dtype=np.float64)
        ids[:n] = self._ids[:n]
        pos[:n] = self._pos[:n]
        self._ids, self._pos = ids, pos

    def insert(self, node_id: int, p: Point) -> None:
        """Insert a node (or move it if already present)."""
        row = self._row.get(node_id)
        if row is not None:
            self._pos[row, 0] = p[0]
            self._pos[row, 1] = p[1]
            return
        self._grow(1)
        row = len(self._row)
        self._ids[row] = node_id
        self._pos[row, 0] = p[0]
        self._pos[row, 1] = p[1]
        self._row[node_id] = row

    def remove(self, node_id: int) -> None:
        """Remove a node; the last row is swapped into its slot (O(1))."""
        row = self._row.pop(node_id, None)
        if row is None:
            return
        last = len(self._row)  # index of the (former) last occupied row
        if row != last:
            moved = int(self._ids[last])
            self._ids[row] = self._ids[last]
            self._pos[row] = self._pos[last]
            self._row[moved] = row

    def rebuild(self, ids: Sequence[int], positions: Sequence[Point]) -> None:
        """Bulk-load the full membership (e.g. one mobility tick)."""
        n = len(ids)
        self._ids = np.asarray(ids, dtype=np.int64).copy()
        self._pos = np.asarray(positions, dtype=np.float64).reshape(n, 2).copy()
        self._row = {int(node_id): i for i, node_id in enumerate(self._ids)}

    def set_positions(self, ids: Sequence[int], positions) -> None:
        """Update positions of already-present nodes in one shot."""
        rows = np.fromiter((self._row[i] for i in ids), dtype=np.intp,
                           count=len(ids))
        self._pos[rows] = np.asarray(positions, dtype=np.float64).reshape(-1, 2)

    # -- geometry -----------------------------------------------------------

    def _active(self) -> Tuple[np.ndarray, np.ndarray]:
        n = len(self._row)
        return self._ids[:n], self._pos[:n]

    def _deltas(self, dx: np.ndarray, dy: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        dx = np.abs(dx)
        dy = np.abs(dy)
        if self.torus:
            dx = np.minimum(dx, self.side - dx)
            dy = np.minimum(dy, self.side - dy)
        return dx, dy

    def within(self, center: Point, radius: float,
               exclude: Optional[int] = None) -> List[int]:
        """Sorted node ids within ``radius`` of ``center`` (inclusive)."""
        ids, pos = self._active()
        if len(ids) == 0 or radius <= 0:
            return []
        dx, dy = self._deltas(pos[:, 0] - center[0], pos[:, 1] - center[1])
        mask = np.hypot(dx, dy) <= radius
        found = ids[mask]
        if exclude is not None:
            found = found[found != exclude]
        return sorted(int(i) for i in found)

    def neighbors_of(self, node_id: int, radius: Optional[float] = None) -> List[int]:
        """Sorted ids within ``radius`` of ``node_id``, excluding itself."""
        r = self.radius if radius is None else radius
        return self.within(self.position(node_id), r, exclude=node_id)

    # -- the batched all-pairs pass -----------------------------------------

    def _cell_offsets(self) -> Iterable[Tuple[int, int]]:
        return _cell_offsets(self.cells_per_axis, self.torus)

    @profiled("kernel.batch_pass")
    def neighbor_tables(self, radius: Optional[float] = None) -> Dict[int, List[int]]:
        """All-pairs-within-radius adjacency, computed in one batched pass.

        Returns ``{node_id: sorted neighbor ids}`` for every node currently
        in the kernel.  ``radius`` defaults to the kernel's bin radius and
        must not exceed the cell size (one ring of cells is searched).
        """
        r = self.radius if radius is None else radius
        if r > self.cell_size * (1 + 1e-12) and len(self._row) > 1:
            raise ValueError(
                f"query radius {r} exceeds cell size {self.cell_size}")
        ids, pos = self._active()
        n = len(ids)
        if n == 0:
            return {}
        if n == 1:
            return {int(ids[0]): []}

        axis = self.cells_per_axis
        cx = np.minimum((pos[:, 0] / self.cell_size).astype(np.int64), axis - 1)
        cy = np.minimum((pos[:, 1] / self.cell_size).astype(np.int64), axis - 1)
        np.clip(cx, 0, axis - 1, out=cx)
        np.clip(cy, 0, axis - 1, out=cy)
        cell = cx * axis + cy
        order = np.argsort(cell, kind="stable")
        sorted_cell = cell[order]

        row_chunks: List[np.ndarray] = []
        col_chunks: List[np.ndarray] = []
        all_rows = np.arange(n, dtype=np.intp)
        for dx, dy in self._cell_offsets():
            if self.torus:
                tx = (cx + dx) % axis
                ty = (cy + dy) % axis
                target = tx * axis + ty
            else:
                tx = cx + dx
                ty = cy + dy
                target = tx * axis + ty
                invalid = (tx < 0) | (tx >= axis) | (ty < 0) | (ty >= axis)
                target = np.where(invalid, np.int64(-1), target)
            starts = np.searchsorted(sorted_cell, target, side="left")
            ends = np.searchsorted(sorted_cell, target, side="right")
            counts = ends - starts
            total = int(counts.sum())
            if total == 0:
                continue
            rows = np.repeat(all_rows, counts)
            # Flatten the per-row [start, end) ranges into one index array.
            bases = np.concatenate(([0], np.cumsum(counts)[:-1]))
            flat = (np.arange(total, dtype=np.intp)
                    - np.repeat(bases, counts)
                    + np.repeat(starts, counts))
            row_chunks.append(rows)
            col_chunks.append(order[flat])

        if not row_chunks:
            return {int(i): [] for i in ids}
        rows = np.concatenate(row_chunks)
        cols = np.concatenate(col_chunks)
        dx, dy = self._deltas(pos[rows, 0] - pos[cols, 0],
                              pos[rows, 1] - pos[cols, 1])
        keep = (np.hypot(dx, dy) <= r) & (rows != cols)
        rows = rows[keep]
        cols = cols[keep]

        neighbor_ids = ids[cols]
        by_row = np.lexsort((neighbor_ids, rows))
        rows = rows[by_row]
        neighbor_ids = neighbor_ids[by_row]
        per_row = np.bincount(rows, minlength=n)
        chunks = np.split(neighbor_ids, np.cumsum(per_row)[:-1])
        return {int(ids[i]): [int(v) for v in chunk]
                for i, chunk in enumerate(chunks)}
