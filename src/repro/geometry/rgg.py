"""Random geometric graphs G^2(n, r).

The paper's theoretical model (Section 2.3): n nodes placed uniformly at
random in a square (torus for analysis, plane for simulations), with an edge
between any two nodes at Euclidean distance <= r.  This module generates
such graphs and provides the graph-theoretic measurements the paper relies
on: connectivity, components, diameter, and degree statistics.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geometry.grid import SpatialGrid
from repro.geometry.space import (
    PlaneMetric,
    Point,
    TorusMetric,
    area_side_for_density,
)


@dataclass
class GeometricGraph:
    """An embedded unit-disk graph: positions plus adjacency lists."""

    positions: List[Point]
    radius: float
    side: float
    torus: bool
    adjacency: List[List[int]] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.positions)

    @property
    def metric(self):
        return TorusMetric(self.side) if self.torus else PlaneMetric(self.side)

    def degree(self, node: int) -> int:
        return len(self.adjacency[node])

    def degrees(self) -> List[int]:
        return [len(nbrs) for nbrs in self.adjacency]

    def average_degree(self) -> float:
        if not self.adjacency:
            return 0.0
        return sum(self.degrees()) / len(self.adjacency)

    def edges(self) -> List[Tuple[int, int]]:
        out = []
        for u, nbrs in enumerate(self.adjacency):
            for v in nbrs:
                if u < v:
                    out.append((u, v))
        return out

    def neighbors(self, node: int) -> List[int]:
        return self.adjacency[node]

    def subgraph_without(self, removed: Set[int]) -> "GeometricGraph":
        """Graph induced on surviving nodes, keeping original ids.

        Removed nodes get empty adjacency and are excluded from neighbors of
        survivors.  Used by the churn/failure analyses (Section 6.1): after
        ``i`` failures the survivors form G^2(n - i, r).
        """
        adjacency: List[List[int]] = []
        for u, nbrs in enumerate(self.adjacency):
            if u in removed:
                adjacency.append([])
            else:
                adjacency.append([v for v in nbrs if v not in removed])
        return GeometricGraph(
            positions=list(self.positions),
            radius=self.radius,
            side=self.side,
            torus=self.torus,
            adjacency=adjacency,
        )


def build_adjacency(
    positions: Sequence[Point], radius: float, side: float, torus: bool
) -> List[List[int]]:
    """Compute unit-disk adjacency with a spatial grid (O(n * d_avg))."""
    grid = SpatialGrid(side=side, cell_size=max(radius, side / 1024), torus=torus)
    for idx, p in enumerate(positions):
        grid.insert(idx, p)
    return [sorted(grid.neighbors_of(idx, radius)) for idx in range(len(positions))]


def random_geometric_graph(
    n: int,
    radius: float,
    side: float = 1.0,
    torus: bool = False,
    rng: Optional[random.Random] = None,
) -> GeometricGraph:
    """Sample G^2(n, r): uniform positions, unit-disk edges."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = rng or random.Random()
    positions = [(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]
    adjacency = build_adjacency(positions, radius, side, torus)
    return GeometricGraph(
        positions=positions, radius=radius, side=side, torus=torus,
        adjacency=adjacency,
    )


def rgg_for_density(
    n: int,
    avg_degree: float,
    radio_range: float = 200.0,
    torus: bool = False,
    rng: Optional[random.Random] = None,
    require_connected: bool = False,
    max_attempts: int = 50,
) -> GeometricGraph:
    """Sample an RGG scaled to the paper's density rule (Section 2.4).

    The area is scaled so the expected degree equals ``avg_degree`` for the
    given ``radio_range`` (200 m by default, the paper's ideal reception
    range).  With ``require_connected=True``, re-samples until the graph is
    connected (the paper notes d_avg >= 7 kept all its networks connected).
    """
    rng = rng or random.Random()
    side = area_side_for_density(n, radio_range, avg_degree)
    for _ in range(max_attempts):
        graph = random_geometric_graph(
            n, radius=radio_range, side=side, torus=torus, rng=rng
        )
        if not require_connected or is_connected(graph):
            return graph
    raise RuntimeError(
        f"could not sample a connected RGG (n={n}, d_avg={avg_degree}) "
        f"in {max_attempts} attempts"
    )


def connected_components(graph: GeometricGraph) -> List[List[int]]:
    """Connected components as sorted id lists (singletons for isolated)."""
    seen: Set[int] = set()
    components: List[List[int]] = []
    for start in range(graph.n):
        if start in seen:
            continue
        queue = deque([start])
        seen.add(start)
        comp = [start]
        while queue:
            u = queue.popleft()
            for v in graph.adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    comp.append(v)
                    queue.append(v)
        components.append(sorted(comp))
    return components


def is_connected(graph: GeometricGraph, ignore: Optional[Set[int]] = None) -> bool:
    """True if the graph (optionally minus ``ignore`` nodes) is connected."""
    ignore = ignore or set()
    alive = [u for u in range(graph.n) if u not in ignore]
    if not alive:
        return True
    seen = {alive[0]}
    queue = deque([alive[0]])
    while queue:
        u = queue.popleft()
        for v in graph.adjacency[u]:
            if v not in ignore and v not in seen:
                seen.add(v)
                queue.append(v)
    return len(seen) == len(alive)


def bfs_distances(graph: GeometricGraph, source: int) -> Dict[int, int]:
    """Hop distances from ``source`` to every reachable node."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.adjacency[u]:
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def shortest_path(graph: GeometricGraph, source: int, target: int) -> Optional[List[int]]:
    """One shortest hop path source -> target, or None if unreachable."""
    if source == target:
        return [source]
    parent: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.adjacency[u]:
            if v in parent:
                continue
            parent[v] = u
            if v == target:
                path = [v]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                return list(reversed(path))
            queue.append(v)
    return None


def diameter(graph: GeometricGraph, exact: bool = False,
             samples: int = 8, rng: Optional[random.Random] = None) -> int:
    """Hop diameter.

    ``exact=True`` runs BFS from every node (O(n*m)); otherwise uses the
    standard double-sweep lower bound from a few random starts, which is
    exact on most RGGs and always a lower bound.
    """
    if graph.n == 0:
        return 0
    if exact:
        best = 0
        for u in range(graph.n):
            dist = bfs_distances(graph, u)
            best = max(best, max(dist.values(), default=0))
        return best
    rng = rng or random.Random(0)
    best = 0
    for _ in range(samples):
        start = rng.randrange(graph.n)
        dist = bfs_distances(graph, start)
        far, d = max(dist.items(), key=lambda kv: kv[1])
        best = max(best, d)
        dist2 = bfs_distances(graph, far)
        best = max(best, max(dist2.values(), default=0))
    return best


def theoretical_diameter_hops(n: int, avg_degree: float) -> float:
    """Paper's Theta(1/r) diameter estimate, in hops, for the scaled area.

    With ``side = sqrt(pi r^2 n / d_avg)``, the max Euclidean extent is
    ``side*sqrt(2)`` and each hop covers at most ``r``, giving
    ``diameter ~ sqrt(2 pi n / d_avg)``.
    """
    return math.sqrt(2.0 * math.pi * n / avg_degree)
