"""Geometry substrate: deployment areas, spatial index, random geometric graphs."""

from repro.geometry.grid import SpatialGrid
from repro.geometry.rgg import (
    GeometricGraph,
    bfs_distances,
    build_adjacency,
    connected_components,
    diameter,
    is_connected,
    random_geometric_graph,
    rgg_for_density,
    shortest_path,
    theoretical_diameter_hops,
)
from repro.geometry.space import (
    PlaneMetric,
    Point,
    TorusMetric,
    area_side_for_density,
    critical_range_for_connectivity,
    expected_degree,
)

__all__ = [
    "SpatialGrid",
    "GeometricGraph",
    "bfs_distances",
    "build_adjacency",
    "connected_components",
    "diameter",
    "is_connected",
    "random_geometric_graph",
    "rgg_for_density",
    "shortest_path",
    "theoretical_diameter_hops",
    "PlaneMetric",
    "Point",
    "TorusMetric",
    "area_side_for_density",
    "critical_range_for_connectivity",
    "expected_degree",
]
