"""Data location service / distributed dictionary on top of a biquorum
(Sections 2.1, 7.1 and the paper's driving application).

Publishing a (key, value) mapping stores it at every member of an advertise
quorum; looking a key up probes a lookup quorum.  The probabilistic
intersection of the two quorums is what makes lookups succeed.

Implements the location-service-specific optimizations of Section 7.1:

* **early halting** comes for free from the PATH strategies (the probe
  functions given to the strategies return the stored value, letting the
  walk stop on the first hit);
* **caching**: nodes distinguish *owners* (advertise quorum members, which
  must retain the entry) from *bystanders* (nodes that merely saw the reply
  pass by, which cache it in a bounded LRU and may forget it any time).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.biquorum import ProbabilisticBiquorum
from repro.core.strategies import AccessResult


def _reply_version(reply: Tuple[Any, int]) -> int:
    """Version component of a (value, version) probe reply."""
    return reply[1]


def _reply_value(reply: Tuple[Any, int]) -> Any:
    """Value component of a (value, version) probe reply."""
    return reply[0]


@dataclass
class StoredEntry:
    """One advertised mapping held by an owner node."""

    key: Hashable
    value: Any
    version: int
    origin: int
    stored_at: float


@dataclass
class AdvertiseReceipt:
    """Result of publishing a mapping."""

    key: Hashable
    version: int
    access: AccessResult

    @property
    def quorum(self) -> List[int]:
        return self.access.quorum

    @property
    def messages(self) -> int:
        return self.access.messages


@dataclass
class LookupReceipt:
    """Result of a lookup."""

    key: Hashable
    found: bool
    value: Any
    version: Optional[int]
    from_cache: bool
    access: Optional[AccessResult]

    @property
    def messages(self) -> int:
        return self.access.messages if self.access is not None else 0


class LocationService:
    """Advertise/lookup dictionary with owner stores and bystander caches."""

    def __init__(self, biquorum: ProbabilisticBiquorum,
                 enable_caching: bool = False,
                 cache_capacity: int = 64) -> None:
        self.biquorum = biquorum
        self.net = biquorum.net
        self.enable_caching = enable_caching
        self.cache_capacity = cache_capacity
        # React to *committed* failures only — a churn rollback
        # (connectivity-preserving probe) must not wipe bystander caches.
        register = getattr(self.net, "add_failure_listener", None)
        if register is not None:
            register(self.evict_bystander_state)
        # owner stores: node -> key -> entry
        self._stores: Dict[int, Dict[Hashable, StoredEntry]] = {}
        # bystander caches: node -> LRU of key -> (value, version)
        self._caches: Dict[int, OrderedDict] = {}
        self._versions = itertools.count(1)
        self._advertised: Dict[Hashable, Tuple[int, Any, int]] = {}
        # key -> (origin, value, version): used by refresh/readvertise

    # -- node-local storage ------------------------------------------------

    def store_at(self, node: int, entry: StoredEntry) -> None:
        """Make ``node`` an owner of the entry (newer versions win)."""
        table = self._stores.setdefault(node, {})
        existing = table.get(entry.key)
        if existing is None or entry.version >= existing.version:
            table[entry.key] = entry

    def owner_lookup(self, node: int, key: Hashable) -> Optional[StoredEntry]:
        entry = self._stores.get(node, {}).get(key)
        if entry is not None and not self.net.is_alive(node):
            return None
        return entry

    def cache_at(self, node: int, key: Hashable, value: Any,
                 version: int) -> None:
        if not self.enable_caching:
            return
        cache = self._caches.setdefault(node, OrderedDict())
        cache[key] = (value, version)
        cache.move_to_end(key)
        while len(cache) > self.cache_capacity:
            cache.popitem(last=False)

    def cache_lookup(self, node: int, key: Hashable) -> Optional[Tuple[Any, int]]:
        if not self.enable_caching:
            return None
        cache = self._caches.get(node)
        if cache is None or key not in cache:
            return None
        cache.move_to_end(key)
        return cache[key]

    def evict_bystander_state(self, node: int) -> None:
        """Simulate a node running low on memory: forget all cached entries
        for which it is a mere bystander (it keeps its owned entries)."""
        self._caches.pop(node, None)

    def owners_of(self, key: Hashable) -> List[int]:
        """Alive nodes currently owning the mapping (debug/metrics)."""
        return sorted(node for node, table in self._stores.items()
                      if key in table and self.net.is_alive(node))

    # -- the service API --------------------------------------------------

    def advertise(self, origin: int, key: Hashable, value: Any) -> AdvertiseReceipt:
        """Publish ``key -> value`` to an advertise quorum."""
        version = next(self._versions)

        def store_fn(node: int) -> None:
            self.store_at(node, StoredEntry(
                key=key, value=value, version=version, origin=origin,
                stored_at=self.net.now))

        # Key/version context for trace events (read by the invariant
        # watchers, which cross-check replies against prior stores).
        store_fn.access_key = key
        store_fn.access_version = version

        access = self.biquorum.write(origin, store_fn)
        self._advertised[key] = (origin, value, version)
        return AdvertiseReceipt(key=key, version=version, access=access)

    def lookup(self, origin: int, key: Hashable) -> LookupReceipt:
        """Find a value for ``key`` by probing a lookup quorum."""
        # Local owner store and bystander cache first (free).
        local = self.owner_lookup(origin, key)
        if local is not None:
            return LookupReceipt(key=key, found=True, value=local.value,
                                 version=local.version, from_cache=False,
                                 access=None)
        cached = self.cache_lookup(origin, key)
        if cached is not None:
            return LookupReceipt(key=key, found=True, value=cached[0],
                                 version=cached[1], from_cache=True,
                                 access=None)

        def probe_fn(node: int) -> Optional[Any]:
            entry = self.owner_lookup(node, key)
            if entry is not None:
                return (entry.value, entry.version)
            hit = self.cache_lookup(node, key)
            if hit is not None:
                return hit
            return None

        probe_fn.access_key = key
        # Replies are (value, version) pairs: tell the tracing layer how
        # to extract the version, and the masking filter which component
        # identifies a candidate (votes aggregate across versions of the
        # same value, so refresh-skewed honest replicas still agree).
        probe_fn.access_version_of = _reply_version
        probe_fn.access_vote_key = _reply_value

        access = self.biquorum.read(origin, probe_fn)
        found = bool(access.found and (access.reply_delivered
                                       or access.reply_delivered is None))
        value = None
        version = None
        if found and access.hit_value is not None:
            value, version = access.hit_value
            self.cache_at(origin, key, value, version)
        return LookupReceipt(key=key, found=found, value=value,
                             version=version, from_cache=False,
                             access=access)

    # -- maintenance (Section 6.1) ------------------------------------------

    def advertised_keys(self) -> List[Hashable]:
        return list(self._advertised)

    def readvertise(self, key: Hashable) -> Optional[AdvertiseReceipt]:
        """Refresh one mapping (quorum refresh after churn).

        Re-publishes from the original origin if it is still alive,
        otherwise from any surviving owner.
        """
        if key not in self._advertised:
            return None
        origin, value, _version = self._advertised[key]
        if not self.net.is_alive(origin):
            owners = self.owners_of(key)
            if not owners:
                return None
            origin = owners[0]
        return self.advertise(origin, key, value)

    def readvertise_all(self) -> List[AdvertiseReceipt]:
        """Refresh every known mapping (the degradation-rate-driven refresh)."""
        receipts = []
        for key in self.advertised_keys():
            receipt = self.readvertise(key)
            if receipt is not None:
                receipts.append(receipt)
        return receipts
