"""Replicated key-value service with timed-quorum leases.

The ROADMAP's serving-system layer: a :class:`QuorumKVStore` exposes
``put`` / ``get`` / ``cas`` over a probabilistic biquorum, with per-key
versioning (the :class:`~repro.services.register.Timestamp` lattice of
the ABD register) and *timed-quorum leases* ("Timed Quorum Systems for
Large-Scale and Dynamic Environments", PAPERS.md): every stored entry
carries a TTL stamped at store time, expired entries are excluded from
probe replies (and votes — lease filtering composes with
:class:`~repro.core.masking.MaskingStrategy`) and reclaimed lazily by
the next touch.

Lease duration is derivable from the observed churn rate the same way
:class:`~repro.services.maintenance.RefreshDaemon`'s adaptive mode
re-derives the Section 6.1 refresh interval: ``adaptive=True``
re-estimates the committed churn rate from the metrics counters and
inverts the holder-survival floor
(:func:`repro.analysis.leases.lease_ttl_for_churn`).

Operations follow the register's phase structure:

* ``get`` — one *query* access collecting ``(value, version, expiry)``
  from a lookup quorum; the newest unexpired reply wins (under masking,
  the vote-confirmed winner).
* ``put`` — query for the latest version, then a *propagate* access
  storing ``(counter+1, origin)`` to an advertise quorum.  A per-(key,
  writer) counter floor keeps versions unique even when the query
  missed the newest commit.
* ``cas`` — query, compare the observed value with ``expected``, and
  propagate only on match.  Success off a stale view is possible with
  probability ~epsilon (and separately accounted); the history checker
  treats it as staleness, not a violation.

Every operation emits one ``kv-op`` trace event (op, key, version, ok,
stale, latency) — the stream the SLO monitor derives ``kv.*`` metrics
from — and can be recorded into a
:class:`~repro.services.consistency.KVHistoryChecker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.analysis.leases import lease_ttl_for_churn
from repro.core.biquorum import ProbabilisticBiquorum
from repro.core.leases import LeasedEntry, LeaseTable
from repro.core.masking import parse_masking_name
from repro.core.strategies import AccessResult
from repro.obs.trace import record_event
from repro.services.consistency import KVHistoryChecker
from repro.services.register import Timestamp


def _kv_reply_version(reply: Tuple[Any, Tuple[int, int], float]) -> Tuple[int, int]:
    """Version of a ``(value, (counter, writer), expires_at)`` reply.

    The ``(counter, writer)`` tuple orders like the Timestamp it mirrors
    and serializes to a JSON array, so offline trace replay compares
    versions correctly (lists order lexicographically too).
    """
    return reply[1]


def _kv_reply_value(reply: Tuple[Any, Tuple[int, int], float]) -> Any:
    """Vote identity of a reply: the value (versions order candidates)."""
    return reply[0]


@dataclass
class KVOpResult:
    """Outcome of one kv operation with accounting."""

    kind: str                    # "put" | "get" | "cas"
    key: Hashable
    ok: bool                     # put committed / get found / cas succeeded
    value: Any
    version: Optional[Timestamp]
    stale: bool                  # returned/acted on an out-of-date version
    latency: float
    messages: int
    routing_messages: int
    accesses: List[AccessResult] = field(default_factory=list)


class QuorumKVStore:
    """``put/get/cas`` over a probabilistic biquorum with timed leases."""

    def __init__(
        self,
        biquorum: ProbabilisticBiquorum,
        lease_ttl: Optional[float] = None,
        churn_rate: Optional[float] = None,
        min_survival: float = 0.9,
        adaptive: bool = False,
        min_ttl: float = 1.0,
        max_ttl: float = 1e6,
        checker: Optional[KVHistoryChecker] = None,
        name: str = "kv",
    ) -> None:
        """Give ``lease_ttl`` directly, or a ``churn_rate`` estimate and
        let the lease analysis derive the TTL keeping per-holder survival
        above ``min_survival``.  ``adaptive=True`` re-estimates the churn
        rate from the committed churn counters before every store, the
        :class:`RefreshDaemon` adaptive-mode pattern.
        """
        if lease_ttl is None and churn_rate is None and not adaptive:
            raise ValueError(
                "provide lease_ttl, or churn_rate (+ min_survival), or "
                "adaptive=True")
        if lease_ttl is not None and lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.biquorum = biquorum
        self.net = biquorum.net
        self.name = name
        self.lease_ttl = lease_ttl
        self.churn_rate = churn_rate
        self.min_survival = min_survival
        self.adaptive = adaptive
        self.min_ttl = min_ttl
        self.max_ttl = max_ttl
        self.checker = checker
        self.table = LeaseTable(self.net)
        # Per-(key, writer) counter floors: a writer never reuses a
        # counter for a key, so (counter, writer) versions stay unique
        # even when the pre-write query missed the latest commit.
        self._floors: Dict[Tuple[Hashable, int], int] = {}
        # Commit oracle: key -> (ts, value) of the newest committed
        # write, used for staleness accounting (not by the protocol).
        self._commits: Dict[Hashable, Tuple[Timestamp, Any]] = {}
        self._churn_baseline = self._churn_events()
        self._started_at = self.net.now

    # -- adaptive lease sizing --------------------------------------------

    def _churn_events(self) -> int:
        metrics = getattr(self.net, "metrics", None)
        if metrics is None:
            return 0
        return (metrics.counter_value("churn.failures")
                + metrics.counter_value("churn.joins"))

    def observed_churn_rate(self) -> float:
        """Committed churn events per node-second since construction."""
        elapsed = self.net.now - self._started_at
        if elapsed <= 0:
            return 0.0
        events = self._churn_events() - self._churn_baseline
        return events / elapsed / max(1, self.net.n_alive)

    def current_ttl(self) -> float:
        """The lease TTL stores stamp *now*.

        Fixed when ``lease_ttl`` was given; otherwise derived from the
        churn rate (adaptive mode prefers the observed rate, falling
        back to the construction-time estimate before any churn)."""
        if self.lease_ttl is not None and not self.adaptive:
            return self.lease_ttl
        rate = self.observed_churn_rate() if self.adaptive else 0.0
        if rate <= 0.0:
            rate = self.churn_rate or 0.0
        if rate <= 0.0 and self.lease_ttl is not None:
            return self.lease_ttl
        return lease_ttl_for_churn(rate, self.min_survival,
                                   min_ttl=self.min_ttl,
                                   max_ttl=self.max_ttl)

    # -- phases ------------------------------------------------------------

    def _query_phase(self, origin: int, key: Hashable) -> Tuple[
            Optional[Tuple[Any, Tuple[int, int], float]], AccessResult]:
        """Probe a lookup quorum; return the winning reply (or None).

        Replies are ``(value, (counter, writer), expires_at)``.  Expired
        entries never reply (lease filtering happens replica-side in the
        :class:`LeaseTable`), so masking vote tallies only ever see live
        leases.  Under a plain strategy the newest reply wins; under
        masking the vote-confirmed winner does.
        """
        best: List[Optional[Tuple[Any, Tuple[int, int], float]]] = [None]

        def probe_fn(node: int) -> Optional[Tuple[Any, Tuple[int, int], float]]:
            entry = self.table.visible(node, key)
            if entry is None:
                return None
            reply = (entry.value, (entry.ts.counter, entry.ts.writer),
                     entry.expires_at)
            if best[0] is None or best[0][1] < reply[1]:
                best[0] = reply
            return reply

        probe_fn.access_key = key
        probe_fn.access_version_of = _kv_reply_version
        probe_fn.access_vote_key = _kv_reply_value

        access = self.biquorum.read(origin, probe_fn)
        delivered = (access.reply_delivered is None
                     or access.reply_delivered)
        if not access.found or not delivered:
            return None, access
        if parse_masking_name(access.strategy) is not None:
            # Masking verdict: only the vote-confirmed reply counts.
            return access.hit_value, access
        return best[0], access

    def _propagate_phase(self, origin: int, key: Hashable, value: Any,
                         ts: Timestamp, ttl: float) -> AccessResult:
        def store_fn(node: int) -> None:
            self.table.store(node, LeasedEntry(
                key=key, value=value, ts=ts, stored_at=self.net.now,
                ttl=ttl))

        store_fn.access_key = key
        store_fn.access_version = (ts.counter, ts.writer)
        return self.biquorum.write(origin, store_fn)

    def _next_version(self, origin: int, key: Hashable,
                      seen: Optional[Tuple[int, int]]) -> Timestamp:
        floor = self._floors.get((key, origin), 0)
        counter = max(seen[0] if seen is not None else 0, floor) + 1
        self._floors[(key, origin)] = counter
        return Timestamp(counter=counter, writer=origin)

    def _record_commit(self, key: Hashable, ts: Timestamp,
                       value: Any) -> None:
        current = self._commits.get(key)
        if current is None or current[0] < ts:
            self._commits[key] = (ts, value)

    def _emit(self, result: KVOpResult) -> None:
        metrics = getattr(self.net, "metrics", None)
        if metrics is not None:
            prefix = f"{self.name}.{result.kind}"
            metrics.counter(prefix + ".count").inc()
            if result.ok:
                metrics.counter(prefix + ".ok").inc()
            if result.stale:
                metrics.counter(prefix + ".stale").inc()
            metrics.histogram(prefix + ".latency").observe(result.latency)
        version = (None if result.version is None
                   else (result.version.counter, result.version.writer))
        record_event(self.net, "kv-op", op=result.kind, key=result.key,
                     ok=result.ok, stale=result.stale, version=version,
                     latency=round(result.latency, 9),
                     messages=result.messages)

    # -- operations --------------------------------------------------------

    def put(self, origin: int, key: Hashable, value: Any) -> KVOpResult:
        """Query for the latest version, then store ``(counter+1, origin)``
        with a fresh lease to an advertise quorum."""
        started = self.net.now
        chosen, query = self._query_phase(origin, key)
        ts = self._next_version(origin, key,
                                chosen[1] if chosen is not None else None)
        ttl = self.current_ttl()
        prop = self._propagate_phase(origin, key, value, ts, ttl)
        committed = bool(prop.quorum)
        if committed:
            self._record_commit(key, ts, value)
        if self.checker is not None:
            self.checker.record_put(key=key, origin=origin, version=ts,
                                    value=value, started_at=started,
                                    committed=committed)
        result = KVOpResult(
            kind="put", key=key, ok=committed, value=value, version=ts,
            stale=False, latency=query.latency + prop.latency,
            messages=query.messages + prop.messages,
            routing_messages=query.routing_messages + prop.routing_messages,
            accesses=[query, prop])
        self._emit(result)
        return result

    def get(self, origin: int, key: Hashable) -> KVOpResult:
        """Collect from a lookup quorum; newest unexpired reply wins."""
        started = self.net.now
        chosen, access = self._query_phase(origin, key)
        found = chosen is not None
        value = chosen[0] if found else None
        version = (Timestamp(*chosen[1]) if found else None)
        expires_at = chosen[2] if found else None
        latest = self._commits.get(key)
        stale = bool(found and latest is not None and version < latest[0])
        if self.checker is not None:
            self.checker.record_get(key=key, origin=origin, found=found,
                                    value=value, version=version,
                                    started_at=started,
                                    expires_at=expires_at)
        result = KVOpResult(
            kind="get", key=key, ok=found, value=value, version=version,
            stale=stale, latency=access.latency, messages=access.messages,
            routing_messages=access.routing_messages, accesses=[access])
        self._emit(result)
        return result

    def cas(self, origin: int, key: Hashable, expected: Any,
            new_value: Any) -> KVOpResult:
        """Store ``new_value`` only if the observed value == ``expected``.

        ``expected=None`` is insert-if-absent.  Atomicity is
        probabilistic: with probability ~epsilon the query view is stale
        and the cas decides against an old version (accounted as
        ``stale``, and by the history checker as ``stale_cas``).
        """
        started = self.net.now
        chosen, query = self._query_phase(origin, key)
        observed_value = chosen[0] if chosen is not None else None
        observed_ts = (Timestamp(*chosen[1]) if chosen is not None else None)
        success = observed_value == expected
        latest = self._commits.get(key)
        stale = bool(latest is not None
                     and (observed_ts is None or observed_ts < latest[0]))
        accesses = [query]
        messages = query.messages
        routing = query.routing_messages
        latency = query.latency
        ts: Optional[Timestamp] = None
        committed = False
        if success:
            ts = self._next_version(origin, key,
                                    chosen[1] if chosen is not None else None)
            prop = self._propagate_phase(origin, key, new_value, ts,
                                         self.current_ttl())
            accesses.append(prop)
            messages += prop.messages
            routing += prop.routing_messages
            latency += prop.latency
            committed = bool(prop.quorum)
            if committed:
                self._record_commit(key, ts, new_value)
        if self.checker is not None:
            self.checker.record_cas(
                key=key, origin=origin, success=success and committed,
                version=ts, value=new_value,
                expected_version=observed_ts, started_at=started,
                committed=committed)
        result = KVOpResult(
            kind="cas", key=key, ok=success and committed,
            value=new_value if success else observed_value, version=ts,
            stale=stale and success, latency=latency, messages=messages,
            routing_messages=routing, accesses=accesses)
        self._emit(result)
        return result

    # -- introspection -----------------------------------------------------

    def holders_of(self, key: Hashable) -> List[int]:
        """Alive replicas currently able to answer for ``key``."""
        return self.table.holders_of(key)

    def latest_committed(self, key: Hashable) -> Optional[Tuple[Timestamp, Any]]:
        """Commit-oracle view of the newest committed write (accounting)."""
        return self._commits.get(key)
