"""Quorum-based publish/subscribe (Section 10, the paper's future-work
sketch, implemented here as an extension).

A subscription is disseminated to every member of an *advertise* quorum;
publishing an event contacts a *lookup* quorum; every lookup-quorum member
matches the event against the subscriptions it stores and notifies the
matching subscribers (via routing).  Since publications are typically far
more frequent than subscriptions, the asymmetric biquorum fits naturally:
the cheap strategy serves the publish side.

The guarantees are probabilistic: an event reaches a subscriber iff the
publish quorum intersects the subscription's quorum (probability >= 1-eps).
Unsubscription — the challenge the paper calls out — is handled with
version-numbered tombstones: an unsubscribe is advertised like a
subscription and shadows any older subscription it intersects; matching
nodes honour the newest record they know.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.biquorum import ProbabilisticBiquorum


@dataclass(frozen=True)
class Subscription:
    """A topic subscription (or its tombstone when ``active`` is False)."""

    topic: Hashable
    subscriber: int
    version: int
    active: bool = True


@dataclass
class PublishResult:
    """Outcome of one publication."""

    topic: Hashable
    event: Any
    matched_subscribers: List[int]
    notified_subscribers: List[int]
    messages: int
    routing_messages: int


class PubSubService:
    """Topic-based pub/sub over a probabilistic biquorum."""

    def __init__(self, biquorum: ProbabilisticBiquorum) -> None:
        self.biquorum = biquorum
        self.net = biquorum.net
        # node -> topic -> subscriber -> newest Subscription record
        self._tables: Dict[int, Dict[Hashable, Dict[int, Subscription]]] = {}
        self._versions = itertools.count(1)
        self.delivered: List[Tuple[int, Hashable, Any]] = []

    # -- node-local subscription tables -----------------------------------

    def _record(self, node: int, sub: Subscription) -> None:
        topics = self._tables.setdefault(node, {})
        subs = topics.setdefault(sub.topic, {})
        existing = subs.get(sub.subscriber)
        if existing is None or sub.version > existing.version:
            subs[sub.subscriber] = sub

    def _matches_at(self, node: int, topic: Hashable) -> List[int]:
        if not self.net.is_alive(node):
            return []
        subs = self._tables.get(node, {}).get(topic, {})
        return [s.subscriber for s in subs.values() if s.active]

    def subscriptions_at(self, node: int, topic: Hashable) -> List[Subscription]:
        return list(self._tables.get(node, {}).get(topic, {}).values())

    # -- API ----------------------------------------------------------------

    def subscribe(self, subscriber: int, topic: Hashable):
        """Disseminate a subscription to an advertise quorum."""
        sub = Subscription(topic=topic, subscriber=subscriber,
                           version=next(self._versions), active=True)
        return self.biquorum.write(subscriber,
                                   lambda node: self._record(node, sub))

    def unsubscribe(self, subscriber: int, topic: Hashable):
        """Advertise a newer tombstone shadowing the old subscription.

        Because each quorum access touches a possibly different node set, a
        single unsubscribe quorum cannot erase every stored copy; the
        tombstone instead *outvotes* older records wherever the publish
        quorum intersects either record's quorum.
        """
        tomb = Subscription(topic=topic, subscriber=subscriber,
                            version=next(self._versions), active=False)
        return self.biquorum.write(subscriber,
                                   lambda node: self._record(node, tomb))

    def publish(self, publisher: int, topic: Hashable, event: Any) -> PublishResult:
        """Send an event to a lookup quorum; matching members notify
        subscribers via routing."""
        matched: Dict[int, Subscription] = {}

        def probe_fn(node: int) -> Optional[Any]:
            for sub in self.subscriptions_at(node, topic):
                existing = matched.get(sub.subscriber)
                if existing is None or sub.version > existing.version:
                    matched[sub.subscriber] = sub
            return None  # collecting probe: visit the full quorum

        access = self.biquorum.read(publisher, probe_fn)
        messages = access.messages
        routing = access.routing_messages
        matched_active = sorted(s.subscriber for s in matched.values()
                                if s.active)
        notified: List[int] = []
        for subscriber in matched_active:
            if subscriber == publisher or not self.net.is_alive(subscriber):
                continue
            # Any quorum member that matched could notify; we let the
            # publisher-side quorum node closest in the access do it —
            # modelled as one routed notification per subscriber.
            route = self.net.route(access.quorum[0] if access.quorum
                                   else publisher, subscriber)
            messages += route.data_messages
            routing += route.routing_messages
            if route.success:
                notified.append(subscriber)
                self.delivered.append((subscriber, topic, event))
        return PublishResult(topic=topic, event=event,
                             matched_subscribers=matched_active,
                             notified_subscribers=notified,
                             messages=messages, routing_messages=routing)
