"""Quorum maintenance daemon (Section 6.1, "handling quorum degradation").

Probabilistic quorums never need *reconfiguration* after churn — only a
periodic *refresh* (readvertising every data item) to restore the
intersection probability.  The refresh interval comes straight from the
degradation-rate analysis: given the initial epsilon, the minimum
acceptable intersection probability, and the observed churn rate, refresh
every ``f_max / churn_rate`` seconds.

Two scheduling modes:

* **static** — the construction-time churn rate is trusted for the whole
  run (the paper's setting);
* **adaptive** (``adaptive=True``) — the daemon measures the churn rate
  actually observed (committed failures + joins in the network's metrics
  registry) and re-derives the Section 6.1 interval after every round,
  so a mis-estimated or drifting churn rate converges to an appropriate
  refresh frequency online.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.degradation import RefreshPlan, refresh_schedule
from repro.services.location import LocationService
from repro.sim.kernel import PeriodicTimer


@dataclass
class RefreshStats:
    """Bookkeeping of refresh rounds performed."""

    rounds: int = 0
    readvertised: int = 0
    lost: int = 0  # keys with no surviving owner at refresh time
    interval_updates: int = 0  # adaptive re-derivations that changed it


class RefreshDaemon:
    """Periodically readvertises every mapping of a location service."""

    def __init__(
        self,
        service: LocationService,
        interval: Optional[float] = None,
        epsilon: Optional[float] = None,
        min_intersection: Optional[float] = None,
        churn_fraction_per_second: Optional[float] = None,
        mode: str = "both",
        adaptive: bool = False,
        min_interval: float = 1.0,
        max_interval: float = 86400.0,
    ) -> None:
        """Either give ``interval`` directly, or give the degradation
        parameters (epsilon, floor, churn rate) and let the Section 6.1
        analysis derive the interval.

        With ``adaptive=True`` (requires ``epsilon`` and
        ``min_intersection``), every round re-estimates the churn rate
        from the committed churn counters and re-derives the interval,
        clamped to ``[min_interval, max_interval]``.
        """
        if interval is None:
            if None in (epsilon, min_intersection, churn_fraction_per_second):
                raise ValueError(
                    "provide interval, or epsilon + min_intersection + "
                    "churn_fraction_per_second")
            plan = refresh_schedule(epsilon, min_intersection,
                                    churn_fraction_per_second, mode)
            interval = plan.refresh_interval_seconds
            self.plan: Optional[RefreshPlan] = plan
        else:
            self.plan = None
        if not interval > 0:
            raise ValueError("refresh interval must be positive")
        if adaptive:
            if epsilon is None or min_intersection is None:
                raise ValueError(
                    "adaptive refresh needs epsilon and min_intersection "
                    "to re-derive the schedule")
            if not 0 < min_interval <= max_interval:
                raise ValueError("need 0 < min_interval <= max_interval")
            interval = min(max_interval, max(min_interval, interval))
        self.service = service
        self.interval = interval
        self.epsilon = epsilon
        self.min_intersection = min_intersection
        self.mode = mode
        self.adaptive = adaptive
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.stats = RefreshStats()
        self._lost_keys: set = set()
        net = service.net
        self._churn_baseline = self._churn_events()
        self._started_at = net.now
        self._timer = PeriodicTimer(net.sim, interval, self._tick)

    # -- adaptive interval ------------------------------------------------

    def _churn_events(self) -> int:
        """Committed churn events so far, per the daemon's churn mode."""
        metrics = getattr(self.service.net, "metrics", None)
        if metrics is None:
            return 0
        failures = metrics.counter_value("churn.failures")
        joins = metrics.counter_value("churn.joins")
        if self.mode in ("failures-constant", "failures-adjusted"):
            return failures
        if self.mode in ("joins-constant", "joins-adjusted"):
            return joins
        return failures + joins

    def observed_churn_rate(self) -> float:
        """Fraction of the network churning per second since start."""
        net = self.service.net
        elapsed = net.now - self._started_at
        if elapsed <= 0:
            return 0.0
        events = self._churn_events() - self._churn_baseline
        return events / elapsed / max(1, net.n_alive)

    def _adapt_interval(self) -> None:
        rate = self.observed_churn_rate()
        if rate <= 0:
            return
        plan = refresh_schedule(self.epsilon, self.min_intersection,
                                rate, self.mode)
        derived = plan.refresh_interval_seconds
        if math.isinf(derived):
            derived = self.max_interval
        new_interval = min(self.max_interval, max(self.min_interval, derived))
        if new_interval != self.interval:
            self.interval = new_interval
            self.plan = plan
            self._timer.set_interval(new_interval)
            self.stats.interval_updates += 1

    # -- refresh rounds ---------------------------------------------------

    def _tick(self) -> None:
        self.stats.rounds += 1
        # Per-key accounting: a key is *lost* when it was advertised at
        # snapshot time yet produced no receipt.  (The old
        # ``len(keys) - len(receipts)`` went negative whenever keys were
        # advertised between the snapshot and readvertise_all, and
        # double-counted transient losses across refresh_now calls.)
        keys = set(self.service.advertised_keys())
        receipts = self.service.readvertise_all()
        self.stats.readvertised += len(receipts)
        refreshed = {receipt.key for receipt in receipts}
        lost_now = keys - refreshed
        # Count each loss once until the key recovers (back-to-back
        # refresh_now calls must not re-count the same stuck key).
        self.stats.lost += len(lost_now - self._lost_keys)
        self._lost_keys = lost_now
        if self.adaptive:
            self._adapt_interval()

    def stop(self) -> None:
        self._timer.stop()

    def refresh_now(self) -> int:
        """Force an immediate refresh round; returns keys readvertised."""
        before = self.stats.readvertised
        self._tick()
        return self.stats.readvertised - before
