"""Quorum maintenance daemon (Section 6.1, "handling quorum degradation").

Probabilistic quorums never need *reconfiguration* after churn — only a
periodic *refresh* (readvertising every data item) to restore the
intersection probability.  The refresh interval comes straight from the
degradation-rate analysis: given the initial epsilon, the minimum
acceptable intersection probability, and the observed churn rate, refresh
every ``f_max / churn_rate`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.degradation import RefreshPlan, refresh_schedule
from repro.services.location import LocationService
from repro.sim.kernel import PeriodicTimer


@dataclass
class RefreshStats:
    """Bookkeeping of refresh rounds performed."""

    rounds: int = 0
    readvertised: int = 0
    lost: int = 0  # keys with no surviving owner at refresh time


class RefreshDaemon:
    """Periodically readvertises every mapping of a location service."""

    def __init__(
        self,
        service: LocationService,
        interval: Optional[float] = None,
        epsilon: Optional[float] = None,
        min_intersection: Optional[float] = None,
        churn_fraction_per_second: Optional[float] = None,
        mode: str = "both",
    ) -> None:
        """Either give ``interval`` directly, or give the degradation
        parameters (epsilon, floor, churn rate) and let the Section 6.1
        analysis derive the interval."""
        if interval is None:
            if None in (epsilon, min_intersection, churn_fraction_per_second):
                raise ValueError(
                    "provide interval, or epsilon + min_intersection + "
                    "churn_fraction_per_second")
            plan = refresh_schedule(epsilon, min_intersection,
                                    churn_fraction_per_second, mode)
            interval = plan.refresh_interval_seconds
            self.plan: Optional[RefreshPlan] = plan
        else:
            self.plan = None
        if not interval > 0:
            raise ValueError("refresh interval must be positive")
        self.service = service
        self.interval = interval
        self.stats = RefreshStats()
        self._timer = PeriodicTimer(service.net.sim, interval, self._tick)

    def _tick(self) -> None:
        self.stats.rounds += 1
        keys = self.service.advertised_keys()
        receipts = self.service.readvertise_all()
        self.stats.readvertised += len(receipts)
        self.stats.lost += len(keys) - len(receipts)

    def stop(self) -> None:
        self._timer.stop()

    def refresh_now(self) -> int:
        """Force an immediate refresh round; returns keys readvertised."""
        before = self.stats.readvertised
        self._tick()
        return self.stats.readvertised - before
