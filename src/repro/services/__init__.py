"""Applications built on probabilistic biquorums: location service,
read/write register, pub/sub, and the refresh daemon."""

from repro.services.consistency import (
    CheckedRegister,
    ConsistencyReport,
    OpRecord,
)
from repro.services.location import (
    AdvertiseReceipt,
    LocationService,
    LookupReceipt,
    StoredEntry,
)
from repro.services.maintenance import RefreshDaemon, RefreshStats
from repro.services.pubsub import PublishResult, PubSubService, Subscription
from repro.services.register import (
    ProbabilisticRegister,
    RegisterOpResult,
    Timestamp,
    ZERO_TS,
)

__all__ = [
    "CheckedRegister",
    "ConsistencyReport",
    "OpRecord",
    "AdvertiseReceipt",
    "LocationService",
    "LookupReceipt",
    "StoredEntry",
    "RefreshDaemon",
    "RefreshStats",
    "PublishResult",
    "PubSubService",
    "Subscription",
    "ProbabilisticRegister",
    "RegisterOpResult",
    "Timestamp",
    "ZERO_TS",
]
