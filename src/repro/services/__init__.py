"""Applications built on probabilistic biquorums: location service,
read/write register, key-value store with timed-quorum leases, pub/sub,
and the refresh daemon."""

from repro.services.consistency import (
    CheckedRegister,
    ConsistencyReport,
    KVConsistencyReport,
    KVHistoryChecker,
    KVOpRecord,
    OpRecord,
    check_kv_batch,
)
from repro.services.kvstore import KVOpResult, QuorumKVStore
from repro.services.location import (
    AdvertiseReceipt,
    LocationService,
    LookupReceipt,
    StoredEntry,
)
from repro.services.maintenance import RefreshDaemon, RefreshStats
from repro.services.pubsub import PublishResult, PubSubService, Subscription
from repro.services.register import (
    ProbabilisticRegister,
    RegisterOpResult,
    Timestamp,
    ZERO_TS,
)

__all__ = [
    "CheckedRegister",
    "ConsistencyReport",
    "KVConsistencyReport",
    "KVHistoryChecker",
    "KVOpRecord",
    "KVOpResult",
    "OpRecord",
    "QuorumKVStore",
    "check_kv_batch",
    "AdvertiseReceipt",
    "LocationService",
    "LookupReceipt",
    "StoredEntry",
    "RefreshDaemon",
    "RefreshStats",
    "PublishResult",
    "PubSubService",
    "Subscription",
    "ProbabilisticRegister",
    "RegisterOpResult",
    "Timestamp",
    "ZERO_TS",
]
