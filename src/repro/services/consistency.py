"""Probabilistic linearizability checking (Section 10).

With probabilistic quorums the ABD register construction implements
*probabilistic linearizability*: each operation pair misses the
linearization order with probability at most epsilon.  This module
records a register's operation history and checks it against the
sequential specification of a read/write register, reporting the
empirical violation rate so it can be compared with the epsilon the
quorum sizing promised.

Operations in this simulator execute one at a time (the simulated clock
advances inside each), so the history is sequential and the check is
exact: a read is consistent iff it returns the value of the latest
preceding write (or the initial value if none).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List

from repro.services.register import ProbabilisticRegister, RegisterOpResult


@dataclass
class OpRecord:
    """One completed register operation."""

    index: int
    kind: str            # "read" | "write"
    origin: int
    value: Any
    timestamp: Any
    messages: int


@dataclass
class ConsistencyReport:
    """Outcome of checking a recorded history."""

    reads: int
    stale_reads: int     # reads that returned an out-of-date value
    writes: int

    @property
    def stale_fraction(self) -> float:
        """Stale reads per read; NaN with no reads (the repo's degenerate
        -input convention — an empty history carries no evidence either
        way, which 0.0 would misreport as "perfectly consistent")."""
        if self.reads == 0:
            return math.nan
        return self.stale_reads / self.reads

    @property
    def violation_rate(self) -> float:
        """Alias of :attr:`stale_fraction` (historical name)."""
        return self.stale_fraction

    def within_epsilon(self, epsilon: float, slack: float = 0.0) -> bool:
        """Whether the empirical violation rate honours the quorum bound.

        Vacuously true with no reads: an empty history cannot violate.
        """
        if self.reads == 0:
            return True
        return self.stale_fraction <= epsilon + slack


class CheckedRegister:
    """A :class:`ProbabilisticRegister` wrapper that records its history."""

    def __init__(self, register: ProbabilisticRegister) -> None:
        self.register = register
        self.history: List[OpRecord] = []

    def write(self, origin: int, value: Any) -> RegisterOpResult:
        result = self.register.write(origin, value)
        self.history.append(OpRecord(
            index=len(self.history), kind="write", origin=origin,
            value=value, timestamp=result.timestamp,
            messages=result.messages))
        return result

    def read(self, origin: int) -> RegisterOpResult:
        result = self.register.read(origin)
        self.history.append(OpRecord(
            index=len(self.history), kind="read", origin=origin,
            value=result.value, timestamp=result.timestamp,
            messages=result.messages))
        return result

    def check(self, initial_value: Any = None) -> ConsistencyReport:
        """Validate every read against the latest *committed* write.

        Sequential histories only (which is what this simulator
        produces).  A read is stale iff the version it returned is
        strictly older than the version of the latest write committed
        before the read started — comparing *versions*, not values, so
        a read that races a write's delivery window but still returns
        the new (or a newer helper-propagated) timestamp is not
        miscounted as stale.  Records without timestamps (forged
        histories, pre-version traces) fall back to value equality.
        """
        latest_value = initial_value
        latest_ts = None
        reads = stale = writes = 0
        for op in self.history:
            if op.kind == "write":
                writes += 1
                latest_value = op.value
                if op.timestamp is not None and (
                        latest_ts is None or latest_ts < op.timestamp):
                    latest_ts = op.timestamp
            else:
                reads += 1
                if op.timestamp is not None and latest_ts is not None:
                    if op.timestamp < latest_ts:
                        stale += 1
                elif op.value != latest_value:
                    stale += 1
        return ConsistencyReport(reads=reads, stale_reads=stale,
                                 writes=writes)
