"""Probabilistic linearizability checking (Section 10) and the kv
history checker.

With probabilistic quorums the ABD register construction implements
*probabilistic linearizability*: each operation pair misses the
linearization order with probability at most epsilon.  This module
records a register's operation history and checks it against the
sequential specification of a read/write register, reporting the
empirical violation rate so it can be compared with the epsilon the
quorum sizing promised.

Operations in this simulator execute one at a time (the simulated clock
advances inside each), so the history is sequential and the check is
exact: a read is consistent iff it returns the value of the latest
preceding write (or the initial value if none).

:class:`KVHistoryChecker` extends the same idea to the replicated
key-value service (:mod:`repro.services.kvstore`): it records every
``put``/``get``/``cas`` and verifies reads against the per-key
sequential spec.  Two failure classes are kept strictly apart:

* **stale reads / stale cas** — a quorum pair that missed its
  intersection returns an out-of-date (but once-committed) version.
  Probabilistically *expected* at rate ~epsilon; counted and compared
  against the analytic prediction, never treated as a violation.
* **violations** — events the spec makes impossible regardless of
  quorum luck: a read returning a version never committed for its key
  (``fabricated-read``), or newer than the latest commit preceding it
  (``future-read``), or whose lease had already expired at read start
  (``expired-read``); two commits claiming the same per-key version
  (``duplicate-version``); a cas reporting success without storing
  anywhere (``cas-lost``).  Any of these means a bug, so the fault-
  campaign and workload gates can require **zero** without flaking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.services.register import ProbabilisticRegister, RegisterOpResult


@dataclass
class OpRecord:
    """One completed register operation."""

    index: int
    kind: str            # "read" | "write"
    origin: int
    value: Any
    timestamp: Any
    messages: int


@dataclass
class ConsistencyReport:
    """Outcome of checking a recorded history."""

    reads: int
    stale_reads: int     # reads that returned an out-of-date value
    writes: int

    @property
    def stale_fraction(self) -> float:
        """Stale reads per read; NaN with no reads (the repo's degenerate
        -input convention — an empty history carries no evidence either
        way, which 0.0 would misreport as "perfectly consistent")."""
        if self.reads == 0:
            return math.nan
        return self.stale_reads / self.reads

    @property
    def violation_rate(self) -> float:
        """Alias of :attr:`stale_fraction` (historical name)."""
        return self.stale_fraction

    def within_epsilon(self, epsilon: float, slack: float = 0.0) -> bool:
        """Whether the empirical violation rate honours the quorum bound.

        Vacuously true with no reads: an empty history cannot violate.
        """
        if self.reads == 0:
            return True
        return self.stale_fraction <= epsilon + slack


class CheckedRegister:
    """A :class:`ProbabilisticRegister` wrapper that records its history."""

    def __init__(self, register: ProbabilisticRegister) -> None:
        self.register = register
        self.history: List[OpRecord] = []

    def write(self, origin: int, value: Any) -> RegisterOpResult:
        result = self.register.write(origin, value)
        self.history.append(OpRecord(
            index=len(self.history), kind="write", origin=origin,
            value=value, timestamp=result.timestamp,
            messages=result.messages))
        return result

    def read(self, origin: int) -> RegisterOpResult:
        result = self.register.read(origin)
        self.history.append(OpRecord(
            index=len(self.history), kind="read", origin=origin,
            value=result.value, timestamp=result.timestamp,
            messages=result.messages))
        return result

    def check(self, initial_value: Any = None) -> ConsistencyReport:
        """Validate every read against the latest *committed* write.

        Sequential histories only (which is what this simulator
        produces).  A read is stale iff the version it returned is
        strictly older than the version of the latest write committed
        before the read started — comparing *versions*, not values, so
        a read that races a write's delivery window but still returns
        the new (or a newer helper-propagated) timestamp is not
        miscounted as stale.  Records without timestamps (forged
        histories, pre-version traces) fall back to value equality.
        """
        latest_value = initial_value
        latest_ts = None
        reads = stale = writes = 0
        for op in self.history:
            if op.kind == "write":
                writes += 1
                latest_value = op.value
                if op.timestamp is not None and (
                        latest_ts is None or latest_ts < op.timestamp):
                    latest_ts = op.timestamp
            else:
                reads += 1
                if op.timestamp is not None and latest_ts is not None:
                    if op.timestamp < latest_ts:
                        stale += 1
                elif op.value != latest_value:
                    stale += 1
        return ConsistencyReport(reads=reads, stale_reads=stale,
                                 writes=writes)


# ---------------------------------------------------------------------------
# KV history checking (the serving-workload correctness oracle)
# ---------------------------------------------------------------------------

#: The hard violation classes (see the module docstring).
KV_VIOLATION_KINDS = (
    "duplicate-version",
    "fabricated-read",
    "future-read",
    "expired-read",
    "cas-lost",
)

#: Violation examples retained per report (the counts are complete).
_MAX_EXAMPLES = 8


@dataclass
class KVOpRecord:
    """One completed kv operation, as the checker saw it."""

    index: int
    kind: str                    # "put" | "get" | "cas"
    key: Any
    origin: int
    started_at: float
    value: Any = None
    version: Any = None          # Timestamp of the written/returned entry
    ok: bool = False             # put committed / get found / cas succeeded
    expected_version: Any = None  # cas: version the success was based on
    committed: bool = True       # put/cas: stored at >= 1 replica
    expires_at: Optional[float] = None  # get: lease expiry of the reply


@dataclass
class KVConsistencyReport:
    """Verdict over a recorded kv history: counts, staleness, violations."""

    ops: int = 0
    reads: int = 0
    writes: int = 0
    cas_attempts: int = 0
    cas_successes: int = 0
    stale_reads: int = 0         # expected at ~epsilon; not violations
    stale_cas: int = 0           # cas that succeeded off a stale view
    missed_reads: int = 0        # found nothing though the key had data
    violations: Dict[str, int] = field(default_factory=dict)
    examples: List[str] = field(default_factory=list)
    _found_reads: int = 0        # reads that returned a value

    @property
    def total_violations(self) -> int:
        return sum(self.violations.values())

    @property
    def clean(self) -> bool:
        return self.total_violations == 0

    @property
    def stale_fraction(self) -> float:
        """Stale reads per read; NaN with no reads (same degenerate-input
        convention as :class:`ConsistencyReport`)."""
        if self.reads == 0:
            return math.nan
        return self.stale_reads / self.reads

    @property
    def availability(self) -> float:
        """Fraction of reads-of-written-keys that returned a value."""
        eligible = self.reads - self._absent_reads()
        if eligible <= 0:
            return math.nan
        return 1.0 - self.missed_reads / eligible

    def _absent_reads(self) -> int:
        # Reads of never-written keys are neither hits nor misses; the
        # recorders only bump missed_reads for keys with committed data,
        # so reads - (hits + missed) is the absent-read count.  Kept as
        # a method so array- and record-built reports agree.
        return max(0, self.reads - self.missed_reads
                   - self._found_reads)

    def within_epsilon(self, epsilon: float, slack: float = 0.0) -> bool:
        """Whether the stale-read rate honours the lease/quorum bound.

        Vacuously true with no reads.
        """
        if self.reads == 0:
            return True
        return self.stale_fraction <= epsilon + slack

    def lines(self) -> List[str]:
        out = [
            f"kv history: ops={self.ops} reads={self.reads} "
            f"writes={self.writes} cas={self.cas_successes}/"
            f"{self.cas_attempts}",
            f"staleness: stale_reads={self.stale_reads} "
            f"stale_cas={self.stale_cas} missed={self.missed_reads}",
            f"violations: {self.total_violations}"
            + ("" if self.clean else " " + str(dict(self.violations))),
        ]
        out.extend(f"  {example}" for example in self.examples)
        return out


class KVHistoryChecker:
    """Records every kv op and verifies the per-key sequential spec.

    Wired into :class:`~repro.services.kvstore.QuorumKVStore` (pass one
    as ``checker=``); every workload run then doubles as a correctness
    oracle.  The history is sequential (this simulator executes one op
    at a time), so "latest committed at op start" is simply the latest
    version recorded before the current call.
    """

    def __init__(self, keep_history: bool = True) -> None:
        self.keep_history = keep_history
        self.history: List[KVOpRecord] = []
        self._ops = 0
        # key -> {version: value} of committed writes, and the latest.
        self._committed: Dict[Any, Dict[Any, Any]] = {}
        self._latest: Dict[Any, Any] = {}
        self.report_state = KVConsistencyReport()

    # -- recording ---------------------------------------------------------

    def _record(self, record: KVOpRecord) -> None:
        self._ops += 1
        self.report_state.ops = self._ops
        if self.keep_history:
            self.history.append(record)

    def _violate(self, kind: str, record: KVOpRecord, detail: str) -> None:
        report = self.report_state
        report.violations[kind] = report.violations.get(kind, 0) + 1
        if len(report.examples) < _MAX_EXAMPLES:
            report.examples.append(
                f"{kind}: op #{record.index} {record.kind} "
                f"key={record.key!r} {detail}")

    def _commit(self, record: KVOpRecord) -> None:
        """Register a committed write; flags ``duplicate-version``."""
        versions = self._committed.setdefault(record.key, {})
        if record.version in versions:
            self._violate("duplicate-version", record,
                          f"version {record.version} committed twice")
        versions[record.version] = record.value
        latest = self._latest.get(record.key)
        if latest is None or latest < record.version:
            self._latest[record.key] = record.version

    def record_put(self, key: Any, origin: int, version: Any, value: Any,
                   started_at: float, committed: bool = True) -> None:
        record = KVOpRecord(
            index=self._ops, kind="put", key=key, origin=origin,
            started_at=started_at, value=value, version=version,
            ok=committed, committed=committed)
        self.report_state.writes += 1
        if committed:
            self._commit(record)
        self._record(record)

    def record_get(self, key: Any, origin: int, found: bool, value: Any,
                   version: Any, started_at: float,
                   expires_at: Optional[float] = None) -> None:
        record = KVOpRecord(
            index=self._ops, kind="get", key=key, origin=origin,
            started_at=started_at, value=value, version=version, ok=found,
            expires_at=expires_at)
        report = self.report_state
        report.reads += 1
        latest = self._latest.get(key)
        if found:
            report._found_reads += 1
            versions = self._committed.get(key, {})
            if version not in versions:
                self._violate("fabricated-read", record,
                              f"version {version} never committed")
            elif versions[version] != value:
                self._violate(
                    "fabricated-read", record,
                    f"version {version} holds {versions[version]!r}, "
                    f"read returned {value!r}")
            elif latest is not None and latest < version:
                self._violate("future-read", record,
                              f"version {version} newer than latest "
                              f"committed {latest}")
            elif latest is not None and version < latest:
                report.stale_reads += 1
            if expires_at is not None and expires_at <= started_at:
                self._violate(
                    "expired-read", record,
                    f"lease expired at {expires_at:.6g} but read started "
                    f"at {started_at:.6g}")
        elif latest is not None:
            report.missed_reads += 1
        self._record(record)

    def record_cas(self, key: Any, origin: int, success: bool,
                   version: Any, value: Any, expected_version: Any,
                   started_at: float, committed: bool = True) -> None:
        """``expected_version`` is the version the cas compared against
        (what its query phase returned); success off a view older than
        the latest commit is a *stale* cas, not a violation."""
        record = KVOpRecord(
            index=self._ops, kind="cas", key=key, origin=origin,
            started_at=started_at, value=value, version=version,
            ok=success, expected_version=expected_version,
            committed=committed)
        report = self.report_state
        report.cas_attempts += 1
        if success:
            report.cas_successes += 1
            if not committed:
                self._violate("cas-lost", record,
                              "success reported but stored nowhere")
            else:
                latest = self._latest.get(key)
                if latest is not None and (expected_version is None
                                           or expected_version < latest):
                    report.stale_cas += 1
                self._commit(record)
        self._record(record)

    # -- reporting ---------------------------------------------------------

    def latest_committed(self, key: Any) -> Any:
        """The newest committed version for ``key`` (None if none)."""
        return self._latest.get(key)

    def report(self) -> KVConsistencyReport:
        return self.report_state


def check_kv_batch(
    read_time: Any,
    read_version: Any,
    read_latest: Any,
    read_expiry: Any,
    *,
    writes: int = 0,
    cas_attempts: int = 0,
    cas_successes: int = 0,
    stale_cas: int = 0,
    duplicate_versions: int = 0,
    cas_lost: int = 0,
) -> KVConsistencyReport:
    """Vectorized spec check over a batched workload's read arrays.

    Array-per-field mirror of :class:`KVHistoryChecker` for the
    million-op kernel (:mod:`repro.experiments.workload`): ``read_version``
    holds the per-key version *counter* each read returned (``-1`` =
    found nothing), ``read_latest`` the latest committed counter at the
    read's start (``-1`` = key never written), ``read_expiry`` the lease
    expiry of the returned entry (``+inf`` when absent).  Counters come
    from the kernel's committed-write ledger, so a returned counter
    above the latest is ``future-read`` and any committed-but-older
    counter is a stale read.  Write-side checks (``duplicate_versions``,
    ``cas_lost``) arrive pre-counted because the kernel detects them at
    scatter time.
    """
    import numpy as np

    read_time = np.asarray(read_time, dtype=np.float64)
    read_version = np.asarray(read_version, dtype=np.int64)
    read_latest = np.asarray(read_latest, dtype=np.int64)
    read_expiry = np.asarray(read_expiry, dtype=np.float64)
    found = read_version >= 0
    has_data = read_latest >= 0
    fabricated = int(np.count_nonzero(found & ~has_data))
    future = int(np.count_nonzero(found & has_data
                                  & (read_version > read_latest)))
    expired = int(np.count_nonzero(found & (read_expiry <= read_time)))
    stale = int(np.count_nonzero(found & has_data
                                 & (read_version < read_latest)))
    missed = int(np.count_nonzero(~found & has_data))
    report = KVConsistencyReport(
        ops=int(read_version.size) + writes + cas_attempts,
        reads=int(read_version.size),
        writes=writes,
        cas_attempts=cas_attempts,
        cas_successes=cas_successes,
        stale_reads=stale,
        stale_cas=stale_cas,
        missed_reads=missed,
    )
    report._found_reads = int(np.count_nonzero(found))
    for kind, count in (("fabricated-read", fabricated),
                        ("future-read", future),
                        ("expired-read", expired),
                        ("duplicate-version", duplicate_versions),
                        ("cas-lost", cas_lost)):
        if count:
            report.violations[kind] = count
            if len(report.examples) < _MAX_EXAMPLES:
                report.examples.append(f"{kind}: {count} batch read(s)")
    return report
