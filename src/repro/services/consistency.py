"""Probabilistic linearizability checking (Section 10).

With probabilistic quorums the ABD register construction implements
*probabilistic linearizability*: each operation pair misses the
linearization order with probability at most epsilon.  This module
records a register's operation history and checks it against the
sequential specification of a read/write register, reporting the
empirical violation rate so it can be compared with the epsilon the
quorum sizing promised.

Operations in this simulator execute one at a time (the simulated clock
advances inside each), so the history is sequential and the check is
exact: a read is consistent iff it returns the value of the latest
preceding write (or the initial value if none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.services.register import ProbabilisticRegister, RegisterOpResult


@dataclass
class OpRecord:
    """One completed register operation."""

    index: int
    kind: str            # "read" | "write"
    origin: int
    value: Any
    timestamp: Any
    messages: int


@dataclass
class ConsistencyReport:
    """Outcome of checking a recorded history."""

    reads: int
    stale_reads: int     # reads that returned an out-of-date value
    writes: int

    @property
    def violation_rate(self) -> float:
        return self.stale_reads / self.reads if self.reads else 0.0

    def within_epsilon(self, epsilon: float, slack: float = 0.0) -> bool:
        """Whether the empirical violation rate honours the quorum bound."""
        return self.violation_rate <= epsilon + slack


class CheckedRegister:
    """A :class:`ProbabilisticRegister` wrapper that records its history."""

    def __init__(self, register: ProbabilisticRegister) -> None:
        self.register = register
        self.history: List[OpRecord] = []

    def write(self, origin: int, value: Any) -> RegisterOpResult:
        result = self.register.write(origin, value)
        self.history.append(OpRecord(
            index=len(self.history), kind="write", origin=origin,
            value=value, timestamp=result.timestamp,
            messages=result.messages))
        return result

    def read(self, origin: int) -> RegisterOpResult:
        result = self.register.read(origin)
        self.history.append(OpRecord(
            index=len(self.history), kind="read", origin=origin,
            value=result.value, timestamp=result.timestamp,
            messages=result.messages))
        return result

    def check(self, initial_value: Any = None) -> ConsistencyReport:
        """Validate every read against the latest preceding write.

        Sequential histories only (which is what this simulator produces);
        a read returning any older value — including the initial one after
        a write happened — counts as one stale read.
        """
        latest = initial_value
        reads = stale = writes = 0
        for op in self.history:
            if op.kind == "write":
                writes += 1
                latest = op.value
            else:
                reads += 1
                if op.value != latest:
                    stale += 1
        return ConsistencyReport(reads=reads, stale_reads=stale,
                                 writes=writes)
