"""Probabilistically linearizable read/write register (Section 10).

The classic quorum register construction (Attiya–Bar-Noy–Dolev) on top of a
probabilistic biquorum: every operation runs a *query phase* against a
lookup quorum to learn the latest (timestamp, value), and writes run a
*propagate phase* storing the new version to an advertise quorum.  Reads
also write back what they return (the ABD read-repair), so a read that saw
a value makes it visible to subsequent reads.

With probabilistic quorums the intersection — hence the register's
linearizability — holds with probability ``1 - eps`` per operation pair
(the paper: "these protocols in fact implement what is known as
probabilistic linearizability").

Note: the register needs the *collecting* semantics, so lookup strategies
should be constructed with early halting disabled — the query phase must
gather versions from the whole quorum, not stop at the first owner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.biquorum import ProbabilisticBiquorum
from repro.core.strategies import AccessResult


@dataclass(frozen=True)
class Timestamp:
    """Lamport-style version: (counter, writer id) with lexicographic order."""

    counter: int
    writer: int

    def __lt__(self, other: "Timestamp") -> bool:
        return (self.counter, self.writer) < (other.counter, other.writer)

    def next_for(self, writer: int) -> "Timestamp":
        return Timestamp(counter=self.counter + 1, writer=writer)


ZERO_TS = Timestamp(counter=0, writer=-1)


@dataclass
class RegisterOpResult:
    """Outcome of one register operation with message accounting."""

    value: Any
    timestamp: Timestamp
    messages: int
    routing_messages: int
    phases: List[AccessResult]


class ProbabilisticRegister:
    """A single shared read/write register over a probabilistic biquorum."""

    def __init__(self, biquorum: ProbabilisticBiquorum,
                 name: str = "register") -> None:
        self.biquorum = biquorum
        self.net = biquorum.net
        self.name = name
        # replica state: node -> (timestamp, value)
        self._replicas: Dict[int, Tuple[Timestamp, Any]] = {}

    # -- replica plumbing --------------------------------------------------

    def _store(self, node: int, ts: Timestamp, value: Any) -> None:
        current = self._replicas.get(node)
        if current is None or current[0] < ts:
            self._replicas[node] = (ts, value)

    def _read_replica(self, node: int) -> Optional[Tuple[Timestamp, Any]]:
        if not self.net.is_alive(node):
            return None
        return self._replicas.get(node)

    def replicas_at(self, ts: Timestamp) -> List[int]:
        """Alive nodes holding exactly version ``ts`` (for tests/metrics)."""
        return sorted(node for node, (t, _v) in self._replicas.items()
                      if t == ts and self.net.is_alive(node))

    # -- phases ------------------------------------------------------------

    def _query_phase(self, origin: int) -> Tuple[Timestamp, Any, AccessResult]:
        """Collect (ts, value) from a lookup quorum; return the maximum."""
        best: List[Tuple[Timestamp, Any]] = [(ZERO_TS, None)]

        def probe_fn(node: int) -> None:
            state = self._read_replica(node)
            if state is not None and best[0][0] < state[0]:
                best[0] = state
            return None  # collecting probe: never 'hits', never halts

        access = self.biquorum.read(origin, probe_fn)
        ts, value = best[0]
        return ts, value, access

    def _propagate_phase(self, origin: int, ts: Timestamp,
                         value: Any) -> AccessResult:
        def store_fn(node: int) -> None:
            self._store(node, ts, value)

        return self.biquorum.write(origin, store_fn)

    # -- operations ----------------------------------------------------------

    def write(self, origin: int, value: Any) -> RegisterOpResult:
        """Query for the latest timestamp, then store (ts+1, value)."""
        ts, _old, query = self._query_phase(origin)
        new_ts = ts.next_for(origin)
        self._store(origin, new_ts, value)
        prop = self._propagate_phase(origin, new_ts, value)
        return RegisterOpResult(
            value=value, timestamp=new_ts,
            messages=query.messages + prop.messages,
            routing_messages=query.routing_messages + prop.routing_messages,
            phases=[query, prop],
        )

    def read(self, origin: int) -> RegisterOpResult:
        """Query for the latest value, then write it back (read repair)."""
        ts, value, query = self._query_phase(origin)
        phases = [query]
        messages = query.messages
        routing = query.routing_messages
        if ts != ZERO_TS:
            prop = self._propagate_phase(origin, ts, value)
            phases.append(prop)
            messages += prop.messages
            routing += prop.routing_messages
        return RegisterOpResult(value=value, timestamp=ts, messages=messages,
                                routing_messages=routing, phases=phases)
