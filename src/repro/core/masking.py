"""Masking probabilistic quorums: a vote-threshold reply filter.

Crash-fault probabilistic quorums accept the first reply a lookup quorum
returns; a single Byzantine replica can therefore hand back a fabricated
value.  Masking quorums (Malkhi–Reiter, and the probabilistic variant of
Malkhi–Reiter–Wright) size quorums so the advertise/lookup intersection
holds at least ``2b + 1`` members with probability ``1 - eps``; with at
most ``b`` adversarial replicas the *honest* part of the intersection
(``>= b + 1``) then outvotes every fabrication, which can gather at most
``b`` votes.

:class:`MaskingStrategy` wraps any :class:`AccessStrategy` (typically
``RandomStrategy`` — the inner strategy must probe its whole quorum, not
halt early, for votes to accumulate) and applies the ``b + 1`` threshold
to the collected replies:

* a reply with ``>= b + 1`` matching votes wins (``found``; the highest
  version among confirmed candidates is returned),
* two *conflicting* confirmed candidates mark the result
  ``found_corrupt`` (only possible when the threshold is under-sized
  for the live adversary),
* replies exist but none reach the threshold: the result is ``masked``
  — the lookup reports a miss rather than risk a fabrication.

Votes aggregate by *value* (via the service's ``access_vote_key``
annotation), not by (value, version) pair, so honest replicas skewed
across refresh epochs still corroborate each other; versions order the
confirmed candidates.  Sizing lives in
:mod:`repro.analysis.intersection` (``masking_quorum_size``,
``masking_vote_threshold``).
"""

from __future__ import annotations

import re
from typing import Any, Callable, List, Optional, Tuple

from repro.analysis.intersection import masking_vote_threshold
from repro.core.strategies import (
    AccessResult,
    AccessStrategy,
    SimNetwork,
    _reply_version,
)

#: Strategy-name shape emitted by :class:`MaskingStrategy`; the
#: quorum-intersection watcher parses ``b`` and the inner strategy out
#: of it to pick the masking success floor (``Pr[|Qa ∩ Ql| >= 2b+1]``).
MASKING_NAME_RE = re.compile(r"^MASKING\[b=(?P<b>\d+),(?P<inner>[^\]]+)\]$")


def parse_masking_name(name: str) -> Optional[Tuple[int, str]]:
    """``(b, inner_strategy_name)`` for a MaskingStrategy name, else None."""
    match = MASKING_NAME_RE.match(name or "")
    if match is None:
        return None
    return int(match.group("b")), match.group("inner")


class MaskingStrategy(AccessStrategy):
    """Vote-threshold (b-masking) filter over an inner access strategy.

    Advertises delegate untouched; lookups collect every probe reply and
    only accept a value corroborated by ``threshold`` (default ``b+1``)
    distinct replicas.  Runs under both the sequential and batched
    access backends — the filter only observes the probe callback, which
    both backends drive identically.
    """

    def __init__(self, inner: AccessStrategy, b: int,
                 threshold: Optional[int] = None) -> None:
        if b < 0:
            raise ValueError("b must be non-negative")
        self.inner = inner
        self.b = b
        self.threshold = (masking_vote_threshold(b) if threshold is None
                          else threshold)
        if self.threshold < 1:
            raise ValueError("vote threshold must be >= 1")
        self.name = f"MASKING[b={b},{inner.name}]"
        self.uniform_random = inner.uniform_random
        self.access_backend = inner.access_backend

    def _advertise(self, net: SimNetwork, origin: int,
                   store_fn: Callable[[int], Any],
                   target_size: int) -> AccessResult:
        result = self.inner._advertise(net, origin, store_fn, target_size)
        result.strategy = self.name
        return result

    def _lookup(self, net: SimNetwork, origin: int,
                probe_fn: Callable[[int], Any],
                target_size: int) -> AccessResult:
        vote_key = getattr(probe_fn, "access_vote_key", None)
        version_of = getattr(probe_fn, "access_version_of", None)
        # Tally rows: [identity, best_version, votes, best_node, best_reply]
        tally: List[List[Any]] = []

        def collecting(node: int) -> Any:
            reply = probe_fn(node)
            if reply is None:
                return None
            identity = vote_key(reply) if vote_key is not None else reply
            version = _reply_version(version_of, reply)
            for row in tally:
                if row[0] == identity:
                    row[2] += 1
                    if version is not None and (row[1] is None
                                                or version > row[1]):
                        row[1], row[3], row[4] = version, node, reply
                    return reply
            tally.append([identity, version, 1, node, reply])
            return reply

        for attr in ("access_key", "access_version_of", "access_vote_key"):
            value = getattr(probe_fn, attr, None)
            if value is not None:
                setattr(collecting, attr, value)

        result = self.inner._lookup(net, origin, collecting, target_size)
        result.strategy = self.name

        confirmed = [row for row in tally if row[2] >= self.threshold]
        if confirmed:
            confirmed.sort(key=lambda row: (row[1] is not None,
                                            row[1] if row[1] is not None
                                            else 0, row[2]),
                           reverse=True)
            winner = confirmed[0]
            result.found = True
            result.hit_node = winner[3]
            result.hit_value = winner[4]
            result.found_corrupt = len(confirmed) > 1
        elif tally:
            # Replies exist but none is corroborated: mask the read.
            result.found = False
            result.masked = True
            result.hit_node = None
            result.hit_value = None
        return result
