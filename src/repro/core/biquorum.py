"""Probabilistic (bi)quorum systems (Sections 2, 5).

:class:`ProbabilisticBiquorum` pairs an advertise access strategy with a
lookup access strategy — symmetric or *asymmetric* (the paper's central
contribution, Lemma 5.2) — and derives quorum sizes from the target
intersection probability:

* if at least one side is uniformly random, the mix-and-match lemma
  applies and sizes follow Corollary 5.3 (``|Qa| |Ql| >= n ln(1/eps)``),
  split either symmetrically or by Lemma 5.6's cost-optimal ratio;
* if neither side is random (e.g. UNIQUE-PATH x UNIQUE-PATH), intersection
  is driven by the crossing time (Theorem 5.5) and the empirical
  ``~1.5 n / ln n`` sizes from Section 8.5 are used — with a warning that
  these constants are topology dependent (the paper's caveat).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.intersection import (
    asymmetric_quorum_sizes,
    epsilon_for_sizes,
    required_quorum_product,
    symmetric_quorum_size,
)
from repro.analysis.costs import optimal_size_ratio
from repro.analysis.walks import path_x_path_quorum_size
from repro.core.strategies import AccessResult, AccessStrategy, ProbeFn, StoreFn
from repro.simnet.network import SimNetwork


@dataclass(frozen=True)
class QuorumSizing:
    """Chosen advertise/lookup quorum sizes and the epsilon they guarantee."""

    advertise_size: int
    lookup_size: int
    epsilon: float
    guaranteed: bool  # True when backed by Lemma 5.2 (a RANDOM side exists)

    @property
    def product(self) -> int:
        return self.advertise_size * self.lookup_size


def plan_sizes(
    n: int,
    epsilon: float,
    advertise: AccessStrategy,
    lookup: AccessStrategy,
    tau: Optional[float] = None,
    cost_a: Optional[float] = None,
    cost_l: Optional[float] = None,
    advertise_size: Optional[int] = None,
    lookup_size: Optional[int] = None,
) -> QuorumSizing:
    """Derive quorum sizes for a strategy mix at a target epsilon.

    Explicit sizes override the planner.  With ``tau`` (the lookup:advertise
    frequency ratio) and per-node costs, the asymmetric split of Lemma 5.6
    is applied; otherwise sizes are symmetric.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    has_random_side = advertise.uniform_random or lookup.uniform_random

    if advertise_size is not None and lookup_size is not None:
        eps = (epsilon_for_sizes(advertise_size, lookup_size, n)
               if has_random_side else epsilon)
        return QuorumSizing(advertise_size=advertise_size,
                            lookup_size=lookup_size, epsilon=eps,
                            guaranteed=has_random_side)

    if not has_random_side:
        warnings.warn(
            "neither quorum side is uniformly random: intersection is "
            "crossing-time driven and the sizing constants depend on the "
            "topology (Section 8.5)", stacklevel=2)
        q = path_x_path_quorum_size(n)
        return QuorumSizing(
            advertise_size=advertise_size or q,
            lookup_size=lookup_size or q,
            epsilon=epsilon, guaranteed=False)

    if advertise_size is not None:
        product = required_quorum_product(n, epsilon)
        q_l = int(math.ceil(product / advertise_size))
        return QuorumSizing(advertise_size=advertise_size,
                            lookup_size=min(q_l, n), epsilon=epsilon,
                            guaranteed=True)
    if lookup_size is not None:
        product = required_quorum_product(n, epsilon)
        q_a = int(math.ceil(product / lookup_size))
        return QuorumSizing(advertise_size=min(q_a, n),
                            lookup_size=lookup_size, epsilon=epsilon,
                            guaranteed=True)

    if tau is not None and cost_a is not None and cost_l is not None:
        ratio = optimal_size_ratio(tau, cost_a, cost_l)
        q_a, q_l = asymmetric_quorum_sizes(n, epsilon, ratio)
        return QuorumSizing(advertise_size=min(q_a, n),
                            lookup_size=min(q_l, n),
                            epsilon=epsilon, guaranteed=True)

    q = symmetric_quorum_size(n, epsilon)
    return QuorumSizing(advertise_size=min(q, n), lookup_size=min(q, n),
                        epsilon=epsilon, guaranteed=True)


class ProbabilisticBiquorum:
    """An epsilon-intersecting advertise/lookup biquorum system.

    The two strategies may differ (asymmetric biquorum) and sizes are
    derived by :func:`plan_sizes` unless given explicitly.  ``write``
    contacts an advertise quorum applying ``store_fn`` at every member;
    ``read`` contacts a lookup quorum applying ``probe_fn``.
    """

    def __init__(
        self,
        net: SimNetwork,
        advertise: AccessStrategy,
        lookup: AccessStrategy,
        epsilon: float = 0.1,
        tau: Optional[float] = None,
        cost_a: Optional[float] = None,
        cost_l: Optional[float] = None,
        advertise_size: Optional[int] = None,
        lookup_size: Optional[int] = None,
        adjust_to_network_size: bool = True,
    ) -> None:
        self.net = net
        self.advertise_strategy = advertise
        self.lookup_strategy = lookup
        self.epsilon = epsilon
        self._tau = tau
        self._cost_a = cost_a
        self._cost_l = cost_l
        self._fixed_a = advertise_size
        self._fixed_l = lookup_size
        self.adjust_to_network_size = adjust_to_network_size
        self.sizing = self._plan(net.n_alive)
        self.load: Dict[int, int] = {}
        self.accesses: list[AccessResult] = []

    def _plan(self, n: int) -> QuorumSizing:
        return plan_sizes(
            n=n, epsilon=self.epsilon,
            advertise=self.advertise_strategy, lookup=self.lookup_strategy,
            tau=self._tau, cost_a=self._cost_a, cost_l=self._cost_l,
            advertise_size=self._fixed_a, lookup_size=self._fixed_l,
        )

    def set_sizes(self, advertise_size: Optional[int] = None,
                  lookup_size: Optional[int] = None) -> QuorumSizing:
        """Pin explicit quorum sizes (e.g. adjusting |Ql| after churn)."""
        if advertise_size is not None:
            self._fixed_a = advertise_size
        if lookup_size is not None:
            self._fixed_l = lookup_size
        self.sizing = self._plan(self.net.n_alive)
        return self.sizing

    def resize(self, n: Optional[int] = None) -> QuorumSizing:
        """Re-derive sizes for the current (or given) network size.

        Called automatically before each access when
        ``adjust_to_network_size`` is set — the paper's 'adjusted |Ql|'
        maintenance mode (Section 6.1).
        """
        self.sizing = self._plan(n if n is not None else self.net.n_alive)
        return self.sizing

    def _record(self, result: AccessResult) -> AccessResult:
        for node in result.quorum:
            self.load[node] = self.load.get(node, 0) + 1
        self.accesses.append(result)
        return result

    def _check_latency(self, result: AccessResult, elapsed: float) -> None:
        """Cross-check the strategy's latency stamp against the elapsed
        simulated time observed at the biquorum layer.

        The strategy wrapper (``AccessStrategy._run_access``) owns the
        stamp; this independent measurement feeds the auditor so a future
        regression in the wrapper cannot silently report 0.0 again.
        """
        auditor = getattr(self.net, "auditor", None)
        if auditor is None:
            return
        if abs(result.latency - elapsed) > 1e-9:
            auditor.flag(
                "latency-cross-check",
                f"strategy stamped latency {result.latency!r} but the "
                f"biquorum layer observed {elapsed!r}",
                strategy=result.strategy, kind=result.kind)

    def write(self, origin: int, store_fn: StoreFn) -> AccessResult:
        """Access one advertise quorum, storing at every member."""
        if self.adjust_to_network_size:
            self.resize()
        started = self.net.now
        result = self.advertise_strategy.advertise(
            self.net, origin, store_fn, self.sizing.advertise_size)
        self._check_latency(result, self.net.now - started)
        return self._record(result)

    def read(self, origin: int, probe_fn: ProbeFn) -> AccessResult:
        """Access one lookup quorum, probing every member."""
        if self.adjust_to_network_size:
            self.resize()
        started = self.net.now
        result = self.lookup_strategy.lookup(
            self.net, origin, probe_fn, self.sizing.lookup_size)
        self._check_latency(result, self.net.now - started)
        return self._record(result)

    # -- quality metrics (Section 3) -------------------------------------

    def load_distribution(self) -> Dict[int, int]:
        """Per-node access counts observed so far (the 'load' metric)."""
        return dict(self.load)

    def load_balance_ratio(self) -> float:
        """max/mean of per-node load over nodes touched at least once."""
        if not self.load:
            return 1.0
        values = list(self.load.values())
        return max(values) / (sum(values) / len(values))

    def empirical_hit_ratio(self) -> float:
        """Fraction of lookups that found data (intersection estimate)."""
        lookups = [r for r in self.accesses if r.kind == "lookup"]
        if not lookups:
            return 0.0
        return sum(1 for r in lookups if r.found) / len(lookups)

    def message_totals(self) -> Tuple[int, int]:
        """(network messages, routing messages) across all accesses."""
        return (sum(r.messages for r in self.accesses),
                sum(r.routing_messages for r in self.accesses))
