"""Core contribution: probabilistic biquorum systems and access strategies."""

from repro.core.biquorum import (
    ProbabilisticBiquorum,
    QuorumSizing,
    plan_sizes,
)
from repro.core.gossip import GossipFloodStrategy
from repro.core.leases import LeasedEntry, LeaseTable
from repro.core.masking import MaskingStrategy, parse_masking_name
from repro.core.strategies import (
    AccessPolicy,
    AccessResult,
    AccessStrategy,
    FloodingStrategy,
    PathStrategy,
    RandomOptStrategy,
    RandomSamplingStrategy,
    RandomStrategy,
    UniquePathStrategy,
)

__all__ = [
    "GossipFloodStrategy",
    "ProbabilisticBiquorum",
    "QuorumSizing",
    "plan_sizes",
    "AccessPolicy",
    "AccessResult",
    "AccessStrategy",
    "FloodingStrategy",
    "LeaseTable",
    "LeasedEntry",
    "MaskingStrategy",
    "parse_masking_name",
    "PathStrategy",
    "RandomOptStrategy",
    "RandomSamplingStrategy",
    "RandomStrategy",
    "UniquePathStrategy",
]
