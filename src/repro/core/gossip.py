"""Gossip-flood quorum access (Section 4.4, second FLOODING variant).

"FLOODING can also be used to implement advertise quorums, by flooding the
whole network and every node deciding to take part in the advertise quorum
with probability |Q|/n."

Because each node joins independently and uniformly, the resulting quorum
*is* a uniform random set — this strategy can serve as the RANDOM side of
the mix-and-match lemma (it is also the scheme of Chockler et al.'s
sensor-network probabilistic quorums discussed in Section 9.1: global
dissemination with a random responder subset).

Cost profile: a full-network flood (n transmissions) per access — robust
and membership-free, but expensive; cheapest when paired with a cheap
strategy on the frequent side of an asymmetric biquorum.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.strategies import AccessResult, AccessStrategy, ProbeFn, StoreFn
from repro.obs.trace import record_event
from repro.randomwalk.reply import send_reply
from repro.simnet.network import SimNetwork


class GossipFloodStrategy(AccessStrategy):
    """Whole-network flood with probabilistic quorum membership."""

    name = "GOSSIP-FLOOD"
    uniform_random = True

    def __init__(self, rng: Optional[random.Random] = None,
                 max_ttl: int = 64,
                 access_backend: Optional[str] = None) -> None:
        self.rng = rng
        self.max_ttl = max_ttl
        self.access_backend = access_backend

    def _rng(self, net: SimNetwork) -> random.Random:
        return self.rng or net.rngs.stream("gossip-strategy")

    def _flood_everywhere(self, net: SimNetwork, origin: int):
        return net.flood(origin, ttl=self.max_ttl)

    def _select_members(self, net: SimNetwork, covered, target_size: int,
                        rng: random.Random):
        """Each covered node joins independently with p = target/|covered|."""
        if not covered:
            return []
        p = min(1.0, target_size / len(covered))
        members = [node for node in covered if rng.random() < p]
        if not members:  # never return an empty quorum
            members = [rng.choice(list(covered))]
        return members

    def _advertise(self, net: SimNetwork, origin: int, store_fn: StoreFn,
                   target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="advertise",
                              target_size=target_size)
        outcome = self._flood_everywhere(net, origin)
        result.messages += outcome.messages
        members = self._select_members(net, outcome.covered, target_size,
                                       self._rng(net))
        for node in members:
            store_fn(node)
        result.quorum = sorted(members)
        result.success = len(members) >= 1 and (
            outcome.coverage >= 0.8 * net.n_alive)
        return result

    def _lookup(self, net: SimNetwork, origin: int, probe_fn: ProbeFn,
                target_size: int) -> AccessResult:
        """Flood the query; a uniform random subset of covered nodes probes
        and replies over the reverse flood tree."""
        result = AccessResult(strategy=self.name, kind="lookup",
                              target_size=target_size)
        outcome = self._flood_everywhere(net, origin)
        result.messages += outcome.messages
        members = self._select_members(net, outcome.covered, target_size,
                                       self._rng(net))
        result.quorum = sorted(members)
        delivered_any = False
        for node in members:
            value = probe_fn(node)
            if value is None:
                continue
            result.found = True
            if result.hit_node is None:
                result.hit_node = node
                result.hit_value = value
            if node == origin:
                delivered_any = True
                record_event(net, "reply", src=origin, dst=origin,
                             success=True, mechanism="local")
                continue
            reply = send_reply(net, outcome.reverse_path(node),
                               reduction=True)
            result.messages += reply.messages
            result.routing_messages += reply.routing_messages
            delivered_any = delivered_any or reply.success
        if result.found:
            result.reply_delivered = delivered_any
            result.success = delivered_any
        else:
            result.success = len(members) >= 1
        return result
