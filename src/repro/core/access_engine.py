"""Batched access engine: one numpy pass for floods, walks, and probes.

PR 1 vectorized neighbor tables and the Monte-Carlo engine batched the
replica axis; this module batches the *access hot path itself*.  Three
kernels advance all concurrent work items of an access in single numpy
passes over a packed CSR snapshot (:mod:`repro.geometry.csr`):

1. **flood rounds** — the whole ring-``h`` frontier expands in one
   gather/first-occurrence pass (per-round TTL and duplicate
   accounting), instead of one Python broadcast loop per node;
2. **BFS route trees** — RANDOM's probe fan-out resolves every route
   against a level-synchronous numpy BFS tree, memoized per
   ``(topology_version, source)``;
3. **walker batches** — Philox-stream next-hop draws (uniform and
   max-degree-biased) advance whole walker populations in lockstep for
   the large-n analysis path.

The engine is **statistic-identical** to the sequential path.  The
strategy RNG streams are stdlib ``random.Random`` generators, so the
accesses that define reported statistics never move their draws into
numpy: the engine vectorizes only the *deterministic* graph work
(frontier expansion, BFS, membership tests) and replays side effects —
counters, metrics, energy charges, trace events, clock advances — in
exactly the sequential order, with the same float operations.  Whenever
exactness cannot be proven cheaply (pending simulation events inside a
window, random drops, mobility, tracing on a fast path that does not
emit events), the kernel declines and the caller falls back to the
sequential code.  The Philox walk kernel is the one exception: it is an
analysis/benchmark surface with its own counter-based streams,
deliberately outside the statistic-identical contract.

Backend selection: ``NetworkConfig.access_backend`` (env
``REPRO_ACCESS_BACKEND``, default ``batched``) with a per-strategy
override via ``AccessStrategy`` construction.  Cross-replica sharing:
:class:`SharedAccessState` lets the Monte-Carlo builder serve one CSR
snapshot and one BFS memo to every replica of a deployment, under the
same soundness rule as ``TopologyRouteOracle`` (sharing stops at the
first geometry mutation past the attach point).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geometry.csr import CsrCache, CsrSnapshot
from repro.obs.profile import PROFILER
from repro.simnet.replication import BfsTree, bfs_tree

ACCESS_BACKENDS = ("batched", "sequential")

#: Below this population the numpy BFS's per-round call overhead beats
#: the plain deque walk; both are exact, so the cutover is pure perf.
_NUMPY_BFS_MIN_N = 128

#: Per-network BFS-tree memo bound (LRU).  Replication-shared memos are
#: unbounded like the route oracle's (one deployment, few versions).
_MAX_PRIVATE_TREES = 512


def default_access_backend() -> str:
    """Backend from ``REPRO_ACCESS_BACKEND`` (default batched)."""
    backend = os.environ.get("REPRO_ACCESS_BACKEND", "batched")
    return backend if backend in ACCESS_BACKENDS else "batched"


class SharedAccessState:
    """Cross-replica CSR + BFS memo for one deployment.

    Mirrors the ``TopologyRouteOracle`` contract: replicas of one
    deployment adopt the state at the same topology version; any later
    geometry mutation silently detaches the sharer (workload-driven
    churn diverges between replicas, so version equality would no
    longer imply graph equality).
    """

    __slots__ = ("fingerprint", "version", "csr", "trees",
                 "hits", "misses")

    def __init__(self) -> None:
        self.fingerprint: Optional[tuple] = None
        self.version: Optional[int] = None
        self.csr: Optional[CsrSnapshot] = None
        self.trees: Dict[int, BfsTree] = {}
        self.hits = 0
        self.misses = 0


def _deployment_fingerprint(net) -> tuple:
    cfg = net.config
    return (cfg.seed, cfg.n, cfg.avg_degree, cfg.radio_range,
            cfg.mobility, cfg.torus)


class AccessEngine:
    """Per-network batched kernels with staleness-guarded caches."""

    def __init__(self, backend: Optional[str] = None) -> None:
        backend = backend or default_access_backend()
        if backend not in ACCESS_BACKENDS:
            raise ValueError(f"unknown access backend {backend!r}")
        self.backend = backend
        self._forced: Optional[str] = None
        self._csr_cache = CsrCache()
        self._trees: "OrderedDict[int, BfsTree]" = OrderedDict()
        self._trees_version = -1
        self._shared: Optional[SharedAccessState] = None
        self._shared_version = -1
        self.tree_hits = 0
        self.tree_misses = 0

    # -- backend selection ---------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether batched kernels may serve (current override applied)."""
        return (self._forced or self.backend) == "batched"

    @contextmanager
    def forced(self, backend: Optional[str]):
        """Temporarily force a backend (per-strategy override)."""
        if backend is None:
            yield self
            return
        if backend not in ACCESS_BACKENDS:
            raise ValueError(f"unknown access backend {backend!r}")
        previous = self._forced
        self._forced = backend
        try:
            yield self
        finally:
            self._forced = previous

    @staticmethod
    def _static_vectorized(net) -> bool:
        return (net.config.mobility == "static"
                and net.config.neighbor_backend == "vectorized")

    # -- CSR snapshots -------------------------------------------------------

    def _usable_shared(self, net) -> Optional[SharedAccessState]:
        state = self._shared
        if (state is None
                or state.version != net.topology_version):
            return None
        return state

    def adopt_shared(self, net, state: SharedAccessState) -> None:
        """Share CSR/BFS memos with the other replicas of a deployment."""
        fingerprint = _deployment_fingerprint(net)
        if state.fingerprint is None:
            state.fingerprint = fingerprint
            state.version = net.topology_version
        elif state.fingerprint != fingerprint:
            raise ValueError(
                "SharedAccessState shared across different deployments: "
                f"{fingerprint} vs {state.fingerprint}")
        elif state.version != net.topology_version:
            raise ValueError(
                "SharedAccessState adopted at mismatched topology "
                f"versions: {net.topology_version} vs {state.version}")
        self._shared = state
        self._shared_version = net.topology_version

    def true_csr(self, net) -> CsrSnapshot:
        """True-view snapshot (shared across replicas when sound)."""
        state = self._usable_shared(net)
        if state is not None:
            if state.csr is None:
                state.csr = self._csr_cache.true_snapshot(net)
            return state.csr
        return self._csr_cache.true_snapshot(net)

    def known_csr(self, net) -> CsrSnapshot:
        """Known-view (heartbeat) snapshot — always per-network."""
        return self._csr_cache.known_snapshot(net)

    # -- kernel 1: batched flood rounds --------------------------------------

    def flood(self, net, origin: int, ttl: int
              ) -> Optional[Tuple[Dict[int, int], Dict[int, int], int]]:
        """Run a TTL-scoped flood in batched rounds.

        Returns ``(covered, parent, messages)`` matching
        ``SimNetwork.flood`` exactly — same dict insertion order, same
        parent assignment, same per-broadcast side effects — or None
        when the sequential loop must run (backend off, mobility,
        random drops, or python neighbor backend).  Rounds whose
        broadcast window contains a pending simulation event run
        through ``one_hop_broadcast`` so timers and churn interleave
        exactly as they always did; the CSR snapshot re-keys on the
        topology version every round, so mid-flood churn can never be
        served a stale adjacency.
        """
        if (not self.active
                or not self._static_vectorized(net)
                or net.config.drop_prob > 0):
            return None
        covered: Dict[int, int] = {origin: 0}
        parent: Dict[int, int] = {origin: origin}
        mask = np.zeros(max(net._next_id, origin + 1), dtype=bool)
        mask[origin] = True
        messages = 0
        frontier: List[int] = [origin]
        hop = 0
        while frontier and hop < ttl:
            messages += len(frontier)
            nxt = self._flood_round_batched(net, frontier, hop,
                                            covered, parent, mask)
            if nxt is None:
                nxt = self._flood_round_sequential(net, frontier, hop,
                                                   covered, parent, mask)
            frontier = nxt
            hop += 1
        return covered, parent, messages

    @staticmethod
    def _mark_covered(mask: np.ndarray, node: int) -> np.ndarray:
        if node >= mask.size:
            grown = np.zeros(node + 1, dtype=bool)
            grown[:mask.size] = mask
            mask = grown
        mask[node] = True
        return mask

    def _flood_round_sequential(self, net, frontier: List[int], hop: int,
                                covered: Dict[int, int],
                                parent: Dict[int, int],
                                mask: np.ndarray) -> List[int]:
        """One ring through ``one_hop_broadcast`` (events may interleave)."""
        nxt: List[int] = []
        for node in frontier:
            receivers = net.one_hop_broadcast(node)
            for rx in receivers:
                if rx not in covered:
                    covered[rx] = hop + 1
                    parent[rx] = node
                    nxt.append(rx)
                    mask = self._mark_covered(mask, rx)
        return nxt

    def _flood_round_batched(self, net, frontier: List[int], hop: int,
                             covered: Dict[int, int],
                             parent: Dict[int, int],
                             mask: np.ndarray) -> Optional[List[int]]:
        """One ring as a single CSR gather; None if an event interferes."""
        sim = net.sim
        latency = net.config.hop_latency
        # Accumulate by repeated addition: the same float operations the
        # per-broadcast advance() chain performs.
        t_end = sim.now
        for _ in range(len(frontier)):
            t_end += latency
        if sim.next_event_time() <= t_end:
            return None

        alive = net._alive
        alive_frontier = [n for n in frontier if n in alive]
        degree_of: Dict[int, int] = {}
        new_ids: List[int] = []
        new_parents: List[int] = []
        if alive_frontier:
            with PROFILER.phase("access.batch_pass"):
                csr = self.true_csr(net)
                f = np.asarray(alive_frontier, dtype=np.int64)
                rows = csr.rows_of(f)
                starts = csr.indptr[rows]
                counts = (csr.indptr[rows + 1] - starts).astype(np.int64)
                degree_of = dict(zip(alive_frontier, counts.tolist()))
                total = int(counts.sum())
                if total:
                    bounds = np.concatenate(
                        ([0], np.cumsum(counts)[:-1]))
                    gather = (np.arange(total, dtype=np.int64)
                              + np.repeat(starts - bounds, counts))
                    cand = csr.indices[gather]
                    owner = np.repeat(np.arange(len(f)), counts)
                    fresh = ~mask[cand]
                    cand = cand[fresh]
                    owner = owner[fresh]
                    if cand.size:
                        uniq, first = np.unique(cand, return_index=True)
                        order = np.argsort(first, kind="stable")
                        discovered = uniq[order]
                        parents = f[owner[first[order]]]
                        mask[discovered] = True
                        new_ids = discovered.tolist()
                        new_parents = parents.tolist()

        # Replay the per-broadcast side effects in broadcast order.
        trace = net.trace if net.trace.enabled else None
        energy = net.energy
        net.counters["network"] += len(frontier)
        net._metric_broadcasts.inc(len(frontier))
        t = sim.now
        for node in frontier:
            t += latency
            deg = degree_of.get(node)
            if deg is None:  # broadcaster died between rounds
                if trace is not None:
                    trace.record("broadcast", t, src=node,
                                 receivers=0, ok=False)
                continue
            energy.charge_broadcast(node, receivers=deg)
            if trace is not None:
                trace.record("broadcast", t, src=node,
                             receivers=deg, ok=True)
        if t > sim.now:
            sim.run(until=t)

        nxt: List[int] = []
        for rx, par in zip(new_ids, new_parents):
            covered[rx] = hop + 1
            parent[rx] = par
            nxt.append(rx)
        return nxt

    # -- kernel 2: batched BFS route trees -----------------------------------

    def routes_active(self, net) -> bool:
        """Whether route discovery may be served from engine trees."""
        return self.active and self._static_vectorized(net)

    def tree(self, net, src: int) -> Optional[BfsTree]:
        """Memoized BFS tree from ``src``, or None when not applicable.

        The memo key is ``(topology_version, src)`` — the route-oracle
        staleness guard — so churn invalidates by construction.  When a
        :class:`SharedAccessState` is adopted and still sound, the memo
        is the deployment-wide one; otherwise a bounded per-network LRU.
        """
        if not self.routes_active(net):
            return None
        state = self._usable_shared(net)
        if state is not None:
            cached = state.trees.get(src)
            if cached is not None:
                state.hits += 1
                return cached
            state.misses += 1
            tree = bfs_tree(net, src)
            state.trees[src] = tree
            return tree
        version = net.topology_version
        if version != self._trees_version:
            self._trees.clear()
            self._trees_version = version
        cached = self._trees.get(src)
        if cached is not None:
            self._trees.move_to_end(src)
            self.tree_hits += 1
            return cached
        self.tree_misses += 1
        tree = bfs_tree(net, src)
        self._trees[src] = tree
        if len(self._trees) > _MAX_PRIVATE_TREES:
            self._trees.popitem(last=False)
        return tree

    def numpy_tree(self, net, src: int) -> Optional[BfsTree]:
        """Level-synchronous numpy BFS from ``src`` (unmemoized).

        Exact: the frontier expands in discovery order and each row
        scans sorted neighbors, so first-occurrence parents equal the
        sequential FIFO BFS parents (see ``BfsTree``).  Returns None
        when ineligible (small n, dead source, python backend) — the
        caller then walks the graph in Python.
        """
        if (not self.active
                or not self._static_vectorized(net)
                or net.n_alive < _NUMPY_BFS_MIN_N):
            return None
        csr = self.true_csr(net)
        src_row = csr.row_of(src)
        if src_row is None:
            return None
        with PROFILER.phase("access.batch_pass"):
            parent, dist = _numpy_bfs(csr, src_row)
        return BfsTree(source=src, parent=parent, dist=dist)

    # -- fast unicast (walker / reply hot path) ------------------------------

    def unicast_resolver(self, net):
        """A ``send(src, dst) -> bool | None`` fast path, or None.

        Replicates ``one_hop_unicast`` — counters, metrics, energy
        (bystanders from the table degree), clock advance by the same
        float addition — while skipping the per-call neighbor-list
        copies and distance recomputation.  Only issued when provably
        identical: batched backend, static mobility, vectorized tables,
        no random drops, tracing off (the fast path emits no ``hop``
        events).  A ``None`` result from ``send`` means a simulation
        event lands inside the hop window; the caller must fall back to
        ``one_hop_unicast`` for that transmission so the event fires in
        order.
        """
        if (not self.active
                or not self._static_vectorized(net)
                or net.config.drop_prob > 0
                or net.trace.enabled):
            return None
        sim = net.sim
        latency = net.config.hop_latency
        alive = net._alive
        counters = net.counters
        energy = net.energy
        unicasts = net._metric_unicasts
        failures = net._metric_unicast_failures

        def send(src: int, dst: int) -> Optional[bool]:
            if src == dst:  # self-send: table lookups don't model it
                return None
            t = sim.now + latency
            if sim.next_event_time() <= t:
                return None
            tables = net._neighbor_tables()
            counters["network"] += 1
            unicasts.inc()
            if latency > 0:
                sim.run(until=t)
            nbrs = tables.get(src)
            if nbrs is None:  # sender is dead: frame never airs
                ok = False
            elif dst not in alive or dst not in nbrs:
                energy.charge_failed_unicast(src)
                ok = False
            else:
                energy.charge_unicast(src, dst,
                                      bystanders=max(0, len(nbrs) - 1))
                ok = True
            if not ok:
                failures.inc()
            return ok

        return send


# -- numpy BFS ---------------------------------------------------------------


def _numpy_bfs(csr: CsrSnapshot, src_row: int
               ) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Level-synchronous BFS over a CSR snapshot → (parent, dist) dicts."""
    node_ids = csr.node_ids
    indptr = csr.indptr
    nbr_rows = csr.neighbor_rows
    n = len(node_ids)
    parent_row = np.full(n, -1, dtype=np.int64)
    dist_row = np.full(n, -1, dtype=np.int64)
    parent_row[src_row] = src_row
    dist_row[src_row] = 0
    order: List[np.ndarray] = [np.array([src_row], dtype=np.int64)]
    frontier = order[0]
    depth = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = (indptr[frontier + 1] - starts).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            break
        bounds = np.concatenate(([0], np.cumsum(counts)[:-1]))
        gather = (np.arange(total, dtype=np.int64)
                  + np.repeat(starts - bounds, counts))
        cand = nbr_rows[gather]
        owner = np.repeat(frontier, counts)
        fresh = dist_row[cand] < 0
        cand = cand[fresh]
        owner = owner[fresh]
        if not cand.size:
            break
        uniq, first = np.unique(cand, return_index=True)
        idx = np.argsort(first, kind="stable")
        discovered = uniq[idx]
        parent_row[discovered] = owner[first[idx]]
        depth += 1
        dist_row[discovered] = depth
        frontier = discovered
        order.append(discovered)
    rows = np.concatenate(order)
    ids = node_ids[rows].tolist()
    parents = node_ids[parent_row[rows]].tolist()
    dists = dist_row[rows].tolist()
    parent = dict(zip(ids, parents))
    dist = dict(zip(ids, dists))
    return parent, dist


# -- kernel 3: Philox walker batches -----------------------------------------


@dataclass
class WalkBatchOutcome:
    """All walkers of one batched pass, advanced in lockstep.

    ``paths`` holds row indexes into ``node_ids`` with shape
    ``(steps + 1, walkers)``; ``messages`` counts actual transmissions
    per walker (self-loops and stuck walkers transmit nothing).
    """

    node_ids: np.ndarray
    paths: np.ndarray
    messages: np.ndarray
    self_loops: np.ndarray

    @property
    def walkers(self) -> int:
        return self.paths.shape[1]

    @property
    def steps(self) -> int:
        return self.paths.shape[0] - 1

    @property
    def end_nodes(self) -> np.ndarray:
        """Node id each walker ends on."""
        return self.node_ids[self.paths[-1]]

    def unique_counts(self) -> np.ndarray:
        """Distinct nodes visited per walker (coverage statistic)."""
        ordered = np.sort(self.paths, axis=0)
        return 1 + (ordered[1:] != ordered[:-1]).sum(axis=0)


def walk_batch(csr: CsrSnapshot, starts, n_steps: int, seed: int,
               variant: str = "uniform") -> WalkBatchOutcome:
    """Advance a walker population ``n_steps`` steps in one numpy pass.

    ``variant="uniform"`` steps every walker to a uniform neighbor each
    round; ``"max-degree"`` self-loops with probability
    ``1 - d(u)/d_max`` first (RaWMS), making the stationary
    distribution uniform.  Next-hop draws come from a counter-based
    Philox stream keyed on ``seed`` — reproducible for a given
    ``(seed, starts, n_steps, variant)`` and independent of the stdlib
    streams (this kernel is the large-n analysis/bench surface, not the
    statistic-identical access path).  Walkers on isolated rows stay
    put and transmit nothing.
    """
    if variant not in ("uniform", "max-degree"):
        raise ValueError(f"unknown walk variant {variant!r}")
    if n_steps < 0:
        raise ValueError("n_steps must be >= 0")
    start_ids = np.asarray(list(starts), dtype=np.int64)
    rows = np.searchsorted(csr.node_ids, start_ids)
    if len(rows) and ((rows >= len(csr.node_ids)).any()
                      or (csr.node_ids[np.minimum(
                          rows, len(csr.node_ids) - 1)] != start_ids).any()):
        raise ValueError("walk_batch start node not in snapshot")
    walkers = len(rows)
    rng = np.random.Generator(np.random.Philox(key=abs(int(seed))))
    degrees = csr.degrees().astype(np.int64)
    nbr_rows = csr.neighbor_rows
    indptr = csr.indptr
    d_max = int(degrees.max()) if len(degrees) else 1
    d_max = max(d_max, 1)

    paths = np.empty((n_steps + 1, walkers), dtype=np.int64)
    paths[0] = rows
    messages = np.zeros(walkers, dtype=np.int64)
    self_loops = np.zeros(walkers, dtype=np.int64)
    cur = rows.copy()
    with PROFILER.phase("access.batch_pass"):
        for step in range(n_steps):
            d = degrees[cur]
            can_move = d > 0
            if variant == "max-degree":
                move = (rng.random(walkers) < d / d_max) & can_move
                pick_u = rng.random(walkers)
            else:
                move = can_move
                pick_u = rng.random(walkers)
            pick = np.minimum((pick_u * d).astype(np.int64),
                              np.maximum(d - 1, 0))
            nxt = np.where(move, nbr_rows[np.minimum(
                indptr[cur] + pick, len(nbr_rows) - 1 if len(nbr_rows)
                else 0)], cur)
            messages += move
            self_loops += can_move & ~move
            cur = nxt
            paths[step + 1] = cur
    return WalkBatchOutcome(node_ids=csr.node_ids, paths=paths,
                            messages=messages, self_loops=self_loops)
