"""Quorum access strategies (Section 4): RANDOM, RANDOM-OPT, PATH,
UNIQUE-PATH, FLOODING.

Every strategy implements the same two operations against a live
:class:`~repro.simnet.network.SimNetwork`:

* ``advertise(net, origin, store_fn, target_size)`` — contact a quorum of
  nodes and have each run ``store_fn(node)`` (e.g. store an advertisement);
* ``lookup(net, origin, probe_fn, target_size)`` — contact a quorum of
  nodes, running ``probe_fn(node)`` at each; a non-None probe result is a
  *hit*, which (for reply-carrying strategies) is shipped back to the
  originator.

All message accounting follows the paper's convention (Section 8): the
``messages`` field counts network-layer transmissions (a 4-hop routed
application message counts 4), while routing control traffic (AODV
discovery/maintenance) is reported separately in ``routing_messages``.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Set

from repro.analysis.flooding import DEFAULT_KAPPA, ttl_for_coverage
from repro.obs.profile import PROFILER
from repro.obs.trace import TraceTruncated, record_event
from repro.randomwalk.reply import reverse_path_of, send_reply
from repro.randomwalk.walker import max_degree_walk_sample, random_walk
from repro.simnet.network import SimNetwork

StoreFn = Callable[[int], None]
ProbeFn = Callable[[int], Optional[Any]]


def _live_trace(net: SimNetwork):
    """The network's event trace, or None when absent/disabled."""
    trace = getattr(net, "trace", None)
    if trace is not None and trace.enabled:
        return trace
    return None


def _traced_store(net: SimNetwork, trace, store_fn: StoreFn) -> StoreFn:
    # Services annotate callbacks with the key they operate on
    # (``access_key``) and, when versioned, the version being written
    # (``access_version``); watchers use these to cross-check replies
    # against prior stores.  Absent on bare callbacks — events stay
    # keyless/versionless.
    key = getattr(store_fn, "access_key", None)
    version = getattr(store_fn, "access_version", None)

    def wrapped(node: int) -> None:
        store_fn(node)
        if key is None:
            trace.record("store", net.now, node=node)
        elif version is None:
            trace.record("store", net.now, node=node, key=key)
        else:
            trace.record("store", net.now, node=node, key=key,
                         version=version)
    return wrapped


def _traced_probe(net: SimNetwork, trace, probe_fn: ProbeFn) -> ProbeFn:
    key = getattr(probe_fn, "access_key", None)
    version_of = getattr(probe_fn, "access_version_of", None)

    def wrapped(node: int) -> Optional[Any]:
        value = probe_fn(node)
        if key is None:
            trace.record("probe", net.now, node=node, hit=value is not None)
            return value
        version = _reply_version(version_of, value)
        if version is None:
            trace.record("probe", net.now, node=node,
                         hit=value is not None, key=key)
        else:
            trace.record("probe", net.now, node=node, hit=True, key=key,
                         version=version)
        return value
    return wrapped


def _reply_version(version_of, value) -> Optional[Any]:
    """Extract a reply's version via the service annotation, if any."""
    if version_of is None or value is None:
        return None
    try:
        return version_of(value)
    except (TypeError, IndexError, KeyError, AttributeError):
        return None


def _publish_access_metrics(net: SimNetwork, result: "AccessResult") -> None:
    """Populate the uniform per-access metrics (see DESIGN.md)."""
    metrics = getattr(net, "metrics", None)
    if metrics is None:
        return
    prefix = f"access.{result.kind}"
    metrics.counter(prefix + ".count").inc()
    metrics.counter(prefix + ".messages").inc(result.messages)
    metrics.counter(prefix + ".routing").inc(result.routing_messages)
    if result.kind == "lookup" and result.found:
        metrics.counter(prefix + ".hits").inc()
        if result.reply_delivered is False:
            metrics.counter(prefix + ".reply_drops").inc()
    if result.kind == "lookup":
        if result.masked:
            metrics.counter(prefix + ".masked").inc()
        if result.found_corrupt:
            metrics.counter(prefix + ".found_corrupt").inc()
    metrics.histogram(prefix + ".latency").observe(result.latency)
    metrics.histogram(prefix + ".quorum_size").observe(result.quorum_size)


@dataclass(frozen=True)
class AccessPolicy:
    """Deadline/retry/backoff envelope for quorum accesses (robustness
    layer; the paper assumes accesses always complete).

    ``deadline`` bounds the whole access including retries, in simulated
    seconds.  A failed attempt is retried up to ``max_retries`` times
    after an exponential backoff ``backoff_base * backoff_factor**(i-1)``
    (capped at ``backoff_max``), desynchronised by a proportional jitter
    drawn from the dedicated ``access-policy`` RNG stream.  A retry is
    only launched when the backoff still fits inside the deadline.
    """

    deadline: Optional[float] = None     # seconds; None = unbounded
    max_retries: int = 0                 # extra attempts after the first
    backoff_base: float = 0.05           # seconds before the first retry
    backoff_factor: float = 2.0          # exponential growth per retry
    backoff_max: float = 5.0             # backoff ceiling, pre-jitter
    jitter: float = 0.1                  # +U(0, jitter) fraction of backoff

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base > 0 and backoff_factor >= 1 required")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    @property
    def active(self) -> bool:
        """Whether the policy changes anything over the bare access."""
        return self.max_retries > 0 or self.deadline is not None

    def backoff_before(self, retry_index: int,
                       rng: random.Random) -> float:
        """Backoff (seconds) before retry ``retry_index`` (1-based)."""
        base = min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** (retry_index - 1))
        if self.jitter > 0:
            base += base * self.jitter * rng.random()
        return base


@dataclass
class AccessResult:
    """Outcome and cost accounting of one quorum access."""

    strategy: str
    kind: str                        # "advertise" | "lookup"
    quorum: List[int] = field(default_factory=list)  # distinct nodes reached
    messages: int = 0                # network-layer messages (incl. replies)
    routing_messages: int = 0        # routing control overhead
    success: bool = False            # access achieved its goal
    found: bool = False              # lookup: some probed node had the datum
    hit_node: Optional[int] = None
    hit_value: Any = None
    reply_delivered: Optional[bool] = None  # None if no reply was needed
    target_size: int = 0
    overheard: bool = False          # hit came from promiscuous overhearing
    latency: float = 0.0             # simulated seconds the access took
    attempts: int = 1                # policy attempts consumed (1 = no retry)
    deadline_missed: bool = False    # policy deadline was blown
    found_corrupt: bool = False      # masking: conflicting confirmed values
    masked: bool = False             # masking: no reply reached the threshold

    @property
    def quorum_size(self) -> int:
        return len(self.quorum)

    @property
    def total_messages(self) -> int:
        return self.messages + self.routing_messages

    @property
    def verdict(self) -> str:
        """Reply-filter verdict: found / found_corrupt / masked / miss.

        Plain (non-masking) strategies only ever report ``found`` or
        ``miss``; :class:`repro.core.masking.MaskingStrategy` sets
        ``masked`` when replies exist but none gathered ``b + 1`` votes,
        and ``found_corrupt`` when two conflicting values both did.
        """
        if self.masked:
            return "masked"
        if self.found_corrupt:
            return "found_corrupt"
        return "found" if self.found else "miss"


class AccessStrategy(ABC):
    """Base class for quorum access strategies.

    ``advertise``/``lookup`` are template methods: they stamp
    ``AccessResult.latency`` from the network clock at entry/exit (so
    direct-strategy callers get real latencies, not just those routed
    through :class:`~repro.core.biquorum.ProbabilisticBiquorum`), trace
    the access boundaries plus store/probe events, publish the uniform
    per-access metrics, and — when the network carries an accounting
    auditor — cross-check the result against the traced event stream.
    Subclasses implement ``_advertise``/``_lookup``.
    """

    #: Strategy name (matches :mod:`repro.analysis.costs` constants).
    name: str = "?"
    #: Whether accesses hit uniformly random nodes — i.e. whether this
    #: strategy can serve as the RANDOM side of the mix-and-match lemma.
    uniform_random: bool = False
    #: Optional deadline/retry envelope applied by ``_run_access``.
    policy: Optional[AccessPolicy] = None
    #: Per-strategy access-engine override ("batched" | "sequential");
    #: None inherits the network's configured backend.
    access_backend: Optional[str] = None

    def set_policy(self, policy: Optional[AccessPolicy]) -> "AccessStrategy":
        """Attach (or clear) a retry/deadline policy; returns self."""
        self.policy = policy
        return self

    def set_access_backend(self, backend: Optional[str]) -> "AccessStrategy":
        """Force an access-engine backend for this strategy; returns self."""
        self.access_backend = backend
        return self

    def advertise(self, net: SimNetwork, origin: int, store_fn: StoreFn,
                  target_size: int) -> AccessResult:
        """Contact an advertise quorum, storing at each member."""
        return self._run_access(net, "advertise", self._advertise,
                                origin, store_fn, target_size)

    def lookup(self, net: SimNetwork, origin: int, probe_fn: ProbeFn,
               target_size: int) -> AccessResult:
        """Contact a lookup quorum, probing each member."""
        return self._run_access(net, "lookup", self._lookup,
                                origin, probe_fn, target_size)

    def _run_access(self, net: SimNetwork, kind: str, impl: Callable,
                    origin: int, callback: Callable,
                    target_size: int) -> AccessResult:
        """Run the access under the attached :class:`AccessPolicy`.

        Each *attempt* is a fully audited/traced/metered access (see
        :meth:`_run_attempt`); the policy loop sits above the per-attempt
        accounting, waiting out backoffs on the simulated clock, so
        per-attempt audits stay balanced.  The returned result carries
        the *cumulative* message cost and total elapsed latency.
        """
        policy = self.policy
        if policy is None or not policy.active:
            return self._run_attempt(net, kind, impl, origin, callback,
                                     target_size)
        started = net.now
        rng = net.rngs.stream("access-policy")
        metrics = getattr(net, "metrics", None)
        result = self._run_attempt(net, kind, impl, origin, callback,
                                   target_size)
        attempts = 1
        messages = result.messages
        routing = result.routing_messages
        deadline_abandoned = False
        while not result.success and attempts <= policy.max_retries:
            backoff = policy.backoff_before(attempts, rng)
            if (policy.deadline is not None
                    and (net.now - started) + backoff >= policy.deadline):
                deadline_abandoned = True
                break
            record_event(net, "access-retry", strategy=self.name,
                         access=kind, origin=origin, attempt=attempts,
                         backoff=backoff)
            if metrics is not None:
                metrics.counter("access.retries").inc()
            net.advance(backoff)
            result = self._run_attempt(net, kind, impl, origin, callback,
                                       target_size)
            attempts += 1
            messages += result.messages
            routing += result.routing_messages
        result.attempts = attempts
        result.messages = messages
        result.routing_messages = routing
        result.latency = net.now - started
        if policy.deadline is not None and (
                result.latency > policy.deadline
                or deadline_abandoned
                or not result.success):
            result.deadline_missed = True
            record_event(net, "access-deadline-miss", strategy=self.name,
                         access=kind, origin=origin, attempts=attempts,
                         elapsed=result.latency)
            if metrics is not None:
                metrics.counter("access.deadline_misses").inc()
        return result

    def _run_attempt(self, net: SimNetwork, kind: str, impl: Callable,
                     origin: int, callback: Callable,
                     target_size: int) -> AccessResult:
        trace = _live_trace(net)
        mark = trace.mark() if trace is not None else None
        started = net.now
        access_key = getattr(callback, "access_key", None)
        version_of = getattr(callback, "access_version_of", None)
        byzantine = getattr(net, "byzantine", None)
        if byzantine is not None and byzantine.active:
            # Interpose the adversary *under* the tracing wrappers: the
            # trace then records the protocol's deceived view (acked
            # stores that were discarded, fabricated probe hits).
            if kind == "advertise":
                callback = byzantine.wrap_store(callback)
            else:
                callback = byzantine.wrap_probe(callback)
        if trace is not None:
            extra = {} if access_key is None else {"key": access_key}
            trace.record("access-start", started, strategy=self.name,
                         access=kind, origin=origin,
                         target_size=target_size, **extra)
            if kind == "advertise":
                callback = _traced_store(net, trace, callback)
            else:
                callback = _traced_probe(net, trace, callback)
        engine = getattr(net, "access_engine", None)
        with PROFILER.phase(f"access.{kind}"):
            if engine is not None:
                with engine.forced(self.access_backend):
                    result = impl(net, origin, callback, target_size)
            else:
                result = impl(net, origin, callback, target_size)
        result.latency = net.now - started
        if trace is not None:
            extra = {} if access_key is None else {"key": access_key}
            if kind == "lookup" and result.found:
                # Stamp the *accepted* reply's version so watchers can
                # verify the returned value was once legitimately stored
                # (fabrications carry versions no one ever wrote).
                version = _reply_version(version_of, result.hit_value)
                if version is not None:
                    extra["version"] = version
            if result.masked or result.found_corrupt:
                extra["verdict"] = result.verdict
            trace.record("access-end", net.now, strategy=self.name,
                         access=kind, origin=origin,
                         messages=result.messages,
                         routing=result.routing_messages,
                         success=result.success,
                         found=result.found,
                         reply=result.reply_delivered,
                         quorum=result.quorum_size, **extra)
        _publish_access_metrics(net, result)
        auditor = getattr(net, "auditor", None)
        if auditor is not None and mark is not None:
            try:
                events = trace.events_since(mark)
            except TraceTruncated as exc:
                # Retention dropped events this audit needs.  Surface it
                # as a violation: strict mode raises (via flag), record
                # mode keeps the run alive and notes the gap.
                auditor.flag("trace-truncated", str(exc),
                             strategy=self.name, kind=kind)
            else:
                auditor.check(result, events)
        return result

    @abstractmethod
    def _advertise(self, net: SimNetwork, origin: int, store_fn: StoreFn,
                   target_size: int) -> AccessResult:
        """Strategy-specific advertise implementation."""

    @abstractmethod
    def _lookup(self, net: SimNetwork, origin: int, probe_fn: ProbeFn,
                target_size: int) -> AccessResult:
        """Strategy-specific lookup implementation."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# Routed-unicast access primitives (shared by membership-based strategies
# and the algebraic systems in repro.quorum.access)
# ---------------------------------------------------------------------------


def routed_reach(net: SimNetwork, origin: int, target: int,
                 result: AccessResult) -> bool:
    """Route one application message ``origin -> target``, charging the
    data and routing cost to ``result``; True on delivery."""
    route = net.route(origin, target)
    result.messages += route.data_messages
    result.routing_messages += route.routing_messages
    return route.success


def routed_reply(net: SimNetwork, src: int, origin: int,
                 result: AccessResult) -> bool:
    """A storing node replies to the originator via routing.

    Charges the reply cost, records the ``reply`` trace event, and
    updates ``result.reply_delivered`` with sticky-success semantics (a
    later failed reply never clears an earlier delivery).
    """
    reply = net.route(src, origin)
    result.messages += reply.data_messages
    result.routing_messages += reply.routing_messages
    record_event(net, "reply", src=src, dst=origin,
                 success=reply.success, mechanism="routed")
    if reply.success:
        result.reply_delivered = True
    elif result.reply_delivered is None:
        result.reply_delivered = False
    return reply.success


# ---------------------------------------------------------------------------
# RANDOM (membership-based, Section 4.1)
# ---------------------------------------------------------------------------


class RandomStrategy(AccessStrategy):
    """Uniform-random quorum via a membership service plus unicast routing.

    The method of Malkhi et al.: pick ``|Q|`` uniformly random node ids
    from the membership view and contact each through multi-hop routing.
    On a routing failure the strategy *adapts* (Section 6.2): it picks a
    replacement random node rather than retrying the dead one.

    ``serial_lookup=True`` contacts lookup targets one at a time and stops
    at the first delivered hit (the early-halting variant the paper notes
    would halve the accessed nodes at a latency cost); the default is the
    paper's parallel access.
    """

    name = "RANDOM"
    uniform_random = True

    def __init__(self, membership: Any, rng: Optional[random.Random] = None,
                 serial_lookup: bool = False, adaptation_retries: int = 2,
                 access_backend: Optional[str] = None) -> None:
        self.membership = membership
        self.rng = rng
        self.serial_lookup = serial_lookup
        self.adaptation_retries = adaptation_retries
        self.access_backend = access_backend

    def _rng(self, net: SimNetwork) -> random.Random:
        return self.rng or net.rngs.stream("random-strategy")

    def _pick_targets(self, net: SimNetwork, origin: int, k: int) -> List[int]:
        return self.membership.sample_for(origin, k, self._rng(net))

    def _reach(self, net: SimNetwork, origin: int, target: int,
               result: AccessResult) -> bool:
        return routed_reach(net, origin, target, result)

    def _replacement(self, net: SimNetwork, origin: int, reached: Set[int],
                     rng: random.Random, draws: int = 4) -> Optional[int]:
        """Draw an adaptation replacement target (Section 6.2).

        Already-reached nodes are excluded at sampling time: a duplicate
        draw costs no transmission, so it must not burn a retry attempt
        — the retry budget counts actual adaptation transmissions.
        Exhausting the draw budget on duplicates truncates adaptation;
        that is no longer silent: it emits an
        ``access-adaptation-exhausted`` trace event and bumps the
        ``access.adaptation_exhausted`` counter so audits can see it.
        """
        for _ in range(draws):
            replacements = self.membership.sample_for(origin, 1, rng)
            if not replacements:
                return None
            if replacements[0] not in reached:
                return replacements[0]
        record_event(net, "access-adaptation-exhausted", strategy=self.name,
                     origin=origin, reached=len(reached), draws=draws)
        metrics = getattr(net, "metrics", None)
        if metrics is not None:
            metrics.counter("access.adaptation_exhausted").inc()
        return None

    def _advertise(self, net: SimNetwork, origin: int, store_fn: StoreFn,
                   target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="advertise",
                              target_size=target_size)
        reached: Set[int] = set()
        targets = self._pick_targets(net, origin, target_size)
        rng = self._rng(net)
        for target in targets:
            attempts = 0
            current: Optional[int] = target
            while current is not None and attempts <= self.adaptation_retries:
                if current in reached:
                    # Duplicate target: nothing was sent, swap it out
                    # without consuming the retry budget.
                    current = self._replacement(net, origin, reached, rng)
                    continue
                if self._reach(net, origin, current, result):
                    reached.add(current)
                    store_fn(current)
                    break
                attempts += 1
                current = self._replacement(net, origin, reached, rng)
        result.quorum = sorted(reached)
        result.success = len(reached) >= min(target_size,
                                             max(1, net.n_alive - 1))
        return result

    def _lookup(self, net: SimNetwork, origin: int, probe_fn: ProbeFn,
                target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="lookup",
                              target_size=target_size)
        reached: Set[int] = set()
        targets = self._pick_targets(net, origin, target_size)
        rng = self._rng(net)
        for target in targets:
            attempts = 0
            current: Optional[int] = target
            while current is not None and attempts <= self.adaptation_retries:
                if current in reached:
                    current = self._replacement(net, origin, reached, rng)
                    continue
                if self._reach(net, origin, current, result):
                    reached.add(current)
                    value = probe_fn(current)
                    if value is not None:
                        result.found = True
                        if result.hit_node is None:
                            result.hit_node = current
                            result.hit_value = value
                        # Hit: the storing node replies via routing.
                        routed_reply(net, current, origin, result)
                    break
                attempts += 1
                current = self._replacement(net, origin, reached, rng)
            if (self.serial_lookup and result.found
                    and result.reply_delivered):
                break
        result.quorum = sorted(reached)
        result.success = bool(result.found and result.reply_delivered) or (
            not result.found and len(reached) >= min(target_size,
                                                     max(1, net.n_alive - 1)))
        return result


# ---------------------------------------------------------------------------
# RANDOM (direct sampling via max-degree walks, Section 4.1)
# ---------------------------------------------------------------------------


class RandomSamplingStrategy(AccessStrategy):
    """Uniform-random quorum with no membership service: each member is the
    end node of a max-degree random walk of ~mixing-time length (RaWMS).

    Expensive (Theta(|Q| * T_mix) messages) but fully routing-free.
    Replies travel back over the sampling walk's reverse path.
    """

    name = "RANDOM-SAMPLING"
    uniform_random = True

    def __init__(self, walk_length: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 max_extra_walks: int = 8,
                 access_backend: Optional[str] = None) -> None:
        self.walk_length = walk_length
        self.rng = rng
        self.max_extra_walks = max_extra_walks
        self.access_backend = access_backend

    def _rng(self, net: SimNetwork) -> random.Random:
        return self.rng or net.rngs.stream("sampling-strategy")

    def _collect(self, net: SimNetwork, origin: int, k: int,
                 result: AccessResult,
                 on_member: Callable[[int, List[int]], bool]) -> None:
        """Run MD walks until ``k`` distinct members were accessed.

        ``on_member(node, walk_path)`` returns True to halt the access.
        """
        rng = self._rng(net)
        members: Set[int] = set()
        budget = k + self.max_extra_walks
        walks = 0
        while len(members) < k and walks < budget:
            walks += 1
            sample = max_degree_walk_sample(
                net, origin, walk_length=self.walk_length, rng=rng)
            result.messages += sample.messages
            if sample.node is None or sample.node in members:
                continue  # collision or dropped walk: start another
            members.add(sample.node)
            if on_member(sample.node, sample.path):
                break
        result.quorum = sorted(members)

    def _advertise(self, net: SimNetwork, origin: int, store_fn: StoreFn,
                   target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="advertise",
                              target_size=target_size)

        def on_member(node: int, _path: List[int]) -> bool:
            store_fn(node)
            return False

        self._collect(net, origin, target_size, result, on_member)
        result.success = len(result.quorum) >= min(target_size,
                                                   max(1, net.n_alive - 1))
        return result

    def _lookup(self, net: SimNetwork, origin: int, probe_fn: ProbeFn,
                target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="lookup",
                              target_size=target_size)

        def on_member(node: int, path: List[int]) -> bool:
            value = probe_fn(node)
            if value is None:
                return False
            result.found = True
            if result.hit_node is None:
                # Keep the first hit: a later hit whose reply fails must
                # not clobber a datum the originator already received
                # (same semantics as RandomStrategy).
                result.hit_node = node
                result.hit_value = value
            reply = send_reply(net, reverse_path_of(path), reduction=True)
            result.messages += reply.messages
            result.routing_messages += reply.routing_messages
            if reply.success:
                result.reply_delivered = True
            elif result.reply_delivered is None:
                result.reply_delivered = False
            return False  # paper's parallel semantics: no early halt

        self._collect(net, origin, target_size, result, on_member)
        result.success = bool(result.found and result.reply_delivered) or (
            not result.found
            and len(result.quorum) >= min(target_size,
                                          max(1, net.n_alive - 1)))
        return result


# ---------------------------------------------------------------------------
# PATH / UNIQUE-PATH (Sections 4.2, 4.3)
# ---------------------------------------------------------------------------


class PathStrategy(AccessStrategy):
    """Random-walk quorum access.

    ``unique=True`` gives UNIQUE-PATH (self-avoiding walk, Section 4.3).
    Lookup walks halt early on the first hit (Section 7.1) when
    ``early_halting`` is set, and the hit node replies over the reverse
    walk path with optional path reduction (Section 7.2) and local repair
    (Section 6.2).
    """

    name = "PATH"
    uniform_random = False

    def __init__(self, unique: bool = False, salvation: bool = True,
                 early_halting: bool = True, reply_reduction: bool = True,
                 local_repair: bool = False, repair_ttl: int = 3,
                 allow_global_repair: bool = True,
                 overhearing: bool = False,
                 rng: Optional[random.Random] = None,
                 access_backend: Optional[str] = None) -> None:
        self.unique = unique
        self.access_backend = access_backend
        self.salvation = salvation
        self.early_halting = early_halting
        self.reply_reduction = reply_reduction
        self.local_repair = local_repair
        self.repair_ttl = repair_ttl
        self.allow_global_repair = allow_global_repair
        #: Section 7.2: nodes overhear walk frames in promiscuous mode; a
        #: neighbor of the walk's current node that holds the datum replies
        #: immediately, effectively widening the quorum to the walk's whole
        #: one-hop neighborhood (the paper left evaluating this to future
        #: work; we implement and ablate it).
        self.overhearing = overhearing
        self.rng = rng
        if unique:
            self.name = "UNIQUE-PATH"

    def _rng(self, net: SimNetwork) -> random.Random:
        return self.rng or net.rngs.stream("path-strategy")

    def _advertise(self, net: SimNetwork, origin: int, store_fn: StoreFn,
                   target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="advertise",
                              target_size=target_size)
        walk = random_walk(net, origin, target_unique=target_size,
                           unique=self.unique, salvation=self.salvation,
                           visit=store_fn, rng=self._rng(net))
        result.quorum = sorted(walk.visited)
        result.messages = walk.messages
        result.success = walk.completed
        return result

    def _lookup(self, net: SimNetwork, origin: int, probe_fn: ProbeFn,
                target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="lookup",
                              target_size=target_size)

        def stop(node: int) -> bool:
            value = probe_fn(node)
            if value is not None:
                result.found = True
                result.hit_node = node
                result.hit_value = value
                return self.early_halting
            if self.overhearing:
                # Promiscuous neighbors heard the walk frame; any that
                # stores the datum unicasts it to the current node, which
                # halts the walk (Section 7.2).
                for neighbor in net.true_neighbors(node):
                    value = probe_fn(neighbor)
                    if value is not None:
                        result.messages += 1  # neighbor -> current node
                        record_event(net, "virtual-msg", reason="overhear",
                                     src=neighbor, dst=node)
                        result.found = True
                        result.overheard = True
                        result.hit_node = node  # reply continues from here
                        result.hit_value = value
                        return self.early_halting
            return False

        walk = random_walk(net, origin, target_unique=target_size,
                           unique=self.unique, salvation=self.salvation,
                           stop_predicate=stop, rng=self._rng(net))
        result.quorum = sorted(walk.visited)
        result.messages += walk.messages
        if result.found:
            hit = result.hit_node
            assert hit is not None
            if hit == origin:
                result.reply_delivered = True
                record_event(net, "reply", src=origin, dst=origin,
                             success=True, mechanism="local")
            else:
                # Reply travels the reverse walk path (no routing).
                cut = walk.path.index(hit) if hit in walk.path else len(walk.path) - 1
                reply = send_reply(
                    net, reverse_path_of(walk.path[:cut + 1]),
                    reduction=self.reply_reduction,
                    local_repair=self.local_repair,
                    repair_ttl=self.repair_ttl,
                    allow_global_repair=self.allow_global_repair,
                )
                result.messages += reply.messages
                result.routing_messages += reply.routing_messages
                result.reply_delivered = reply.success
            result.success = bool(result.reply_delivered)
        else:
            result.success = walk.completed
        return result


class UniquePathStrategy(PathStrategy):
    """Self-avoiding random-walk access (UNIQUE-PATH, Section 4.3)."""

    def __init__(self, **kwargs: Any) -> None:
        kwargs.pop("unique", None)
        super().__init__(unique=True, **kwargs)


# ---------------------------------------------------------------------------
# FLOODING (Section 4.4)
# ---------------------------------------------------------------------------


class FloodingStrategy(AccessStrategy):
    """TTL-scoped flooding access.

    Two TTL selection modes from the paper:

    * *analytic* (default): the deployment density is known, so the TTL for
      a target quorum size comes from the coverage model
      (:func:`repro.analysis.flooding.ttl_for_coverage`);
    * *expanding ring* (``expanding_ring=True``): successive floods with
      growing TTL until enough nodes acked, robust to unknown density but
      costlier.

    A fixed ``ttl`` overrides both (used by the Figure 11 sweeps).
    Lookup hits reply along the reverse flood tree.
    """

    name = "FLOODING"
    uniform_random = False

    def __init__(self, ttl: Optional[int] = None, expanding_ring: bool = False,
                 kappa: float = DEFAULT_KAPPA,
                 count_acks: bool = True,
                 access_backend: Optional[str] = None) -> None:
        self.ttl = ttl
        self.expanding_ring = expanding_ring
        self.kappa = kappa
        self.count_acks = count_acks
        self.access_backend = access_backend

    def _analytic_ttl(self, net: SimNetwork, target_size: int) -> int:
        target = min(target_size, net.n_alive)
        return max(1, ttl_for_coverage(net.n_alive, net.config.avg_degree,
                                       target, self.kappa))

    def _flood_to_target(self, net: SimNetwork, origin: int, target_size: int,
                         result: AccessResult):
        if self.ttl is not None:
            outcome = net.flood(origin, self.ttl)
            result.messages += outcome.messages
            return outcome
        if not self.expanding_ring:
            outcome = net.flood(origin, self._analytic_ttl(net, target_size))
            result.messages += outcome.messages
            return outcome
        # Expanding ring: grow the TTL until coverage suffices.  Covered
        # nodes acknowledge so the originator can count them; acks are
        # combined along the reverse tree (one message per covered node).
        ttl = 1
        outcome = net.flood(origin, ttl)
        result.messages += outcome.messages
        self._count_acks(net, result, outcome)
        while outcome.coverage < min(target_size, net.n_alive) and ttl < 64:
            ttl += 1
            outcome = net.flood(origin, ttl)
            result.messages += outcome.messages
            self._count_acks(net, result, outcome)
        return outcome

    def _count_acks(self, net: SimNetwork, result: AccessResult,
                    outcome) -> None:
        """Charge the per-covered-node ack messages (modeled, not sent)."""
        if not self.count_acks:
            return
        acks = max(0, outcome.coverage - 1)
        if acks:
            result.messages += acks
            record_event(net, "virtual-msg", reason="flood-ack", count=acks)

    def _advertise(self, net: SimNetwork, origin: int, store_fn: StoreFn,
                   target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="advertise",
                              target_size=target_size)
        outcome = self._flood_to_target(net, origin, target_size, result)
        for node in outcome.covered:
            store_fn(node)
        result.quorum = sorted(outcome.covered)
        result.success = outcome.coverage >= min(target_size, net.n_alive)
        return result

    def _lookup(self, net: SimNetwork, origin: int, probe_fn: ProbeFn,
                target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="lookup",
                              target_size=target_size)
        outcome = self._flood_to_target(net, origin, target_size, result)
        result.quorum = sorted(outcome.covered)
        delivered_any = False
        for node in outcome.covered:
            value = probe_fn(node)
            if value is None:
                continue
            result.found = True
            if result.hit_node is None:
                result.hit_node = node
                result.hit_value = value
            # Every hit node replies along the reverse flood tree
            # (FLOODING sends multiple redundant replies, Section 4.4).
            if node == origin:
                delivered_any = True
                record_event(net, "reply", src=origin, dst=origin,
                             success=True, mechanism="local")
                continue
            reply = send_reply(net, outcome.reverse_path(node),
                               reduction=True)
            result.messages += reply.messages
            result.routing_messages += reply.routing_messages
            delivered_any = delivered_any or reply.success
        if result.found:
            result.reply_delivered = delivered_any
            result.success = delivered_any
        else:
            result.success = outcome.coverage >= min(target_size,
                                                     net.n_alive)
        return result


# ---------------------------------------------------------------------------
# RANDOM-OPT (Section 4.5)
# ---------------------------------------------------------------------------


class RandomOptStrategy(AccessStrategy):
    """Cross-layer optimised RANDOM (Section 4.5).

    Messages are still routed to uniformly random targets, but every
    *intermediate* node on the route passes the message to the location
    layer: lookups probe (and halt the forwarding on a hit, replying to the
    originator), advertisements are stored en route.  Reaching an effective
    quorum of ``sqrt(n ln n)`` nodes only takes ~``ln n`` routed messages.

    Note (paper): RANDOM-OPT accesses are *not* uniformly random, so it
    cannot serve as the RANDOM side of the mix-and-match lemma.
    """

    name = "RANDOM-OPT"
    uniform_random = False

    def __init__(self, membership: Any, initiations: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 access_backend: Optional[str] = None) -> None:
        self.membership = membership
        self.initiations = initiations
        self.rng = rng
        self.access_backend = access_backend

    def _rng(self, net: SimNetwork) -> random.Random:
        return self.rng or net.rngs.stream("random-opt-strategy")

    def default_initiations(self, net: SimNetwork) -> int:
        """The paper's finding: ~ln(n) initiations give 0.9 intersection."""
        return max(1, int(round(math.log(max(2, net.n_alive)))))

    def _advertise(self, net: SimNetwork, origin: int, store_fn: StoreFn,
                   target_size: int) -> AccessResult:
        result = AccessResult(strategy=self.name, kind="advertise",
                              target_size=target_size)
        rng = self._rng(net)
        stored: Set[int] = set()
        initiations = self.initiations or self.default_initiations(net)
        fast = net.access_engine.unicast_resolver(net)
        sent = 0
        # Keep initiating routed sends until both the initiation budget is
        # used AND the en-route quorum reached the target size.
        while sent < initiations or len(stored) < target_size:
            targets = self.membership.sample_for(origin, 1, rng)
            if not targets:
                break
            target = targets[0]
            sent += 1
            path, routing_cost = net.discover_path(origin, target)
            result.routing_messages += routing_cost
            if path is None:
                continue
            for a, b in zip(path, path[1:]):
                result.messages += 1
                ok = fast(a, b) if fast is not None else None
                if ok is None:
                    ok = net.one_hop_unicast(a, b)
                if not ok:
                    break
                if b not in stored:
                    stored.add(b)
                    store_fn(b)
            if sent > initiations + 4 * target_size:
                break  # safety: degenerate topologies
        if origin not in stored:
            stored.add(origin)
            store_fn(origin)
        result.quorum = sorted(stored)
        result.success = len(stored) >= min(target_size, net.n_alive)
        return result

    def _lookup(self, net: SimNetwork, origin: int, probe_fn: ProbeFn,
                target_size: int) -> AccessResult:
        """Send ``initiations`` lookup messages to random targets; every
        en-route node performs a local lookup and a hit halts forwarding."""
        result = AccessResult(strategy=self.name, kind="lookup",
                              target_size=target_size)
        rng = self._rng(net)
        probed: Set[int] = set()
        initiations = self.initiations or self.default_initiations(net)

        def probe(node: int) -> Optional[Any]:
            if node in probed:
                return None
            probed.add(node)
            return probe_fn(node)

        # The originator itself is part of the lookup quorum.
        value = probe(origin)
        if value is not None:
            result.found = True
            result.hit_node = origin
            result.hit_value = value
            result.reply_delivered = True
            record_event(net, "reply", src=origin, dst=origin,
                         success=True, mechanism="local")

        delivered_any = bool(result.found)
        fast = net.access_engine.unicast_resolver(net)
        for _ in range(initiations):
            targets = self.membership.sample_for(origin, 1, rng)
            if not targets:
                break
            target = targets[0]
            path, routing_cost = net.discover_path(origin, target)
            result.routing_messages += routing_cost
            if path is None:
                continue
            for a, b in zip(path, path[1:]):
                result.messages += 1
                ok = fast(a, b) if fast is not None else None
                if ok is None:
                    ok = net.one_hop_unicast(a, b)
                if not ok:
                    break
                value = probe(b)
                if value is not None:
                    result.found = True
                    if result.hit_node is None:
                        result.hit_node = b
                        result.hit_value = value
                    # The hit node replies via routing and instructs its
                    # network layer to stop forwarding the lookup.
                    reply = net.route(b, origin)
                    result.messages += reply.data_messages
                    result.routing_messages += reply.routing_messages
                    record_event(net, "reply", src=b, dst=origin,
                                 success=reply.success, mechanism="routed")
                    delivered_any = delivered_any or reply.success
                    break
        result.quorum = sorted(probed)
        if result.found:
            result.reply_delivered = delivered_any
            result.success = delivered_any
        else:
            result.success = True  # access completed (miss is a valid outcome)
        return result
