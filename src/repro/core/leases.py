"""Timed-quorum lease tables (PAPERS.md: "Timed Quorum Systems").

Every replica-held kv entry carries a lease: a TTL stamped at store
time.  An expired entry no longer answers probes — it is excluded from
votes (so lease filtering composes with
:class:`repro.core.masking.MaskingStrategy`, which only tallies replies
the probe function actually returns) — and is reclaimed *lazily*: the
next probe or store touching the replica's table drops it, there is no
background sweeper.

The table is strategy-agnostic: :class:`repro.services.kvstore.QuorumKVStore`
owns one and builds annotated probe/store callbacks over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional

if TYPE_CHECKING:  # annotation-only; a runtime import would be circular
    from repro.services.register import Timestamp

__all__ = ["LeasedEntry", "LeaseTable"]


@dataclass
class LeasedEntry:
    """One replica-held versioned value with its lease window."""

    key: Hashable
    value: Any
    ts: Timestamp
    stored_at: float
    ttl: float

    @property
    def expires_at(self) -> float:
        return self.stored_at + self.ttl

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class LeaseTable:
    """Per-node ``key -> LeasedEntry`` stores with lazy expiry reclamation."""

    def __init__(self, net: Any) -> None:
        self.net = net
        self._tables: Dict[int, Dict[Hashable, LeasedEntry]] = {}

    # -- storing -----------------------------------------------------------

    def store(self, node: int, entry: LeasedEntry) -> None:
        """Install ``entry`` at ``node``; newest timestamp wins.

        A store also renews the slot: an expired older entry never blocks
        a fresh one, and re-storing the same timestamp extends the lease
        (the refresh path).
        """
        table = self._tables.setdefault(node, {})
        current = table.get(entry.key)
        if (current is None or current.ts < entry.ts
                or current.expired(self.net.now)
                or (current.ts == entry.ts
                    and entry.expires_at >= current.expires_at)):
            table[entry.key] = entry

    # -- probing -----------------------------------------------------------

    def visible(self, node: int, key: Hashable) -> Optional[LeasedEntry]:
        """The entry ``node`` may answer with *now*, or ``None``.

        Dead nodes and expired leases yield ``None``; an expired entry is
        reclaimed on the spot (lazy reclamation) and counted in the
        ``kv.lease.reclaimed`` metric.
        """
        table = self._tables.get(node)
        if table is None:
            return None
        entry = table.get(key)
        if entry is None:
            return None
        if entry.expired(self.net.now):
            del table[key]
            metrics = getattr(self.net, "metrics", None)
            if metrics is not None:
                metrics.counter("kv.lease.reclaimed").inc()
            return None
        if not self.net.is_alive(node):
            return None
        return entry

    def holders_of(self, key: Hashable) -> List[int]:
        """Alive nodes currently able to answer for ``key`` (tests/metrics)."""
        return sorted(node for node in list(self._tables)
                      if self.visible(node, key) is not None)

    def raw_entry(self, node: int, key: Hashable) -> Optional[LeasedEntry]:
        """The stored entry ignoring expiry/aliveness (tests/injection)."""
        return self._tables.get(node, {}).get(key)

    def entry_count(self) -> int:
        """Total stored (not necessarily visible) entries across replicas."""
        return sum(len(table) for table in self._tables.values())
