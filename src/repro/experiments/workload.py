"""Open-loop kv workload engine (the serving-benchmark driver).

Generates a deterministic operation stream on its own Philox stream —
Poisson (open-loop) arrivals, Zipf key popularity, a configurable
read/write/cas mix — and drives :class:`~repro.services.kvstore.QuorumKVStore`
through it.  Two execution backends share one generator, so the op
sequence is bit-identical across ``--jobs`` settings and backends:

* **sequential** — every op runs through the real biquorum access stack
  on a live :class:`~repro.simnet.network.SimNetwork` (auditor, trace,
  watchers, masking all active).  Ground truth; thousands of ops.
* **batched** — a pure-numpy kernel in the spirit of the batched access
  engine (PR 6): uniform quorum membership is sampled analytically, node
  churn is a per-node Poisson process, and each read's outcome is
  decided by the exact hypergeometric first-hit decomposition over the
  key's surviving version compartments.  Because a read's quorum is a
  uniform ``|Ql|``-subset, the version it returns depends on the holder
  *counts* only, so a single uniform draw per read replaces the
  ``|Ql| x n`` sampling matrix — one point with ~1M simulated ops
  completes in seconds, with per-read marginals exactly matching
  :func:`repro.analysis.leases.stale_read_probability_exact`.

Both backends return :class:`KVRunStats` — tail latency (p50/p99/p999),
stale-read fraction, availability, the analytic stale prediction, and a
:class:`~repro.services.consistency.KVConsistencyReport` — so every
workload run doubles as a correctness oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

from repro.services.consistency import (
    KVConsistencyReport,
    KVHistoryChecker,
    check_kv_batch,
)
from repro.sim.rng import derive_stream_seed

#: Operation codes in the generated stream.
OP_GET, OP_PUT, OP_CAS = 0, 1, 2

#: Philox stream names (master-seed keyed, like WORKLOAD_STREAMS).
GENERATOR_STREAM = "kv-workload-ops"
KERNEL_STREAM = "kv-workload-kernel"


@dataclass(frozen=True)
class WorkloadSpec:
    """One open-loop workload point (backend-independent)."""

    ops: int = 10_000
    n_keys: int = 64
    read_fraction: float = 0.9
    cas_fraction: float = 0.0      # fraction of the write share that is cas
    zipf_s: float = 0.99           # Zipf popularity exponent
    arrival_rate: float = 200.0    # ops per simulated second (open loop)
    seed: int = 7

    def validate(self) -> None:
        if self.ops < 1:
            raise ValueError("ops must be positive")
        if self.n_keys < 1:
            raise ValueError("n_keys must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.cas_fraction <= 1.0:
            raise ValueError("cas_fraction must be in [0, 1]")
        if self.zipf_s < 0.0:
            raise ValueError("zipf_s must be non-negative")
        if self.arrival_rate <= 0.0:
            raise ValueError("arrival_rate must be positive")


def zipf_pmf(n_keys: int, s: float) -> np.ndarray:
    """Analytic Zipf(s) pmf over ``n_keys`` ranks (rank 1 most popular)."""
    if n_keys < 1:
        raise ValueError("n_keys must be positive")
    weights = np.arange(1, n_keys + 1, dtype=np.float64) ** -float(s)
    return weights / weights.sum()


@dataclass
class Operations:
    """A generated op stream: parallel arrays, time-ordered."""

    times: np.ndarray     # float64 arrival times (strictly increasing)
    keys: np.ndarray      # int64 key ranks in [0, n_keys)
    kinds: np.ndarray     # int8 OP_GET / OP_PUT / OP_CAS
    origins: np.ndarray   # uint32 client draws (mapped to nodes later)

    def __len__(self) -> int:
        return len(self.times)


def generate_operations(spec: WorkloadSpec) -> Operations:
    """The open-loop generator: a pure function of the spec.

    Runs on its own Philox stream keyed off the master seed, so the
    sequence is independent of the network, the backend, and the job
    count — the determinism the workload tests pin down.
    """
    spec.validate()
    rng = np.random.Generator(np.random.Philox(
        key=derive_stream_seed(spec.seed, GENERATOR_STREAM)))
    gaps = rng.exponential(1.0 / spec.arrival_rate, size=spec.ops)
    times = np.cumsum(gaps)
    cum = np.cumsum(zipf_pmf(spec.n_keys, spec.zipf_s))
    keys = np.searchsorted(cum, rng.random(spec.ops),
                           side="right").astype(np.int64)
    np.clip(keys, 0, spec.n_keys - 1, out=keys)
    mix = rng.random(spec.ops)
    kinds = np.full(spec.ops, OP_PUT, dtype=np.int8)
    kinds[mix < spec.read_fraction] = OP_GET
    write_share = 1.0 - spec.read_fraction
    cas_cut = spec.read_fraction + write_share * spec.cas_fraction
    kinds[(mix >= spec.read_fraction) & (mix < cas_cut)] = OP_CAS
    origins = rng.integers(0, 2 ** 32, size=spec.ops, dtype=np.uint32)
    return Operations(times=times, keys=keys, kinds=kinds, origins=origins)


@dataclass
class KVRunStats:
    """Aggregate outcome of one workload run (either backend)."""

    backend: str
    ops: int
    reads: int
    writes: int
    cas_attempts: int
    cas_successes: int
    found_reads: int
    missed_reads: int
    stale_or_missed: int           # reads that failed to see the newest commit
    p50: float
    p99: float
    p999: float
    predicted_stale: float         # analytic E[P(miss newest)]; NaN if n/a
    report: KVConsistencyReport = field(default_factory=KVConsistencyReport)

    @property
    def eligible_reads(self) -> int:
        """Reads of keys that had committed data."""
        return self.found_reads + self.missed_reads

    @property
    def stale_fraction(self) -> float:
        """Fraction of eligible reads not returning the newest committed
        version (stale hit or miss) — the quantity the lease analysis
        predicts.  NaN with no eligible reads."""
        if self.eligible_reads == 0:
            return math.nan
        return self.stale_or_missed / self.eligible_reads

    @property
    def availability(self) -> float:
        """Fraction of eligible reads that returned *some* value."""
        if self.eligible_reads == 0:
            return math.nan
        return self.found_reads / self.eligible_reads


# ---------------------------------------------------------------------------
# Sequential backend: the real service on a live network
# ---------------------------------------------------------------------------

def run_workload_sequential(store: Any, spec: WorkloadSpec,
                            time_scale: float = 1.0) -> KVRunStats:
    """Execute the generated stream against a live :class:`QuorumKVStore`.

    Arrivals drive the simulated clock (open loop): the network runs
    until each op's arrival time (times scaled by ``time_scale``) before
    the op is issued.  The store's checker (when present) records every
    op; cas ops target the latest committed value (the client read its
    own oracle), so honest runs keep cas mostly succeeding.
    """
    ops = generate_operations(spec)
    net = store.net
    start = net.now
    latencies: List[float] = []
    reads = writes = cas_attempts = cas_successes = 0
    found = missed = not_newest = 0
    for i in range(len(ops)):
        target = start + float(ops.times[i]) * time_scale
        if target > net.now:
            net.run_until(target)
        alive = net.alive_nodes()
        origin = alive[int(ops.origins[i]) % len(alive)]
        key = f"k{int(ops.keys[i])}"
        kind = int(ops.kinds[i])
        if kind == OP_GET:
            result = store.get(origin, key)
            reads += 1
            latest = store.latest_committed(key)
            if result.ok:
                found += 1
                if latest is not None and result.version < latest[0]:
                    not_newest += 1
            elif latest is not None:
                missed += 1
                not_newest += 1
        elif kind == OP_PUT:
            result = store.put(origin, key, f"v{i}")
            writes += 1
        else:
            latest = store.latest_committed(key)
            expected = latest[1] if latest is not None else None
            result = store.cas(origin, key, expected, f"v{i}")
            cas_attempts += 1
            if result.ok:
                cas_successes += 1
        latencies.append(result.latency)
    lat = np.asarray(latencies, dtype=np.float64)
    p50, p99, p999 = (np.percentile(lat, (50.0, 99.0, 99.9))
                      if len(lat) else (math.nan,) * 3)
    report = (store.checker.report() if store.checker is not None
              else KVConsistencyReport())
    return KVRunStats(
        backend="sequential", ops=len(ops), reads=reads, writes=writes,
        cas_attempts=cas_attempts, cas_successes=cas_successes,
        found_reads=found, missed_reads=missed, stale_or_missed=not_newest,
        p50=float(p50), p99=float(p99), p999=float(p999),
        predicted_stale=math.nan, report=report)


# ---------------------------------------------------------------------------
# Batched backend: the million-op kernel
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KVPointConfig:
    """Deployment knobs of one batched kv point."""

    n: int = 400                  # replica population
    quorum_a: int = 0             # 0 = ceil(sqrt(n ln 1/eps)) symmetric
    quorum_l: int = 0
    epsilon: float = 0.05
    lease_ttl: float = 30.0
    churn_rate: float = 0.0       # node churn events per node-second
    rtt: float = 0.02             # per-contact latency scale (max-of-k model)
    rtt_base: float = 0.005

    def sizes(self) -> tuple:
        if self.quorum_a > 0 and self.quorum_l > 0:
            return self.quorum_a, self.quorum_l
        size = max(1, int(math.ceil(
            math.sqrt(self.n * math.log(1.0 / self.epsilon)))))
        size = min(size, self.n)
        return (self.quorum_a or size), (self.quorum_l or size)


def _log_factorials(n: int) -> np.ndarray:
    table = np.zeros(n + 1, dtype=np.float64)
    table[1:] = np.cumsum(np.log(np.arange(1, n + 1, dtype=np.float64)))
    return table


def _miss_table(n: int, ql: int) -> np.ndarray:
    """``M[s] = Pr(uniform ql-subset of n avoids a fixed s-set)``."""
    lf = _log_factorials(n)
    s = np.arange(n + 1)
    table = np.zeros(n + 1, dtype=np.float64)
    ok = s <= n - ql
    sv = s[ok]
    table[ok] = np.exp(lf[n - sv] - lf[n - sv - ql] - (lf[n] - lf[n - ql]))
    return table


def _first_churn_after(nodes: np.ndarray, t: np.ndarray, churn_comp: np.ndarray,
                       span: float) -> np.ndarray:
    """Per-node time of the first churn event strictly after ``t[i]``.

    ``churn_comp`` is the composite-key array ``node * span + time``
    sorted ascending, so one global searchsorted answers every node's
    query at once.  Nodes with no later event get ``+inf``.
    """
    idx = np.searchsorted(churn_comp, nodes * span + t, side="right")
    out = np.full(len(nodes), np.inf)
    valid = idx < len(churn_comp)
    if np.any(valid):
        comp = churn_comp[idx[valid]]
        same_node = comp < (nodes[valid] + 1) * span
        times = comp - nodes[valid] * span
        out_valid = np.where(same_node, times, np.inf)
        out[valid] = out_valid
    return out


def _predicted_stale(ages: np.ndarray, expired: np.ndarray, qa: int,
                     churn_rate: float, miss: np.ndarray) -> float:
    """Mean exact ``P(miss the newest version's surviving holders)``.

    Log-space binomial mixture of the hypergeometric miss table — the
    vectorized twin of
    :func:`repro.analysis.leases.stale_read_probability_exact`.
    """
    if len(ages) == 0:
        return math.nan
    p = np.where(expired, 0.0, np.exp(-churn_rate * ages))
    m = miss[:qa + 1].copy()

    def mixture(prob: np.ndarray, mvals: np.ndarray) -> np.ndarray:
        # Binomial(qa, prob) mixture of mvals via the pmf recurrence;
        # stable because callers keep prob <= 0.5.
        comp = 1.0 - prob
        pmf = comp ** qa
        acc = pmf * mvals[0]
        ratio = np.divide(prob, comp, out=np.zeros_like(prob),
                          where=comp > 0.0)
        for k in range(1, qa + 1):
            pmf = pmf * ratio * ((qa - k + 1) / k)
            acc = acc + pmf * mvals[k]
        return acc

    total = np.empty(len(p))
    lo = p <= 0.5
    # Small p: sum over survivor counts; large p: over failure counts.
    total[lo] = mixture(p[lo], m)
    total[~lo] = mixture(1.0 - p[~lo], m[::-1])
    return float(total.mean())


def run_workload_batched(spec: WorkloadSpec,
                         config: Optional[KVPointConfig] = None) -> KVRunStats:
    """The million-op kernel: exact-marginal quorum kv simulation.

    Node churn is a per-node Poisson process (rate ``churn_rate``); every
    write stores a fresh lease at a uniform ``|Qa|``-subset; every read's
    returned version is decided by the first-hit decomposition over the
    key's surviving version compartments (see the module docstring).
    All randomness is pre-drawn from one Philox stream keyed off the
    spec seed, so the run is bit-reproducible.
    """
    config = config or KVPointConfig()
    ops = generate_operations(spec)
    n = config.n
    qa, ql = config.sizes()
    ttl = config.lease_ttl
    if ttl <= 0:
        raise ValueError("lease_ttl must be positive")
    rng = np.random.Generator(np.random.Philox(
        key=derive_stream_seed(spec.seed, KERNEL_STREAM)))
    horizon = float(ops.times[-1]) + 1.0

    # Churn: per-node Poisson event times, packed as one sorted
    # composite-key array (node * span + t) for vectorized queries.
    span = horizon * 1.000001 + 1.0
    counts = rng.poisson(config.churn_rate * horizon, size=n)
    total_events = int(counts.sum())
    event_nodes = np.repeat(np.arange(n), counts)
    event_times = rng.random(total_events) * horizon
    churn_comp = np.sort(event_nodes * span + event_times)

    # Pre-drawn randomness (op-indexed, so the per-key sweep order
    # cannot perturb the stream): write quorums, read outcomes, latency.
    is_write = ops.kinds != OP_GET
    write_ordinal = np.cumsum(is_write) - 1
    n_write_ops = int(is_write.sum())
    write_quorums = np.empty((n_write_ops, qa), dtype=np.int64)
    chunk = max(1, min(n_write_ops, 4_000_000 // max(n, 1)))
    for lo in range(0, n_write_ops, chunk):
        hi = min(lo + chunk, n_write_ops)
        scores = rng.random((hi - lo, n))
        write_quorums[lo:hi] = np.argpartition(scores, qa - 1,
                                               axis=1)[:, :qa]
    outcome_u = rng.random(len(ops))
    lat_query_u = rng.random(len(ops))
    lat_store_u = rng.random(len(ops))

    miss = _miss_table(n, ql)

    # Global per-read outputs (indexed by op id).
    read_version = np.full(len(ops), -1, dtype=np.int64)
    read_latest = np.full(len(ops), -1, dtype=np.int64)
    read_expiry = np.full(len(ops), np.inf)
    pred_age = np.full(len(ops), np.nan)
    pred_expired = np.zeros(len(ops), dtype=bool)
    stored = np.zeros(len(ops), dtype=bool)   # write/cas committed a version

    cas_attempts = cas_successes = 0

    # Death time of every potential slot — min(first churn after the
    # store, store + TTL) — precomputed for all write/cas ops at once.
    write_ops = np.flatnonzero(is_write)
    w_times = np.repeat(ops.times[write_ops], qa)
    flat_nodes = write_quorums.reshape(-1)
    all_deaths = np.minimum(
        _first_churn_after(flat_nodes, w_times, churn_comp, span),
        w_times + ttl).reshape(n_write_ops, qa)

    def decide_single(op: int, latest_counter: int,
                      node_version: np.ndarray,
                      node_death: np.ndarray) -> int:
        """Pass-1 single-read decision (a cas's view) on slot state."""
        if latest_counter < 0:
            return -1
        t = float(ops.times[op])
        slot_order = np.argsort(-node_version, kind="stable")
        versions = node_version[slot_order]
        valid = int(np.count_nonzero(versions >= 0))
        if valid == 0:
            return -1
        versions = versions[:valid]
        cum = np.cumsum(node_death[slot_order[:valid]] > t)
        bounds = np.append(np.flatnonzero(np.diff(versions)), valid - 1)
        hit = np.flatnonzero(outcome_u[op] >= miss[cum[bounds]])
        return int(versions[bounds[hit[0]]]) if len(hit) else -1

    order = np.argsort(ops.keys, kind="stable")  # per-key, time-ordered
    sorted_keys = ops.keys[order]
    group_bounds = np.flatnonzero(np.diff(sorted_keys)) + 1

    for group in np.split(order, group_bounds):
        group_kinds = ops.kinds[group]
        wpos = np.flatnonzero(group_kinds != OP_GET)
        wops = group[wpos]

        # Pass 1 — commit writes.  A cas needs its own read decision
        # against the live slot state, so keys with cas ops walk their
        # write events sequentially; put-only keys commit in bulk.
        if np.any(group_kinds[wpos] == OP_CAS):
            node_version = np.full(n, -1, dtype=np.int64)
            node_death = np.full(n, -np.inf)
            committed: List[int] = []
            latest = -1
            for op in wops:
                op = int(op)
                w = int(write_ordinal[op])
                if ops.kinds[op] == OP_CAS:
                    cas_attempts += 1
                    seen = decide_single(op, latest, node_version,
                                         node_death)
                    if seen != latest:
                        continue  # stale or empty view: cas fails
                    cas_successes += 1
                committed.append(w)
                latest += 1
                node_version[write_quorums[w]] = latest
                node_death[write_quorums[w]] = all_deaths[w]
                stored[op] = True
            cw = np.asarray(committed, dtype=np.int64)
            cw_tw = ops.times[write_ops[cw]] if len(cw) else np.empty(0)
        else:
            cw = write_ordinal[wops]
            cw_tw = ops.times[wops]
            stored[wops] = True

        ridx = group[group_kinds == OP_GET]
        n_writes_k = len(cw)
        if len(ridx) == 0 or n_writes_k == 0:
            continue
        tr = ops.times[ridx]
        s = np.searchsorted(cw_tw, tr, side="right")
        elig = np.flatnonzero(s >= 1)
        newest = s[elig] - 1
        read_latest[ridx[elig]] = newest
        pred_age[ridx[elig]] = tr[elig] - cw_tw[newest]
        pred_expired[ridx[elig]] = tr[elig] >= cw_tw[newest] + ttl

        # Slot end times: death curtailed by the next committed write
        # that re-stores the same node (newest-wins per replica).
        quorums_k = write_quorums[cw]
        flat = quorums_k.reshape(-1)
        fw = np.repeat(np.arange(n_writes_k), qa)
        by_node = np.lexsort((fw, flat))
        sf, sw = flat[by_node], fw[by_node]
        overwrite_sorted = np.full(n_writes_k * qa, np.inf)
        taken = np.flatnonzero(sf[1:] == sf[:-1])
        overwrite_sorted[taken] = cw_tw[sw[taken + 1]]
        overwrite = np.empty(n_writes_k * qa)
        overwrite[by_node] = overwrite_sorted
        ends = np.minimum(all_deaths[cw], overwrite.reshape(-1, qa))

        # Pass 2 — the depth walk: all of the key's reads advance
        # newest-to-oldest together, each accumulating surviving vote
        # counts until its pre-drawn uniform decides the hypergeometric
        # first-hit, it runs out of versions, or everything deeper is
        # past its TTL.
        u = outcome_u[ridx]
        cum = np.zeros(len(ridx))
        rem = elig
        depth = 1
        while len(rem):
            v = s[rem] - depth
            keep = v >= 0
            rem, v = rem[keep], v[keep]
            if len(rem) == 0:
                break
            in_window = cw_tw[v] + ttl > tr[rem]
            rem, v = rem[in_window], v[in_window]
            if len(rem) == 0:
                break
            cum[rem] += (ends[v] > tr[rem][:, None]).sum(axis=1)
            hit = u[rem] >= miss[np.minimum(
                cum[rem].astype(np.int64), n)]
            if hit.any():
                rows = rem[hit]
                read_version[ridx[rows]] = v[hit]
                read_expiry[ridx[rows]] = cw_tw[v[hit]] + ttl
                rem = rem[~hit]
            depth += 1

    # Latency: query phase = max of ql per-contact RTTs, store phase
    # (writes and successful cas) adds a max of qa; inverse-CDF of the
    # max of k exponentials keeps it one pre-drawn uniform per phase.
    def max_exp(u: np.ndarray, k: int) -> np.ndarray:
        safe = np.clip(u, 1e-12, 1.0 - 1e-12)
        return -np.log1p(-np.power(safe, 1.0 / k))

    latency = config.rtt_base + config.rtt * max_exp(lat_query_u, ql)
    latency = latency + np.where(
        stored, config.rtt_base + config.rtt * max_exp(lat_store_u, qa), 0.0)

    reads_mask = ops.kinds == OP_GET
    ridx = np.flatnonzero(reads_mask)
    r_version = read_version[ridx]
    r_latest = read_latest[ridx]
    found = r_version >= 0
    eligible = r_latest >= 0
    missed = int(np.count_nonzero(~found & eligible))
    not_newest = int(np.count_nonzero(found & (r_version < r_latest)))
    predicted = _predicted_stale(pred_age[ridx][eligible],
                                 pred_expired[ridx][eligible],
                                 qa, config.churn_rate, miss)

    report = check_kv_batch(
        ops.times[ridx], r_version, r_latest, read_expiry[ridx],
        writes=int(np.count_nonzero(ops.kinds == OP_PUT)),
        cas_attempts=cas_attempts, cas_successes=cas_successes)

    p50, p99, p999 = np.percentile(latency, (50.0, 99.0, 99.9))
    return KVRunStats(
        backend="batched", ops=len(ops), reads=int(reads_mask.sum()),
        writes=int(np.count_nonzero(ops.kinds == OP_PUT)),
        cas_attempts=cas_attempts, cas_successes=cas_successes,
        found_reads=int(np.count_nonzero(found)), missed_reads=missed,
        stale_or_missed=not_newest + missed,
        p50=float(p50), p99=float(p99), p999=float(p999),
        predicted_stale=predicted, report=report)
