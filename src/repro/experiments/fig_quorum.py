"""Quorum-algebra figure: optimizer-predicted vs simulated load.

For each read fraction the optimizer picks quorum-selection
probabilities for an algebraic system (majority / grid / chain) and the
same distribution is then *executed* on the simulated network through
:class:`~repro.quorum.access.AlgebraicStrategy` under Monte-Carlo
replication.  The figure overlays:

* **predicted load** — the LP optimum ``max_x load(x)`` and the per-node
  load vector;
* **simulated load** — per-node access frequencies from the metrics
  registry (``quorum.node_load.<id>``), averaged across replicas with a
  normal CI.

The two must agree node-for-node within the Monte-Carlo CI: each access
samples a quorum from exactly the optimized distribution, and on a
static connected deployment every member is reached.  A gap beyond the
CI (plus a small absolute guard) is reported through the accounting
auditor (``quorum-load-mismatch``), so ``REPRO_AUDIT=strict`` turns the
cross-check into a hard failure — the obs-layer treatment of every
other accounting invariant.

Degenerate inputs yield NaN rows instead of raising (the PR 5 ``reps=0``
convention): read fractions 0 and 1 run one-sided workloads, a
single-node system collapses to load 1.0, and a ``faulty`` set that
kills every quorum produces an infeasible strategy whose row is NaN.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import NormalDist
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.experiments.common import run_scenario, scenario_config
from repro.experiments.montecarlo import Welford, run_replicated
from repro.obs.audit import auditor_from_env
from repro.quorum import AlgebraicStrategy, build_system, solve_strategy

_NAN = float("nan")

#: Absolute slack added to the CI half-width before the auditor flags a
#: predicted-vs-simulated gap: a 95% CI alone would false-alarm on ~5%
#: of node comparisons by construction.
LOAD_TOLERANCE = 0.05


@dataclass
class QuorumLoadPoint:
    """Predicted and simulated behaviour of one (system, read mix)."""

    system: str
    read_fraction: float
    optimize: str
    n: int                      # deployment size
    m: int                      # replicas in the algebraic system
    reps: int
    predicted_load: float = _NAN
    load_lower_bound: float = _NAN
    expected_read_size: float = _NAN
    expected_write_size: float = _NAN
    predicted_network: float = _NAN   # expected accessed-quorum size
    simulated_load: float = _NAN      # max over nodes of across-rep mean
    simulated_load_hw: float = _NAN   # CI half-width at that node
    max_gap: float = _NAN             # max_x |simulated(x) - predicted(x)|
    within_ci: bool = True            # every node inside its CI + slack
    hit_ratio: float = _NAN
    hit_ratio_hw: float = _NAN
    avg_messages: float = _NAN
    node_loads_predicted: Dict[int, float] = field(default_factory=dict)
    node_loads_simulated: Dict[int, Tuple[float, float]] = \
        field(default_factory=dict)  # node -> (mean, half-width)
    feasible: bool = True


def _split_ops(read_fraction: float, ops: int) -> Tuple[int, int]:
    """Writes/reads per replica realising the read mix exactly."""
    reads = int(round(read_fraction * ops))
    return ops - reads, reads


def quorum_load_point(
    system_name: str,
    read_fraction: float,
    n: int = 40,
    m: int = 9,
    optimize: str = "load",
    reps: int = 8,
    ops: int = 80,
    seed: int = 0,
    rep_backend: Optional[str] = None,
    faulty: Optional[Set[int]] = None,
    confidence: float = 0.95,
) -> QuorumLoadPoint:
    """Run one (system, read_fraction) point; see module docstring."""
    config = scenario_config(n, seed=seed)
    point = QuorumLoadPoint(system=system_name,
                            read_fraction=read_fraction,
                            optimize=optimize, n=n, m=m, reps=0)
    # The algebraic system lives on the m lowest node ids; the rest of
    # the deployment only forwards traffic.
    ids = list(range(m))
    qs = build_system(system_name, ids)
    sigma = solve_strategy(qs, read_fraction=read_fraction,
                           optimize=optimize, faulty=faulty)
    point.feasible = sigma.feasible
    if not sigma.feasible:
        # All-faulted (or otherwise infeasible) side: NaN row, no sim.
        return point
    point.predicted_load = sigma.load()
    point.load_lower_bound = sigma.load_lower_bound()
    point.expected_read_size = sigma.expected_read_size()
    point.expected_write_size = sigma.expected_write_size()
    point.predicted_network = sigma.network_load()
    point.node_loads_predicted = {
        int(x): load for x, load in sigma.node_loads().items()}

    n_keys, n_lookups = _split_ops(read_fraction, ops)
    load_samples: List[Dict[int, float]] = []

    def run(net, rep_seed):
        from repro.quorum.access import measured_node_loads

        strategy = AlgebraicStrategy(qs, strategy=sigma)
        stats = run_scenario(
            net, advertise_strategy=strategy, lookup_strategy=strategy,
            advertise_size=0, lookup_size=0,
            n_keys=n_keys, n_lookups=n_lookups,
            miss_fraction=1.0 if n_keys == 0 else 0.0,
            seed=rep_seed)
        load_samples.append(measured_node_loads(net))
        return stats

    outcome = run_replicated(config, run, base_seed=seed, reps=reps,
                             backend=rep_backend, confidence=confidence)
    point.reps = outcome.reps
    if n_lookups and n_keys:
        point.hit_ratio = outcome.mean("hit_ratio")
        point.hit_ratio_hw = outcome.halfwidth("hit_ratio")
    point.avg_messages = (outcome.mean("avg_lookup_messages")
                          if n_lookups else
                          outcome.mean("avg_advertise_messages"))

    if not load_samples:
        return point
    accumulators: Dict[int, Welford] = {}
    for sample in load_samples:
        for node in point.node_loads_predicted:
            acc = accumulators.setdefault(node, Welford())
            acc.update(sample.get(node, 0.0))
    worst_gap = 0.0
    max_mean, max_mean_hw = -math.inf, _NAN
    z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    samples = max(1, point.reps * ops)
    for node, acc in accumulators.items():
        hw = acc.halfwidth(confidence)
        point.node_loads_simulated[node] = (acc.mean, hw)
        if acc.mean > max_mean:
            max_mean, max_mean_hw = acc.mean, hw
        predicted = point.node_loads_predicted[node]
        gap = abs(acc.mean - predicted)
        worst_gap = max(worst_gap, gap)
        # Theoretical binomial half-width of the pooled estimate: each
        # of the reps*ops accesses touches the node with the predicted
        # probability, so this bound is exact under H0 and — unlike the
        # empirical Welford half-width — not itself a noisy estimate at
        # small replica counts.
        theory_hw = z * math.sqrt(predicted * (1.0 - predicted) / samples)
        if gap > theory_hw + LOAD_TOLERANCE:
            point.within_ci = False
    point.simulated_load = max_mean if max_mean > -math.inf else _NAN
    point.simulated_load_hw = max_mean_hw
    point.max_gap = worst_gap

    if not point.within_ci:
        auditor = auditor_from_env()
        if auditor is not None:
            auditor.flag(
                "quorum-load-mismatch",
                f"{system_name} fr={read_fraction}: simulated node load "
                f"deviates from the optimizer prediction by "
                f"{point.max_gap:.4f} (> CI + {LOAD_TOLERANCE})",
                strategy="ALGEBRAIC", kind="load-cross-check")
    return point


def quorum_load_sweep(
    systems: Sequence[str] = ("majority", "grid"),
    read_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    n: int = 40,
    m: int = 9,
    optimize: str = "load",
    reps: int = 8,
    ops: int = 80,
    seed: int = 0,
    rep_backend: Optional[str] = None,
    faulty: Optional[Set[int]] = None,
) -> List[QuorumLoadPoint]:
    """The ``repro quorum`` figure: read-fraction sweep per system."""
    points = []
    for system_name in systems:
        size = m if m % 2 == 1 else m + 1
        if system_name == "grid":
            side = max(2, int(round(math.sqrt(m))))
            size = side * side
        for fr in read_fractions:
            points.append(quorum_load_point(
                system_name, fr, n=n, m=size, optimize=optimize,
                reps=reps, ops=ops, seed=seed, rep_backend=rep_backend,
                faulty=faulty))
    return points
