"""Figure 8 — cost of RANDOM advertise and hit ratio of RANDOM lookup.

The paper's findings to reproduce:

* advertise cost per request ~ ``|Q| * sqrt(n) / ln(n)`` network messages,
  flattening at ``|Q| >= 2 sqrt(n)`` (the random membership view size);
* a dramatic extra overhead from AODV routing (route establishment);
* RANDOM lookup reaches 0.9 hit ratio at ``|Ql| ~ 1.15 sqrt(n)``
  (Lemma 5.1 in action).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.core.strategies import RandomStrategy
from repro.experiments.common import (
    make_membership,
    run_scenario,
    scenario_config,
)
from repro.experiments.montecarlo import run_replicated
from repro.experiments.runner import run_sweep


@dataclass
class RandomAdvertisePoint:
    """Cost of one RANDOM advertise configuration."""

    n: int
    quorum_size: int
    avg_messages: float
    avg_routing: float
    avg_latency: float = 0.0    # simulated seconds per advertise
    reps: int = 1
    ci: Dict[str, float] = field(default_factory=dict)  # metric -> half-width


@dataclass
class RandomLookupPoint:
    """Hit ratio of RANDOM lookup at one quorum size."""

    n: int
    lookup_size: int
    lookup_size_factor: float    # |Ql| / sqrt(n)
    hit_ratio: float
    avg_messages: float
    avg_routing: float
    avg_latency: float = 0.0    # simulated seconds per lookup
    reps: int = 1
    ci: Dict[str, float] = field(default_factory=dict)  # metric -> half-width


def _advertise_point(point, task_seed, *, n_keys: int, seed: int,
                     reps: int = 1, rep_backend: Optional[str] = None,
                     ci_target: Optional[float] = None
                     ) -> RandomAdvertisePoint:
    """One (n, quorum factor) sweep point (process-pool worker)."""
    n, factor = point
    qa = max(1, int(round(factor * math.sqrt(n))))

    def run(net, rep_seed):
        strategy = RandomStrategy(make_membership(net, "random"))
        return run_scenario(
            net, advertise_strategy=strategy, lookup_strategy=strategy,
            advertise_size=qa, lookup_size=1, n_keys=n_keys, n_lookups=0,
            seed=rep_seed,
        )

    outcome = run_replicated(
        scenario_config(n, seed=seed), run, base_seed=seed,
        reps=reps, backend=rep_backend, target_halfwidth=ci_target)
    return RandomAdvertisePoint(
        n=n, quorum_size=qa,
        avg_messages=outcome.mean("avg_advertise_messages"),
        avg_routing=outcome.mean("avg_advertise_routing"),
        avg_latency=outcome.mean("avg_advertise_latency"),
        reps=outcome.reps, ci=outcome.ci_dict())


def random_advertise_cost(
    sizes: Sequence[int] = (50, 100, 200),
    quorum_factors: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5),
    n_keys: int = 10,
    seed: int = 0,
    jobs: Optional[int] = None,
    reps: int = 1,
    rep_backend: Optional[str] = None,
    ci_target: Optional[float] = None,
) -> List[RandomAdvertisePoint]:
    """Figure 8(a)/(b): messages per advertise vs |Q|, per network size."""
    grid = [(n, factor) for n in sizes for factor in quorum_factors]
    return run_sweep(
        grid, partial(_advertise_point, n_keys=n_keys, seed=seed,
                      reps=reps, rep_backend=rep_backend,
                      ci_target=ci_target),
        jobs=jobs, base_seed=seed, combine=lambda results: results[0])


def _lookup_point(point, task_seed, *, advertise_factor: float, n_keys: int,
                  n_lookups: int, seed: int, reps: int = 1,
                  rep_backend: Optional[str] = None,
                  ci_target: Optional[float] = None) -> RandomLookupPoint:
    """One (n, lookup factor) sweep point (process-pool worker)."""
    n, factor = point
    qa = max(1, int(round(advertise_factor * math.sqrt(n))))
    ql = max(1, int(round(factor * math.sqrt(n))))

    def run(net, rep_seed):
        strategy = RandomStrategy(make_membership(net, "random"))
        return run_scenario(
            net, advertise_strategy=strategy, lookup_strategy=strategy,
            advertise_size=qa, lookup_size=ql,
            n_keys=n_keys, n_lookups=n_lookups, seed=rep_seed,
        )

    outcome = run_replicated(
        scenario_config(n, seed=seed), run, base_seed=seed,
        reps=reps, backend=rep_backend, target_halfwidth=ci_target)
    return RandomLookupPoint(
        n=n, lookup_size=ql, lookup_size_factor=factor,
        hit_ratio=outcome.mean("hit_ratio"),
        avg_messages=outcome.mean("avg_lookup_messages"),
        avg_routing=outcome.mean("avg_lookup_routing"),
        avg_latency=outcome.mean("avg_lookup_latency"),
        reps=outcome.reps, ci=outcome.ci_dict())


def random_lookup_hit_ratio(
    sizes: Sequence[int] = (100, 200),
    lookup_factors: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 1.15, 1.5, 2.0),
    advertise_factor: float = 2.0,
    n_keys: int = 10,
    n_lookups: int = 60,
    seed: int = 0,
    jobs: Optional[int] = None,
    reps: int = 1,
    rep_backend: Optional[str] = None,
    ci_target: Optional[float] = None,
) -> List[RandomLookupPoint]:
    """Figure 8(c): RANDOM lookup hit ratio vs |Ql| (advertise 2*sqrt(n))."""
    grid = [(n, factor) for n in sizes for factor in lookup_factors]
    return run_sweep(
        grid,
        partial(_lookup_point, advertise_factor=advertise_factor,
                n_keys=n_keys, n_lookups=n_lookups, seed=seed,
                reps=reps, rep_backend=rep_backend, ci_target=ci_target),
        jobs=jobs, base_seed=seed, combine=lambda results: results[0])
