"""Figure 8 — cost of RANDOM advertise and hit ratio of RANDOM lookup.

The paper's findings to reproduce:

* advertise cost per request ~ ``|Q| * sqrt(n) / ln(n)`` network messages,
  flattening at ``|Q| >= 2 sqrt(n)`` (the random membership view size);
* a dramatic extra overhead from AODV routing (route establishment);
* RANDOM lookup reaches 0.9 hit ratio at ``|Ql| ~ 1.15 sqrt(n)``
  (Lemma 5.1 in action).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence

from repro.core.strategies import RandomStrategy
from repro.experiments.common import (
    make_membership,
    make_network,
    run_scenario,
)
from repro.experiments.runner import run_sweep


@dataclass
class RandomAdvertisePoint:
    """Cost of one RANDOM advertise configuration."""

    n: int
    quorum_size: int
    avg_messages: float
    avg_routing: float
    avg_latency: float = 0.0    # simulated seconds per advertise


@dataclass
class RandomLookupPoint:
    """Hit ratio of RANDOM lookup at one quorum size."""

    n: int
    lookup_size: int
    lookup_size_factor: float    # |Ql| / sqrt(n)
    hit_ratio: float
    avg_messages: float
    avg_routing: float
    avg_latency: float = 0.0    # simulated seconds per lookup


def _advertise_point(point, task_seed, *, n_keys: int, seed: int
                     ) -> RandomAdvertisePoint:
    """One (n, quorum factor) sweep point (process-pool worker)."""
    n, factor = point
    net = make_network(n, seed=seed)
    membership = make_membership(net, "random")
    strategy = RandomStrategy(membership)
    qa = max(1, int(round(factor * math.sqrt(n))))
    stats = run_scenario(
        net, advertise_strategy=strategy, lookup_strategy=strategy,
        advertise_size=qa, lookup_size=1, n_keys=n_keys, n_lookups=0,
        seed=seed + 1,
    )
    return RandomAdvertisePoint(
        n=n, quorum_size=qa,
        avg_messages=stats.avg_advertise_messages,
        avg_routing=stats.avg_advertise_routing,
        avg_latency=stats.avg_advertise_latency)


def random_advertise_cost(
    sizes: Sequence[int] = (50, 100, 200),
    quorum_factors: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5),
    n_keys: int = 10,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[RandomAdvertisePoint]:
    """Figure 8(a)/(b): messages per advertise vs |Q|, per network size."""
    grid = [(n, factor) for n in sizes for factor in quorum_factors]
    return run_sweep(
        grid, partial(_advertise_point, n_keys=n_keys, seed=seed),
        jobs=jobs, base_seed=seed, combine=lambda results: results[0])


def _lookup_point(point, task_seed, *, advertise_factor: float, n_keys: int,
                  n_lookups: int, seed: int) -> RandomLookupPoint:
    """One (n, lookup factor) sweep point (process-pool worker)."""
    n, factor = point
    net = make_network(n, seed=seed)
    membership = make_membership(net, "random")
    strategy = RandomStrategy(membership)
    qa = max(1, int(round(advertise_factor * math.sqrt(n))))
    ql = max(1, int(round(factor * math.sqrt(n))))
    stats = run_scenario(
        net, advertise_strategy=strategy, lookup_strategy=strategy,
        advertise_size=qa, lookup_size=ql,
        n_keys=n_keys, n_lookups=n_lookups, seed=seed + 1,
    )
    return RandomLookupPoint(
        n=n, lookup_size=ql, lookup_size_factor=factor,
        hit_ratio=stats.hit_ratio,
        avg_messages=stats.avg_lookup_messages,
        avg_routing=stats.avg_lookup_routing,
        avg_latency=stats.avg_lookup_latency)


def random_lookup_hit_ratio(
    sizes: Sequence[int] = (100, 200),
    lookup_factors: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 1.15, 1.5, 2.0),
    advertise_factor: float = 2.0,
    n_keys: int = 10,
    n_lookups: int = 60,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[RandomLookupPoint]:
    """Figure 8(c): RANDOM lookup hit ratio vs |Ql| (advertise 2*sqrt(n))."""
    grid = [(n, factor) for n in sizes for factor in lookup_factors]
    return run_sweep(
        grid,
        partial(_lookup_point, advertise_factor=advertise_factor,
                n_keys=n_keys, n_lookups=n_lookups, seed=seed),
        jobs=jobs, base_seed=seed, combine=lambda results: results[0])
