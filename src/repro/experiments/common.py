"""Shared experiment harness (the paper's simulation scenario, Section 8).

Each simulation in the paper has two parts: a set of advertisements by
random nodes, then a batch of lookups by random nodes.  *Hit ratio* is the
fraction of lookups whose quorum intersected the advertisement's quorum
AND whose reply made it back — i.e. the empirical intersection
probability.  Message counts are network-layer messages; routing control
overhead is accounted separately.

:func:`run_scenario` reproduces that scenario for any strategy mix and
returns the full statistics bundle the figures plot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import partial
from typing import List, Optional, Tuple

from repro.core.biquorum import ProbabilisticBiquorum
from repro.core.strategies import AccessStrategy
from repro.membership.service import FullMembership, RandomMembership
from repro.obs.profile import profiled
from repro.services.location import LocationService
from repro.simnet.network import NetworkConfig, SimNetwork


@dataclass
class ScenarioStats:
    """Aggregate results of one advertise/lookup scenario."""

    n: int
    advertises: int = 0
    lookups: int = 0
    lookups_absent: int = 0     # lookups for never-advertised keys (miss cost)
    hits: int = 0
    intersections: int = 0      # lookups whose quorum held the datum
    reply_drops: int = 0        # intersected but the reply never arrived
    advertise_messages: int = 0
    advertise_routing: int = 0
    lookup_messages_total: int = 0
    lookup_routing_total: int = 0
    advertise_latency_total: float = 0.0  # simulated seconds
    lookup_latency_total: float = 0.0
    lookup_messages_hit: List[int] = field(default_factory=list)
    lookup_messages_miss: List[int] = field(default_factory=list)
    advertise_quorum_sizes: List[int] = field(default_factory=list)
    lookup_quorum_sizes: List[int] = field(default_factory=list)

    @property
    def lookups_present(self) -> int:
        """Lookups that targeted actually-advertised keys."""
        return self.lookups - self.lookups_absent

    @property
    def hit_ratio(self) -> float:
        """Successful lookups over lookups of advertised data — the paper's
        hit ratio (= empirical intersection probability)."""
        present = self.lookups_present
        return self.hits / present if present else 0.0

    @property
    def intersection_ratio(self) -> float:
        present = self.lookups_present
        return self.intersections / present if present else 0.0

    @property
    def reply_drop_ratio(self) -> float:
        present = self.lookups_present
        return self.reply_drops / present if present else 0.0

    @property
    def avg_advertise_messages(self) -> float:
        return (self.advertise_messages / self.advertises
                if self.advertises else 0.0)

    @property
    def avg_advertise_routing(self) -> float:
        return (self.advertise_routing / self.advertises
                if self.advertises else 0.0)

    @property
    def avg_lookup_messages(self) -> float:
        return (self.lookup_messages_total / self.lookups
                if self.lookups else 0.0)

    @property
    def avg_lookup_routing(self) -> float:
        return (self.lookup_routing_total / self.lookups
                if self.lookups else 0.0)

    @property
    def avg_advertise_latency(self) -> float:
        return (self.advertise_latency_total / self.advertises
                if self.advertises else 0.0)

    @property
    def avg_lookup_latency(self) -> float:
        return (self.lookup_latency_total / self.lookups
                if self.lookups else 0.0)

    @property
    def avg_lookup_messages_on_hit(self) -> float:
        vals = self.lookup_messages_hit
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def avg_lookup_messages_on_miss(self) -> float:
        vals = self.lookup_messages_miss
        return sum(vals) / len(vals) if vals else 0.0


def make_network(
    n: int,
    avg_degree: float = 10.0,
    mobility: str = "static",
    max_speed: float = 2.0,
    seed: int = 0,
    **overrides,
) -> SimNetwork:
    """Deployment with the paper's defaults (speed range 0.5..max m/s)."""
    return SimNetwork(scenario_config(
        n, avg_degree=avg_degree, mobility=mobility, max_speed=max_speed,
        seed=seed, **overrides))


def scenario_config(
    n: int,
    avg_degree: float = 10.0,
    mobility: str = "static",
    max_speed: float = 2.0,
    seed: int = 0,
    **overrides,
) -> NetworkConfig:
    """The :func:`make_network` deployment as a config (not yet built).

    The Monte-Carlo engine (:mod:`repro.experiments.montecarlo`) takes the
    config rather than a network so its batched backend can own
    construction and share geometry work across replicas.
    """
    return NetworkConfig(
        n=n, avg_degree=avg_degree, seed=seed, mobility=mobility,
        min_speed=0.5, max_speed=max_speed, **overrides,
    )


def make_membership(net: SimNetwork, kind: str = "random"):
    """The paper's membership: random views of size 2*sqrt(n)."""
    if kind == "random":
        return RandomMembership(net)
    if kind == "full":
        return FullMembership(net)
    raise ValueError(f"unknown membership kind {kind!r}")


@profiled("scenario.run")
def run_scenario(
    net: SimNetwork,
    advertise_strategy: AccessStrategy,
    lookup_strategy: AccessStrategy,
    advertise_size: int,
    lookup_size: int,
    n_keys: int = 20,
    n_lookups: int = 100,
    n_lookers: int = 25,
    miss_fraction: float = 0.0,
    warmup: float = 1.0,
    seed: int = 1,
    service: Optional[LocationService] = None,
) -> ScenarioStats:
    """The paper's two-part scenario: advertisements, then lookups.

    ``miss_fraction`` of the lookups target keys that were never advertised
    (to measure the cost of a miss, Figure 16).  Returns aggregated stats.
    """
    rng = random.Random(seed)
    net.run_until(net.now + warmup)

    if service is None:
        biquorum = ProbabilisticBiquorum(
            net, advertise=advertise_strategy, lookup=lookup_strategy,
            advertise_size=advertise_size, lookup_size=lookup_size,
            adjust_to_network_size=False,
        )
        service = LocationService(biquorum)

    stats = ScenarioStats(n=net.n_alive)

    # Part 1: advertisements by random nodes.
    keys = [f"key-{i}" for i in range(n_keys)]
    for key in keys:
        origin = net.random_alive_node(rng)
        receipt = service.advertise(origin, key, f"value-of-{key}")
        stats.advertises += 1
        stats.advertise_messages += receipt.access.messages
        stats.advertise_routing += receipt.access.routing_messages
        stats.advertise_latency_total += receipt.access.latency
        stats.advertise_quorum_sizes.append(receipt.access.quorum_size)

    # Part 2: lookups by a fixed pool of random nodes.
    alive = net.alive_nodes()
    lookers = rng.sample(alive, min(n_lookers, len(alive)))
    n_misses = int(round(miss_fraction * n_lookups))
    for i in range(n_lookups):
        looker = rng.choice(lookers)
        if i < n_misses:
            key = f"absent-{i}"
            stats.lookups_absent += 1
        else:
            key = rng.choice(keys)
        receipt = service.lookup(looker, key)
        stats.lookups += 1
        access = receipt.access
        if access is None:
            # Local hit (owner/cache): zero-message success.
            stats.hits += 1
            stats.intersections += 1
            stats.lookup_messages_hit.append(0)
            continue
        stats.lookup_messages_total += access.messages
        stats.lookup_routing_total += access.routing_messages
        stats.lookup_latency_total += access.latency
        stats.lookup_quorum_sizes.append(access.quorum_size)
        if access.found:
            stats.intersections += 1
            if receipt.found:
                stats.hits += 1
                stats.lookup_messages_hit.append(access.messages)
            else:
                stats.reply_drops += 1
        else:
            stats.lookup_messages_miss.append(access.messages)

    # End-of-run checks for any live watcher hub (REPRO_WATCH / --watch):
    # SLO partial windows and stream-final invariants evaluate here.
    hub = getattr(net, "watch_hub", None)
    if hub is not None:
        hub.finish()
    return stats


def _seedless(fn, value, seed):  # module-level for pool picklability
    return fn(value)


def sweep(values, fn, jobs: int = 1) -> List[Tuple[object, ScenarioStats]]:
    """Run ``fn(value) -> ScenarioStats`` over a parameter sweep.

    Dispatches through :func:`repro.experiments.runner.run_sweep`; with
    ``jobs > 1`` the points run on a process pool (``fn`` must then be
    picklable, i.e. defined at module level).
    """
    from repro.experiments.runner import run_sweep

    results = run_sweep(values, partial(_seedless, fn), jobs=jobs)
    return [(res.point, res.value) for res in results]


def format_table(headers: List[str], rows: List[tuple]) -> str:
    """Render an aligned ASCII table (for bench output / EXPERIMENTS.md)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    def line(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    sep = "-+-".join("-" * w for w in widths)
    out = [line(headers), sep]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3g}"
    return str(cell)


def format_pm(mean: float, halfwidth: Optional[float]) -> str:
    """Render ``mean ± half-width`` for figure tables.

    With no defined CI (``reps=1`` yields NaN half-widths) the cell falls
    back to the plain ``mean`` formatting, so single-replica output is
    byte-identical to the historical tables.
    """
    if halfwidth is None or halfwidth != halfwidth:
        return _fmt(float(mean))
    return f"{_fmt(float(mean))}±{halfwidth:.2g}"
