"""Figure 9 — RANDOM advertise with RANDOM-OPT lookup (static and mobile).

The paper's findings: ~ln(n) routed lookup initiations already give a 0.9
hit ratio because every en-route node performs a local lookup (the
effective quorum is ~sqrt(n ln n)); in mobile networks the hit ratio drops
slightly (~10% message loss, mostly replies) while messages and especially
routing overhead increase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.core.strategies import RandomOptStrategy, RandomStrategy
from repro.experiments.common import (
    make_membership,
    run_scenario,
    scenario_config,
)
from repro.experiments.montecarlo import run_replicated
from repro.experiments.runner import run_sweep


@dataclass
class RandomOptPoint:
    """RANDOM-OPT lookup performance at one initiation count."""

    n: int
    mobility: str
    initiations: int
    hit_ratio: float
    avg_messages: float
    avg_routing: float
    avg_quorum_size: float       # en-route nodes actually probed
    reps: int = 1
    ci: Dict[str, float] = field(default_factory=dict)  # metric -> half-width


def _random_opt_point(x, task_seed, *, n: int, mobility: str,
                      max_speed: float, advertise_factor: float, n_keys: int,
                      n_lookups: int, seed: int, reps: int = 1,
                      rep_backend: Optional[str] = None,
                      ci_target: Optional[float] = None) -> RandomOptPoint:
    """One initiation-count sweep point (process-pool worker)."""
    qa = max(1, int(round(advertise_factor * math.sqrt(n))))

    def run(net, rep_seed):
        membership = make_membership(net, "random")
        return run_scenario(
            net,
            advertise_strategy=RandomStrategy(membership),
            lookup_strategy=RandomOptStrategy(membership, initiations=x),
            advertise_size=qa, lookup_size=qa,  # lookup size unused by OPT
            n_keys=n_keys, n_lookups=n_lookups, seed=rep_seed,
        )

    outcome = run_replicated(
        scenario_config(n, mobility=mobility, max_speed=max_speed, seed=seed),
        run, base_seed=seed, reps=reps, backend=rep_backend,
        target_halfwidth=ci_target)
    sizes = [size for s in outcome.stats for size in s.lookup_quorum_sizes]
    return RandomOptPoint(
        n=n, mobility=mobility, initiations=x,
        hit_ratio=outcome.mean("hit_ratio"),
        avg_messages=outcome.mean("avg_lookup_messages"),
        avg_routing=outcome.mean("avg_lookup_routing"),
        avg_quorum_size=sum(sizes) / len(sizes) if sizes else 0.0,
        reps=outcome.reps, ci=outcome.ci_dict())


def random_opt_lookup(
    n: int = 200,
    initiations: Sequence[int] = (1, 2, 3, 4, 6, 8),
    mobility: str = "static",
    max_speed: float = 2.0,
    advertise_factor: float = 2.0,
    n_keys: int = 10,
    n_lookups: int = 60,
    seed: int = 0,
    jobs: Optional[int] = None,
    reps: int = 1,
    rep_backend: Optional[str] = None,
    ci_target: Optional[float] = None,
) -> List[RandomOptPoint]:
    """Hit ratio / cost of RANDOM-OPT lookup vs the number of initiations."""
    return run_sweep(
        list(initiations),
        partial(_random_opt_point, n=n, mobility=mobility,
                max_speed=max_speed, advertise_factor=advertise_factor,
                n_keys=n_keys, n_lookups=n_lookups, seed=seed,
                reps=reps, rep_backend=rep_backend, ci_target=ci_target),
        jobs=jobs, base_seed=seed, combine=lambda results: results[0])
