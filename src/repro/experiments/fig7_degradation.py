"""Figure 7 — degradation of the intersection probability under churn.

Plots the Section 6.1 closed forms for all churn cases and cross-validates
them with a direct Monte-Carlo simulation of the quorum selection process
(no network needed: the degradation analysis is purely combinatorial).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.analysis.degradation import (
    miss_failures_adjusted_lookup,
    miss_failures_constant_lookup,
    miss_joins_adjusted_lookup,
    miss_joins_and_failures,
    miss_joins_constant_lookup,
)

CHURN_MODES = (
    "failures-constant",
    "failures-adjusted",
    "joins-constant",
    "joins-adjusted",
    "both",
)

_CLOSED_FORMS: Dict[str, Callable[[float, float], float]] = {
    "failures-constant": miss_failures_constant_lookup,
    "failures-adjusted": miss_failures_adjusted_lookup,
    "joins-constant": miss_joins_constant_lookup,
    "joins-adjusted": miss_joins_adjusted_lookup,
    "both": miss_joins_and_failures,
}


@dataclass
class DegradationPoint:
    """Intersection probability at churn fraction ``f`` for one mode."""

    mode: str
    f: float
    analytic_intersection: float
    simulated_intersection: float


def _simulate_once(rng: random.Random, n0: int, qa0: int, ql0: int,
                   f: float, mode: str) -> bool:
    """One Monte-Carlo trial of advertise-then-churn-then-lookup."""
    universe = list(range(n0))
    advertise = set(rng.sample(universe, qa0))

    if mode.startswith("failures") or mode == "both":
        failed = set(rng.sample(universe, int(round(f * n0))))
    else:
        failed = set()
    joined: List[int] = []
    if mode.startswith("joins") or mode == "both":
        joined = list(range(n0, n0 + int(round(f * n0))))

    survivors = [v for v in universe if v not in failed] + joined
    advertise_alive = advertise - failed
    n_t = len(survivors)

    if mode in ("failures-adjusted", "joins-adjusted"):
        c = ql0 / math.sqrt(n0)
        ql_t = max(1, int(round(c * math.sqrt(n_t))))
    else:
        ql_t = ql0
    ql_t = min(ql_t, n_t)
    lookup = set(rng.sample(survivors, ql_t))
    return bool(lookup & advertise_alive)


def degradation_curves(
    epsilon: float = 0.05,
    fractions: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    n: int = 400,
    trials: int = 300,
    modes: Sequence[str] = CHURN_MODES,
    seed: int = 0,
) -> List[DegradationPoint]:
    """Analytic + Monte-Carlo intersection probability vs churn fraction.

    Quorums are sized symmetrically for the initial epsilon; churn then
    fails/joins a fraction ``f`` of the network.
    """
    rng = random.Random(seed)
    q0 = int(math.ceil(math.sqrt(n * math.log(1.0 / epsilon))))
    points: List[DegradationPoint] = []
    for mode in modes:
        fn = _CLOSED_FORMS[mode]
        for f in fractions:
            analytic = 1.0 - fn(epsilon, f)
            successes = sum(
                _simulate_once(rng, n, q0, q0, f, mode)
                for _ in range(trials)
            )
            points.append(DegradationPoint(
                mode=mode, f=f, analytic_intersection=analytic,
                simulated_intersection=successes / trials))
    return points
