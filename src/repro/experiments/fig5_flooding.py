"""Figure 5 — flooding coverage and coverage granularity vs TTL.

Measures how many distinct nodes a TTL-scoped flood covers, across network
sizes and densities, and the coverage granularity CG(i) = N(i)/N(i-1).
The paper's findings: coverage grows superlinearly with TTL; CG(3) > 2 and
CG(4)..CG(5) sit between 1.25 and 1.75 — too coarse for fine-grained
quorum-size control.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import make_network


@dataclass
class FloodPoint:
    """Mean flood coverage at one TTL."""

    n: int
    avg_degree: float
    ttl: int
    coverage: float
    messages: float
    granularity: float  # coverage(ttl) / coverage(ttl-1); 0 for ttl=1


def flooding_coverage(
    n: int = 200,
    avg_degree: float = 10.0,
    ttls: Sequence[int] = (1, 2, 3, 4, 5, 6),
    floods_per_ttl: int = 8,
    seed: int = 0,
) -> List[FloodPoint]:
    """Average coverage per TTL from random originators."""
    net = make_network(n, avg_degree=avg_degree, seed=seed)
    rng = random.Random(seed + 1)
    points: List[FloodPoint] = []
    previous = 1.0
    for ttl in ttls:
        cov_total = 0
        msg_total = 0
        for _ in range(floods_per_ttl):
            origin = net.random_alive_node(rng)
            outcome = net.flood(origin, ttl)
            cov_total += outcome.coverage
            msg_total += outcome.messages
        coverage = cov_total / floods_per_ttl
        messages = msg_total / floods_per_ttl
        granularity = coverage / previous if ttl > min(ttls) else 0.0
        points.append(FloodPoint(n=n, avg_degree=avg_degree, ttl=ttl,
                                 coverage=coverage, messages=messages,
                                 granularity=granularity))
        previous = coverage
    return points


def flooding_by_size(
    sizes: Sequence[int] = (50, 100, 200, 400),
    avg_degree: float = 10.0,
    ttls: Sequence[int] = (1, 2, 3, 4, 5),
    floods_per_ttl: int = 6,
    seed: int = 0,
) -> List[FloodPoint]:
    """Figure 5(a)/(c): coverage vs TTL across network sizes."""
    points: List[FloodPoint] = []
    for n in sizes:
        points.extend(flooding_coverage(n=n, avg_degree=avg_degree,
                                        ttls=ttls,
                                        floods_per_ttl=floods_per_ttl,
                                        seed=seed))
    return points


def flooding_by_density(
    densities: Sequence[float] = (7, 10, 15, 20, 25),
    n: int = 200,
    ttls: Sequence[int] = (1, 2, 3, 4, 5),
    floods_per_ttl: int = 6,
    seed: int = 0,
) -> List[FloodPoint]:
    """Figure 5(b)/(d): coverage vs TTL across densities."""
    points: List[FloodPoint] = []
    for d in densities:
        points.extend(flooding_coverage(n=n, avg_degree=d, ttls=ttls,
                                        floods_per_ttl=floods_per_ttl,
                                        seed=seed))
    return points
