"""Minimal ASCII chart rendering for terminal figure output.

Used by the CLI so `python -m repro fig10` can show the hit-ratio curve
shape directly in the terminal, next to the data table.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]


def render_series(
    series: Dict[str, Sequence[Point]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Scatter-plot one or more named (x, y) series on an ASCII canvas.

    Each series is drawn with its own marker (first letter of its name,
    falling back to symbols); axes are annotated with min/max values.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    markers = "*+xo#@%&"
    legend: List[str] = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = name[0] if name and name[0] not in " " else markers[idx % 8]
        if any(marker in line for line in legend):
            marker = markers[idx % 8]
        legend.append(f"  {marker} = {name}")
        for x, y in pts:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            canvas[height - 1 - row][col] = marker

    top = f"{y_max:g}".rjust(10)
    bottom = f"{y_min:g}".rjust(10)
    out = []
    for i, line in enumerate(canvas):
        prefix = top if i == 0 else (bottom if i == height - 1
                                     else " " * 10)
        out.append(f"{prefix} |{''.join(line)}|")
    x_axis = f"{'':10} +{'-' * width}+"
    x_ticks = f"{'':10}  {f'{x_min:g}':<{width // 2}}{f'{x_max:g}':>{width // 2}}"
    out.append(x_axis)
    out.append(x_ticks)
    out.append(f"{'':10}  {x_label} vs {y_label}")
    out.extend(legend)
    return "\n".join(out)
