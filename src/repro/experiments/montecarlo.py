"""Batched Monte-Carlo replication with streaming confidence statistics.

Every figure in the paper is a Monte-Carlo estimate — hit ratio, cost,
intersection probability — so point estimates from a single run are not
statistically honest.  This module runs R independent replicas of a
scenario and reports ``mean ± CI`` for every metric:

* **Replica seeds** come from one counter-based Philox draw
  (:func:`repro.sim.rng.replica_seeds`), prefix-stable so a sequential
  stopping rule can extend a run without perturbing earlier replicas.
* **Backends** — ``"sequential"`` runs each replica exactly the way the
  figure modules always have (fresh network, fresh scenario).
  ``"batched"`` shares the deterministic per-deployment computations
  across replicas: one replica-axis cell-binning pass builds every
  replica's neighbor tables (:func:`~repro.geometry.kernel.batched_neighbor_tables`),
  and a shared :class:`~repro.simnet.replication.TopologyRouteOracle`
  memoizes BFS route discovery over the common static topology.  The two
  backends are **statistic-identical** for the same seed list (asserted
  in ``tests/test_montecarlo.py``); batched is just faster.
* **Aggregation** — Welford streaming mean/variance per metric, a Wilson
  score interval for the pooled hit ratio (valid even at one replica,
  since it pools individual lookups), and an optional sequential
  stopping rule: run replicas until the hit-ratio CI half-width drops
  below ``target_halfwidth`` (bounded by ``max_reps``).

Replica 0 always uses the legacy scenario seed (``base_seed + 1``) and the
network's own named workload streams, so ``reps=1`` reproduces the
single-run numbers every figure has always reported.  Replicas 1..R-1
reseed the workload streams (quorum draws, walk choices, backoff jitter,
random drops) from their Philox seed so replicas are statistically
independent, while deployment streams (placement, mobility, churn,
membership views) stay tied to the network seed — same world, different
workload.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from statistics import NormalDist
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.common import ScenarioStats
from repro.geometry.kernel import batched_neighbor_tables
from repro.obs.audit import AuditError, AuditViolation
from repro.obs.profile import PROFILER
from repro.obs.trace import record_event
from repro.sim.rng import derive_stream_seed, replica_seeds
from repro.simnet.network import NetworkConfig, SimNetwork
from repro.simnet.replication import TopologyRouteOracle

#: Named RNG streams that carry *workload* randomness and are reseeded
#: per replica (replica 0 keeps the legacy network-derived streams).
#: Deployment streams — placement, mobility, membership, churn — are NOT
#: listed: replicas share the world and vary only the workload.
WORKLOAD_STREAMS: Tuple[str, ...] = (
    "random-strategy", "sampling-strategy", "path-strategy",
    "random-opt-strategy", "algebra-strategy", "access-policy", "drops",
)

#: Exception types a replica may raise for *workload* reasons and that
#: ``on_error="skip"`` is allowed to absorb.  Anything else — including
#: every :class:`~repro.obs.audit.AuditError`, which subclasses
#: ``RuntimeError`` and is re-raised explicitly — propagates.  The old
#: bare ``except Exception`` silently discarded strict-audit failures
#: and coding bugs alike as "faulted replicas".
REPLICA_ERRORS: Tuple[type, ...] = (
    ArithmeticError, LookupError, OSError, RuntimeError, ValueError)

#: ScenarioStats metrics aggregated across replicas.
SCENARIO_METRICS: Tuple[str, ...] = (
    "hit_ratio", "intersection_ratio", "reply_drop_ratio",
    "avg_advertise_messages", "avg_advertise_routing",
    "avg_advertise_latency", "avg_lookup_messages", "avg_lookup_routing",
    "avg_lookup_latency", "avg_lookup_messages_on_hit",
    "avg_lookup_messages_on_miss",
)

_NAN = float("nan")


def default_backend() -> str:
    """Replication backend from ``REPRO_REP_BACKEND`` (default batched)."""
    backend = os.environ.get("REPRO_REP_BACKEND", "batched")
    return backend if backend in ("batched", "sequential") else "batched"


# -- streaming statistics ---------------------------------------------------


class Welford:
    """Streaming mean/variance (Welford's online algorithm)."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (nan below two observations)."""
        if self.count < 2:
            return _NAN
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else _NAN

    def halfwidth(self, confidence: float = 0.95) -> float:
        """Normal-approximation CI half-width of the mean."""
        if self.count < 2:
            return _NAN
        z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
        return z * self.std / math.sqrt(self.count)


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the boundaries (0 or ``trials`` successes) where the
    normal approximation collapses to a zero-width interval.  Returns
    ``(nan, nan)`` when there are no trials.
    """
    if trials <= 0:
        return (_NAN, _NAN)
    if not 0 <= successes <= trials:
        raise ValueError(f"need 0 <= successes <= trials, "
                         f"got {successes}/{trials}")
    z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    spread = (z / denom) * math.sqrt(
        p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
    return (max(0.0, center - spread), min(1.0, center + spread))


@dataclass(frozen=True)
class MetricEstimate:
    """Across-replica estimate of one scenario metric."""

    mean: float
    halfwidth: float    # CI half-width (nan below two replicas)
    std: float
    reps: int


# -- the replication plan and outcome ---------------------------------------


@dataclass
class ReplicationPlan:
    """How to replicate one scenario point."""

    reps: int = 1
    #: "batched" | "sequential" | None (None reads REPRO_REP_BACKEND).
    backend: Optional[str] = None
    confidence: float = 0.95
    #: Sequential stopping: add replicas until the pooled hit-ratio
    #: Wilson half-width drops below this (None disables the rule).
    target_halfwidth: Optional[float] = None
    #: Replica budget for the stopping rule (defaults to 8x ``reps``).
    max_reps: Optional[int] = None
    #: Give each replica its own deployment (distinct network seed)
    #: instead of replicating the workload over one shared deployment.
    vary_network: bool = False
    #: "raise" propagates replica exceptions; "skip" drops the replica
    #: (the outcome records it in ``faulted``).
    on_error: str = "raise"

    def resolved_backend(self) -> str:
        backend = self.backend or default_backend()
        if backend not in ("batched", "sequential"):
            raise ValueError(f"unknown replication backend {backend!r}")
        return backend

    def replica_budget(self) -> int:
        if self.target_halfwidth is None:
            return self.reps
        if self.max_reps is not None:
            return max(self.max_reps, self.reps)
        return max(8 * self.reps, self.reps + 1, 8)


@dataclass
class ReplicationOutcome:
    """Per-replica stats plus streaming across-replica estimates."""

    stats: List[ScenarioStats]
    seeds: List[int]
    requested_reps: int
    backend: str
    confidence: float
    estimates: Dict[str, MetricEstimate] = field(default_factory=dict)
    wilson: Tuple[float, float] = (_NAN, _NAN)  # pooled hit-ratio CI
    stopped_early: bool = False
    faulted: int = 0

    @property
    def reps(self) -> int:
        """Replicas that actually completed."""
        return len(self.stats)

    def mean(self, metric: str) -> float:
        """Across-replica mean of a metric (nan with zero replicas)."""
        est = self.estimates.get(metric)
        return est.mean if est is not None else _NAN

    def halfwidth(self, metric: str) -> float:
        """CI half-width: Wilson (pooled) for hit_ratio, normal otherwise."""
        if metric == "hit_ratio":
            low, high = self.wilson
            if low == low:  # not nan
                return (high - low) / 2.0
            return _NAN
        est = self.estimates.get(metric)
        return est.halfwidth if est is not None else _NAN

    def ci_dict(self, metrics: Sequence[str] = SCENARIO_METRICS
                ) -> Dict[str, float]:
        """``{metric: half-width}`` for the metrics with a defined CI."""
        out = {}
        for metric in metrics:
            hw = self.halfwidth(metric)
            if hw == hw:  # skip nan
                out[metric] = hw
        return out

    @property
    def merged(self) -> Optional[ScenarioStats]:
        """Pooled ScenarioStats over all replicas (None with zero)."""
        if not self.stats:
            return None
        from repro.experiments.runner import merge_scenario_stats
        return merge_scenario_stats(self.stats)


def summarize_replicas(stats: Sequence[ScenarioStats],
                       confidence: float = 0.95
                       ) -> Tuple[Dict[str, MetricEstimate],
                                  Tuple[float, float]]:
    """Across-replica estimates + pooled hit-ratio Wilson interval.

    Zero replicas (``reps=0`` or every replica faulted) yield all-NaN
    estimates rather than raising — figures render NaN rows.
    """
    estimates: Dict[str, MetricEstimate] = {}
    for metric in SCENARIO_METRICS:
        acc = Welford()
        for s in stats:
            acc.update(float(getattr(s, metric)))
        if acc.count == 0:
            estimates[metric] = MetricEstimate(_NAN, _NAN, _NAN, 0)
        else:
            estimates[metric] = MetricEstimate(
                mean=acc.mean, halfwidth=acc.halfwidth(confidence),
                std=acc.std, reps=acc.count)
    hits = sum(s.hits for s in stats)
    present = sum(s.lookups_present for s in stats)
    return estimates, wilson_interval(hits, present, confidence)


def _pooled_hit_halfwidth(stats: Sequence[ScenarioStats],
                          confidence: float) -> float:
    hits = sum(s.hits for s in stats)
    present = sum(s.lookups_present for s in stats)
    low, high = wilson_interval(hits, present, confidence)
    if low != low:
        return math.inf
    return (high - low) / 2.0


# -- replica seeds ----------------------------------------------------------


def scenario_seed_list(base_seed: int, reps: int) -> List[int]:
    """Per-replica scenario seeds.

    Replica 0 gets the legacy ``base_seed + 1`` (so one replica
    reproduces the numbers the figures have always reported); the rest
    come from a prefix-stable Philox draw keyed on ``base_seed``.
    """
    if reps <= 0:
        return []
    return [base_seed + 1] + replica_seeds(base_seed, reps - 1)


def _record_faulted_replica(net: SimNetwork, index: int,
                            exc: BaseException) -> None:
    """Leave an audit trail for a replica skipped by ``on_error="skip"``.

    The fault is recorded on every channel so none silently loses it: a
    ``replica-fault`` trace event, the ``replication.faulted`` metrics
    counter, and a violation on the network's auditor.  The violation is
    appended directly rather than through ``flag()``: ``on_error="skip"``
    is an explicit request to keep the campaign running, so strict mode
    surfaces it in the violation summary instead of aborting — whereas a
    genuine :class:`AuditError` from inside the replica is always
    re-raised by the caller.
    """
    record_event(net, "replica-fault", replica=index,
                 error=type(exc).__name__, detail=str(exc)[:200])
    metrics = getattr(net, "metrics", None)
    if metrics is not None:
        metrics.counter("replication.faulted").inc()
    auditor = getattr(net, "auditor", None)
    if auditor is not None:
        auditor.violations.append(AuditViolation(
            code="replica-fault",
            message=f"replica {index} skipped: {type(exc).__name__}: {exc}",
            strategy="replication", kind="replica"))


def _seed_workload_streams(net: SimNetwork, replica_index: int,
                           replica_seed: int) -> None:
    """Reseed the workload streams of one replica's network.

    Replica 0 keeps the network-derived streams (legacy behaviour); later
    replicas get independent streams derived from their replica seed, so
    quorum draws, walks, backoff jitter and random drops decorrelate
    across replicas.  Both backends apply the identical reseeding.
    """
    if replica_index == 0:
        return
    for name in WORKLOAD_STREAMS:
        net.rngs.seed_stream(
            name, derive_stream_seed(replica_seed, f"replica:{name}"))


# -- network builders -------------------------------------------------------


class _ReplicaNetworkBuilder:
    """Constructs per-replica networks; the batched flavour shares the
    deterministic per-deployment work (neighbor tables, route oracle)."""

    def __init__(self, config: NetworkConfig, plan: ReplicationPlan,
                 batched: bool) -> None:
        self.config = config
        self.plan = plan
        self.batched = batched
        self._oracles: Dict[int, TopologyRouteOracle] = {}
        self._access_states: Dict[int, "SharedAccessState"] = {}
        self._tables: Dict[int, Dict[int, List[int]]] = {}
        self._static = config.mobility == "static"
        self._vectorized = config.neighbor_backend == "vectorized"

    def _config_for(self, replica: int) -> NetworkConfig:
        if not self.plan.vary_network:
            return self.config
        return replace(self.config, seed=derive_stream_seed(
            self.config.seed, f"replica-net:{replica}"))

    def build_chunk(self, start: int, count: int) -> List[SimNetwork]:
        """Networks for replicas ``start .. start+count-1``."""
        configs = [self._config_for(start + i) for i in range(count)]
        if not (self.batched and self._static and self._vectorized):
            return [SimNetwork(cfg) for cfg in configs]
        with PROFILER.phase("replication.build"):
            nets = [SimNetwork(cfg, defer_neighbor_init=True)
                    for cfg in configs]
            # One replica-axis kernel pass covers every deployment not
            # yet seen (with a shared network seed that is one pass for
            # the whole replication run).
            fresh = []
            for cfg, net in zip(configs, nets):
                if cfg.seed not in self._tables and \
                        all(c.seed != cfg.seed for c, _ in fresh):
                    fresh.append((cfg, net))
            if fresh:
                ids = fresh[0][1].alive_nodes()
                stack = np.array(
                    [[net.position(i) for i in ids] for _, net in fresh],
                    dtype=np.float64)
                tables_list = batched_neighbor_tables(
                    ids, stack, side=self.config.side,
                    radius=self.config.radio_range,
                    torus=self.config.torus)
                for (cfg, _), tables in zip(fresh, tables_list):
                    self._tables[cfg.seed] = tables
            for cfg, net in zip(configs, nets):
                net.finish_deferred_init(self._tables.get(cfg.seed))
                oracle = self._oracles.setdefault(
                    cfg.seed, TopologyRouteOracle())
                net.attach_route_oracle(oracle)
                # Replica axis and within-access batch axis share one
                # kernel state: the same CSR snapshot + BFS memo serves
                # every replica of the deployment (sound while the
                # topology stays at the attach version).
                from repro.core.access_engine import SharedAccessState
                state = self._access_states.setdefault(
                    cfg.seed, SharedAccessState())
                net.access_engine.adopt_shared(net, state)
        return nets


# -- the engine -------------------------------------------------------------


def run_replicated(
    config: NetworkConfig,
    run_replica: Callable[[SimNetwork, int], ScenarioStats],
    plan: Optional[ReplicationPlan] = None,
    base_seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
    **plan_overrides,
) -> ReplicationOutcome:
    """Run ``run_replica(net, seed)`` over R replicas of one deployment.

    ``config`` is the network template (the engine owns construction so
    the batched backend can share geometry work across replicas);
    ``run_replica`` receives a freshly built network plus that replica's
    scenario seed and returns a :class:`ScenarioStats`.

    ``seeds`` overrides the derived scenario seed list (both backends
    always consume the same seeds — the batched/sequential switch cannot
    change a single reported statistic).  Extra keyword arguments are
    :class:`ReplicationPlan` fields.
    """
    if plan is None:
        plan = ReplicationPlan(**plan_overrides)
    elif plan_overrides:
        plan = replace(plan, **plan_overrides)
    if plan.reps < 0:
        raise ValueError("reps must be non-negative")
    if plan.on_error not in ("raise", "skip"):
        raise ValueError(f"unknown on_error mode {plan.on_error!r}")
    backend = plan.resolved_backend()
    budget = plan.replica_budget()
    if seeds is not None:
        seed_list = [int(s) for s in seeds]
        budget = min(budget, len(seed_list))
    else:
        seed_list = scenario_seed_list(base_seed, budget)

    builder = _ReplicaNetworkBuilder(config, plan,
                                     batched=(backend == "batched"))
    stats: List[ScenarioStats] = []
    used_seeds: List[int] = []
    faulted = 0
    done = 0
    stopped_early = False
    while done < budget:
        if done < min(plan.reps, budget):
            # Mandatory replicas: build the whole remaining block at once
            # so the batched backend amortizes construction.
            chunk = min(plan.reps, budget) - done
        elif plan.target_halfwidth is not None:
            halfwidth = _pooled_hit_halfwidth(stats, plan.confidence)
            if halfwidth <= plan.target_halfwidth:
                stopped_early = True
                break
            chunk = min(max(1, plan.reps), budget - done)
        else:
            break
        nets = builder.build_chunk(done, chunk)
        for offset, net in enumerate(nets):
            index = done + offset
            seed = seed_list[index]
            _seed_workload_streams(net, index, seed)
            net.trace.context["replica"] = index
            try:
                with PROFILER.phase("replication.replica"):
                    result = run_replica(net, seed)
            except AuditError:
                # An accounting violation is never workload noise; even
                # on_error="skip" must not bury a strict-audit failure.
                raise
            except REPLICA_ERRORS as exc:
                if plan.on_error == "raise":
                    raise
                faulted += 1
                _record_faulted_replica(net, index, exc)
                continue
            stats.append(result)
            used_seeds.append(seed)
        done += chunk
    if (plan.target_halfwidth is not None and not stopped_early
            and _pooled_hit_halfwidth(stats, plan.confidence)
            <= plan.target_halfwidth):
        stopped_early = done < budget
    estimates, wilson = summarize_replicas(stats, plan.confidence)
    return ReplicationOutcome(
        stats=stats, seeds=used_seeds, requested_reps=plan.reps,
        backend=backend, confidence=plan.confidence, estimates=estimates,
        wilson=wilson, stopped_early=stopped_early, faulted=faulted)


def scenario_stats_equal(a: ScenarioStats, b: ScenarioStats) -> bool:
    """Field-by-field equality of two stats bundles (exact, not approx)."""
    for f in dataclass_fields(ScenarioStats):
        if getattr(a, f.name) != getattr(b, f.name):
            return False
    return True
