"""Figures 13 & 14 — fast mobility and its remedies, plus churn (14f).

Figure 13 (no reply-path repair): as the max speed grows from 2 to 20 m/s,
the *hit ratio* deteriorates — but the intersection probability itself does
not (RW salvation keeps the walk alive); the loss is entirely reply
messages dropped on the broken reverse path.

Figure 14 (with reply-path local repair, TTL 3 + global fallback): the hit
ratio is restored at the cost of extra routing; a larger advertise quorum
(3 sqrt(n)) also helps proactively by shortening lookups.  Figure 14(f):
intersection probability under batch churn with adjusted |Ql| degrades
only slowly (0.95 -> ~0.87 at 50% churn).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.core.strategies import RandomStrategy, UniquePathStrategy
from repro.experiments.common import (
    ScenarioStats,
    make_membership,
    run_scenario,
    scenario_config,
)
from repro.experiments.montecarlo import run_replicated
from repro.experiments.runner import run_sweep
from repro.simnet.churn import apply_churn


@dataclass
class MobilityPoint:
    """Lookup behaviour at one max speed."""

    n: int
    max_speed: float
    local_repair: bool
    advertise_factor: float
    hit_ratio: float
    intersection_ratio: float     # hits ignoring reply delivery
    reply_drop_ratio: float
    avg_messages: float
    avg_routing: float
    reps: int = 1
    ci: Dict[str, float] = field(default_factory=dict)  # metric -> half-width


def _mobility_point(speed, task_seed, *, n: int, local_repair: bool,
                    advertise_factor: float, lookup_factor: float,
                    n_keys: int, n_lookups: int, salvation: bool,
                    hop_latency: float, seed: int, reps: int = 1,
                    rep_backend: Optional[str] = None,
                    ci_target: Optional[float] = None) -> MobilityPoint:
    """One max-speed sweep point (process-pool worker)."""
    qa = max(1, int(round(advertise_factor * math.sqrt(n))))
    ql = max(1, int(round(lookup_factor * math.sqrt(n))))

    def run(net, rep_seed):
        membership = make_membership(net, "random")
        return run_scenario(
            net,
            advertise_strategy=RandomStrategy(membership),
            lookup_strategy=UniquePathStrategy(
                salvation=salvation,
                local_repair=local_repair,
                allow_global_repair=local_repair),
            advertise_size=qa, lookup_size=ql,
            n_keys=n_keys, n_lookups=n_lookups, seed=rep_seed,
        )

    outcome = run_replicated(
        scenario_config(n, mobility="waypoint", max_speed=speed, seed=seed,
                        hop_latency=hop_latency),
        run, base_seed=seed, reps=reps, backend=rep_backend,
        target_halfwidth=ci_target)
    return MobilityPoint(
        n=n, max_speed=speed, local_repair=local_repair,
        advertise_factor=advertise_factor,
        hit_ratio=outcome.mean("hit_ratio"),
        intersection_ratio=outcome.mean("intersection_ratio"),
        reply_drop_ratio=outcome.mean("reply_drop_ratio"),
        avg_messages=outcome.mean("avg_lookup_messages"),
        avg_routing=outcome.mean("avg_lookup_routing"),
        reps=outcome.reps, ci=outcome.ci_dict())


def mobility_sweep(
    n: int = 200,
    speeds: Sequence[float] = (2.0, 5.0, 10.0, 20.0),
    local_repair: bool = False,
    advertise_factor: float = 2.0,
    lookup_factor: float = 1.15,
    n_keys: int = 10,
    n_lookups: int = 50,
    salvation: bool = True,
    hop_latency: float = 0.05,
    seed: int = 0,
    jobs: Optional[int] = None,
    reps: int = 1,
    rep_backend: Optional[str] = None,
    ci_target: Optional[float] = None,
) -> List[MobilityPoint]:
    """Hit ratio / intersection / reply drops vs maximum node speed.

    ``hop_latency`` models the per-hop MAC/queueing delay under load
    (~50 ms); it is what gives mobility time to break the reverse path
    while a long walk plus its reply are in flight.
    """
    return run_sweep(
        list(speeds),
        partial(_mobility_point, n=n, local_repair=local_repair,
                advertise_factor=advertise_factor,
                lookup_factor=lookup_factor, n_keys=n_keys,
                n_lookups=n_lookups, salvation=salvation,
                hop_latency=hop_latency, seed=seed, reps=reps,
                rep_backend=rep_backend, ci_target=ci_target),
        jobs=jobs, base_seed=seed, combine=lambda results: results[0])


@dataclass
class ChurnPoint:
    """Figure 14(f): intersection probability after batch churn."""

    n: int
    churn_fraction: float
    hit_ratio: float
    analytic_floor: float   # eps^(1-f) closed-form prediction
    reps: int = 1
    ci: Dict[str, float] = field(default_factory=dict)  # metric -> half-width


def _churn_point(f, task_seed, *, n: int, avg_degree: float, epsilon: float,
                 n_keys: int, n_lookups: int, seed: int, reps: int = 1,
                 rep_backend: Optional[str] = None,
                 ci_target: Optional[float] = None) -> ChurnPoint:
    """One churn-fraction sweep point (process-pool worker)."""
    from repro.core.biquorum import ProbabilisticBiquorum
    from repro.services.location import LocationService

    q0 = max(1, int(math.ceil(math.sqrt(n * math.log(1.0 / epsilon)))))

    def run(net, rep_seed):
        membership = make_membership(net, "random")
        rng = random.Random(rep_seed)
        biquorum = ProbabilisticBiquorum(
            net,
            advertise=RandomStrategy(membership),
            lookup=UniquePathStrategy(),
            advertise_size=q0, lookup_size=q0,
            adjust_to_network_size=False,
        )
        service = LocationService(biquorum)
        keys = [f"key-{i}" for i in range(n_keys)]
        for key in keys:
            service.advertise(net.random_alive_node(rng), key, key)

        apply_churn(net, fail_fraction=f, join_fraction=f, rng=rng,
                    keep_connected=True)
        membership.refresh()

        # Adjust |Ql| to the post-churn network size (Section 6.1).
        c = q0 / math.sqrt(n)
        biquorum.set_sizes(
            lookup_size=max(1, int(round(c * math.sqrt(net.n_alive)))))

        hits = 0
        for _ in range(n_lookups):
            looker = net.random_alive_node(rng)
            hits += bool(service.lookup(looker, rng.choice(keys)).found)
        return ScenarioStats(n=net.n_alive, lookups=n_lookups, hits=hits)

    outcome = run_replicated(
        scenario_config(n, avg_degree=avg_degree, seed=seed), run,
        base_seed=seed, reps=reps, backend=rep_backend,
        target_halfwidth=ci_target)
    return ChurnPoint(
        n=n, churn_fraction=f, hit_ratio=outcome.mean("hit_ratio"),
        analytic_floor=1.0 - epsilon ** (1.0 - f),
        reps=outcome.reps, ci=outcome.ci_dict())


def churn_sweep(
    n: int = 200,
    avg_degree: float = 15.0,
    fractions: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    epsilon: float = 0.05,
    n_keys: int = 10,
    n_lookups: int = 50,
    seed: int = 0,
    jobs: Optional[int] = None,
    reps: int = 1,
    rep_backend: Optional[str] = None,
    ci_target: Optional[float] = None,
) -> List[ChurnPoint]:
    """Figure 14(f): advertise, churn (fail+join), then lookup with |Ql|
    adjusted to the new network size."""
    return run_sweep(
        list(fractions),
        partial(_churn_point, n=n, avg_degree=avg_degree, epsilon=epsilon,
                n_keys=n_keys, n_lookups=n_lookups, seed=seed, reps=reps,
                rep_backend=rep_backend, ci_target=ci_target),
        jobs=jobs, base_seed=seed, combine=lambda results: results[0])
