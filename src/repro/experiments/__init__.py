"""Per-figure experiment drivers (the paper's Section 8 study)."""

from repro.experiments.common import (
    ScenarioStats,
    format_pm,
    format_table,
    make_membership,
    make_network,
    run_scenario,
    scenario_config,
)
from repro.experiments.montecarlo import (
    MetricEstimate,
    ReplicationOutcome,
    ReplicationPlan,
    Welford,
    run_replicated,
    wilson_interval,
)
from repro.experiments.fig4_pct import (
    PctPoint,
    measure_pct,
    pct_by_density,
    pct_by_network_size,
)
from repro.experiments.fig5_flooding import (
    FloodPoint,
    flooding_by_density,
    flooding_by_size,
    flooding_coverage,
)
from repro.experiments.fig7_degradation import (
    CHURN_MODES,
    DegradationPoint,
    degradation_curves,
)
from repro.experiments.fig8_random import (
    RandomAdvertisePoint,
    RandomLookupPoint,
    random_advertise_cost,
    random_lookup_hit_ratio,
)
from repro.experiments.fig9_random_opt import RandomOptPoint, random_opt_lookup
from repro.experiments.fig10_unique_path import (
    UniquePathPoint,
    ablation_early_halting,
    unique_path_lookup,
)
from repro.experiments.fig11_flooding import FloodingLookupPoint, flooding_lookup
from repro.experiments.fig12_path_path import PathPathPoint, path_x_path
from repro.experiments.fig13_14_mobility import (
    ChurnPoint,
    MobilityPoint,
    churn_sweep,
    mobility_sweep,
)
from repro.experiments.fig_quorum import (
    QuorumLoadPoint,
    quorum_load_point,
    quorum_load_sweep,
)
from repro.experiments.fig_maintenance import (
    MaintenancePoint,
    expected_intersection,
    maintenance_curves,
)
from repro.experiments.fig_byz import (
    ByzPoint,
    byzantine_sweep,
    undefended_corrupt_bound,
)
from repro.experiments.fig_kv import (
    KVCell,
    KVSweepPoint,
    evaluate_kv_point,
    kv_sweep,
)
from repro.experiments.workload import (
    KVPointConfig,
    KVRunStats,
    Operations,
    WorkloadSpec,
    generate_operations,
    run_workload_batched,
    run_workload_sequential,
    zipf_pmf,
)
from repro.experiments.ascii_plot import render_series
from repro.experiments.runner import (
    SweepResult,
    derive_task_seed,
    merge_scenario_stats,
    run_sweep,
)
from repro.experiments.workloads import (
    OperationMix,
    SizingRecommendation,
    TauEstimator,
    ZipfKeySampler,
    generate_operation_mix,
)
from repro.experiments.fig15_16_summary import (
    SummaryRow,
    TradeoffPoint,
    lookup_tradeoff_curves,
    render_summary,
    summary_table,
)

__all__ = [
    "ScenarioStats", "format_pm", "format_table", "make_membership",
    "make_network", "run_scenario", "scenario_config",
    "MetricEstimate", "ReplicationOutcome", "ReplicationPlan", "Welford",
    "run_replicated", "wilson_interval",
    "PctPoint", "measure_pct", "pct_by_density", "pct_by_network_size",
    "FloodPoint", "flooding_by_density", "flooding_by_size",
    "flooding_coverage",
    "CHURN_MODES", "DegradationPoint", "degradation_curves",
    "RandomAdvertisePoint", "RandomLookupPoint", "random_advertise_cost",
    "random_lookup_hit_ratio",
    "RandomOptPoint", "random_opt_lookup",
    "UniquePathPoint", "ablation_early_halting", "unique_path_lookup",
    "FloodingLookupPoint", "flooding_lookup",
    "PathPathPoint", "path_x_path",
    "ChurnPoint", "MobilityPoint", "churn_sweep", "mobility_sweep",
    "MaintenancePoint", "expected_intersection", "maintenance_curves",
    "ByzPoint", "byzantine_sweep", "undefended_corrupt_bound",
    "KVCell", "KVSweepPoint", "evaluate_kv_point", "kv_sweep",
    "KVPointConfig", "KVRunStats", "Operations", "WorkloadSpec",
    "generate_operations", "run_workload_batched",
    "run_workload_sequential", "zipf_pmf",
    "QuorumLoadPoint", "quorum_load_point", "quorum_load_sweep",
    "SummaryRow", "TradeoffPoint", "lookup_tradeoff_curves",
    "render_summary", "summary_table",
    "render_series",
    "SweepResult", "derive_task_seed", "merge_scenario_stats", "run_sweep",
    "OperationMix", "SizingRecommendation", "TauEstimator",
    "ZipfKeySampler", "generate_operation_mix",
]
