"""Figures 15 & 16 — the cross-strategy comparison and the summary table.

Figure 15: hit ratio vs messages-per-lookup curves for the three lookup
strategies (RANDOM-OPT, UNIQUE-PATH, FLOODING) under RANDOM advertise.
The paper's shape: UNIQUE-PATH dominates at high intersection targets;
FLOODING wins only at low targets; RANDOM-OPT is inferior throughout even
ignoring its routing cost.

Figure 16: the summary cost table at intersection 0.9 — advertise cost and
per-lookup hit/miss cost for each strategy combination, static and mobile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.strategies import (
    AccessStrategy,
    FloodingStrategy,
    RandomOptStrategy,
    RandomStrategy,
    UniquePathStrategy,
)
from repro.experiments.common import (
    ScenarioStats,
    format_table,
    make_membership,
    make_network,
    run_scenario,
)


@dataclass
class TradeoffPoint:
    """One (messages, hit-ratio) point on a lookup strategy's curve."""

    strategy: str
    knob: float                  # the swept parameter (size factor, X, TTL)
    hit_ratio: float
    avg_messages: float
    avg_routing: float


def lookup_tradeoff_curves(
    n: int = 200,
    n_keys: int = 10,
    n_lookups: int = 50,
    advertise_factor: float = 2.0,
    seed: int = 0,
) -> Dict[str, List[TradeoffPoint]]:
    """Figure 15: per-strategy (messages, hit ratio) curves."""
    qa = max(1, int(round(advertise_factor * math.sqrt(n))))
    curves: Dict[str, List[TradeoffPoint]] = {
        "UNIQUE-PATH": [], "RANDOM-OPT": [], "FLOODING": [],
    }

    def run(lookup_strategy: AccessStrategy, ql: int) -> ScenarioStats:
        net = make_network(n, seed=seed)
        membership = make_membership(net, "random")
        if hasattr(lookup_strategy, "membership"):
            lookup_strategy.membership = membership
        return run_scenario(
            net, advertise_strategy=RandomStrategy(membership),
            lookup_strategy=lookup_strategy,
            advertise_size=qa, lookup_size=ql,
            n_keys=n_keys, n_lookups=n_lookups, seed=seed + 1)

    for factor in (0.25, 0.5, 0.75, 1.0, 1.15, 1.5):
        ql = max(1, int(round(factor * math.sqrt(n))))
        stats = run(UniquePathStrategy(), ql)
        curves["UNIQUE-PATH"].append(TradeoffPoint(
            "UNIQUE-PATH", factor, stats.hit_ratio,
            stats.avg_lookup_messages, stats.avg_lookup_routing))

    for x in (1, 2, 3, 4, 6):
        stats = run(RandomOptStrategy(membership=None, initiations=x), 1)
        curves["RANDOM-OPT"].append(TradeoffPoint(
            "RANDOM-OPT", x, stats.hit_ratio,
            stats.avg_lookup_messages, stats.avg_lookup_routing))

    for ttl in (1, 2, 3, 4):
        stats = run(FloodingStrategy(ttl=ttl), 1)
        curves["FLOODING"].append(TradeoffPoint(
            "FLOODING", ttl, stats.hit_ratio,
            stats.avg_lookup_messages, stats.avg_lookup_routing))
    return curves


@dataclass
class SummaryRow:
    """One column of the paper's Figure 16 table."""

    advertise: str
    lookup: str
    mobility: str
    advertise_cost: float
    advertise_routing: float
    lookup_hit_cost: float
    lookup_miss_cost: float
    hit_ratio: float


def summary_table(
    n: int = 200,
    n_keys: int = 10,
    n_lookups: int = 50,
    miss_fraction: float = 0.25,
    mobilities: Sequence[str] = ("static", "waypoint"),
    seed: int = 0,
) -> List[SummaryRow]:
    """Figure 16: cost summary for the main strategy combinations.

    Sizes follow the paper's setting: |Qa| = 2 sqrt(n), |Ql| = 1.15 sqrt(n)
    for RANDOM-advertise mixes (intersection 0.9); the UP x UP mix uses the
    crossing-time sizes ~1.5 n / ln n.
    """
    qa = max(1, int(round(2.0 * math.sqrt(n))))
    ql = max(1, int(round(1.15 * math.sqrt(n))))
    q_pp = max(2, int(round(1.5 * n / math.log(n))))

    combos: List[Tuple[str, str]] = [
        ("RANDOM", "RANDOM"),
        ("RANDOM", "RANDOM-OPT"),
        ("RANDOM", "UNIQUE-PATH"),
        ("RANDOM", "FLOODING"),
        ("UNIQUE-PATH", "UNIQUE-PATH"),
    ]
    rows: List[SummaryRow] = []
    for mobility in mobilities:
        for adv_name, lookup_name in combos:
            net = make_network(n, mobility=mobility, seed=seed)
            membership = make_membership(net, "random")
            strategies: Dict[str, AccessStrategy] = {
                "RANDOM": RandomStrategy(membership),
                "RANDOM-OPT": RandomOptStrategy(membership),
                "UNIQUE-PATH": UniquePathStrategy(
                    local_repair=(mobility == "waypoint")),
                "FLOODING": FloodingStrategy(),
            }
            adv = strategies[adv_name]
            lookup = strategies[lookup_name]
            a_size, l_size = (q_pp, q_pp) if adv_name == lookup_name == \
                "UNIQUE-PATH" else (qa, ql)
            stats = run_scenario(
                net, advertise_strategy=adv, lookup_strategy=lookup,
                advertise_size=a_size, lookup_size=l_size,
                n_keys=n_keys, n_lookups=n_lookups,
                miss_fraction=miss_fraction, seed=seed + 1)
            rows.append(SummaryRow(
                advertise=adv_name, lookup=lookup_name, mobility=mobility,
                advertise_cost=stats.avg_advertise_messages,
                advertise_routing=stats.avg_advertise_routing,
                lookup_hit_cost=stats.avg_lookup_messages_on_hit,
                lookup_miss_cost=stats.avg_lookup_messages_on_miss,
                hit_ratio=stats.hit_ratio))
    return rows


def render_summary(rows: List[SummaryRow]) -> str:
    """ASCII rendering of the Figure 16 table."""
    return format_table(
        ["advertise", "lookup", "mobility", "adv msgs", "adv routing",
         "lookup hit", "lookup miss", "hit ratio"],
        [(r.advertise, r.lookup, r.mobility, r.advertise_cost,
          r.advertise_routing, r.lookup_hit_cost, r.lookup_miss_cost,
          r.hit_ratio) for r in rows],
    )
