"""Workload generation and usage-pattern estimation.

Two pieces of the paper live here:

* **Dynamic tau estimation** (Section 5.4): the lookup:advertise frequency
  ratio ``tau`` drives the cost-optimal asymmetric sizing of Lemma 5.6.
  When it is not known a priori it "can be dynamically estimated based on
  the usage statistics" — :class:`TauEstimator` keeps a sliding window of
  operations and recommends quorum sizes; a wrong or drifting estimate
  never affects correctness, only the message bill (the paper's note).
* **Zipf-popular keys** (Sections 5.4, 7.1): file-sharing-style workloads
  where a few items absorb most lookups — the regime in which bystander
  caching makes "lookup requests for popular data items terminate much
  faster".
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Hashable, List, Optional, Sequence, Tuple

from repro.analysis.costs import optimal_size_ratio
from repro.analysis.intersection import asymmetric_quorum_sizes


class ZipfKeySampler:
    """Keys with Zipf(s) popularity (rank-r probability ∝ 1/r^s)."""

    def __init__(self, keys: Sequence[Hashable], exponent: float = 1.0,
                 rng: Optional[random.Random] = None) -> None:
        if not keys:
            raise ValueError("need at least one key")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.keys = list(keys)
        self.exponent = exponent
        self.rng = rng or random.Random()
        weights = [1.0 / (rank ** exponent)
                   for rank in range(1, len(self.keys) + 1)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)

    def sample(self) -> Hashable:
        """Draw one key by popularity."""
        u = self.rng.random()
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return self.keys[lo]

    def probability_of(self, key: Hashable) -> float:
        rank = self.keys.index(key) + 1
        weights = [1.0 / (r ** self.exponent)
                   for r in range(1, len(self.keys) + 1)]
        return (1.0 / (rank ** self.exponent)) / sum(weights)


@dataclass
class SizingRecommendation:
    """Output of the tau-driven sizing."""

    tau: float
    advertise_size: int
    lookup_size: int


class TauEstimator:
    """Sliding-window estimator of the lookup:advertise ratio.

    Record each operation with :meth:`record_lookup` /
    :meth:`record_advertise`; :meth:`tau` returns the windowed ratio and
    :meth:`recommend_sizes` turns it into Lemma 5.6 quorum sizes for
    given per-node costs.  A wrong tau only costs messages, never the
    intersection guarantee (the recommendation always satisfies
    Corollary 5.3).
    """

    def __init__(self, window: int = 256, prior_tau: float = 1.0) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if prior_tau <= 0:
            raise ValueError("prior_tau must be positive")
        self.window = window
        self.prior_tau = prior_tau
        self._events: Deque[str] = deque(maxlen=window)

    def record_lookup(self) -> None:
        self._events.append("l")

    def record_advertise(self) -> None:
        self._events.append("a")

    @property
    def observed_lookups(self) -> int:
        return sum(1 for e in self._events if e == "l")

    @property
    def observed_advertises(self) -> int:
        return sum(1 for e in self._events if e == "a")

    def tau(self) -> float:
        """Windowed lookup:advertise ratio, smoothed by a one-event prior."""
        lookups = self.observed_lookups
        advertises = self.observed_advertises
        return (lookups + self.prior_tau) / (advertises + 1.0)

    def recommend_sizes(self, n: int, epsilon: float,
                        cost_a: float, cost_l: float) -> SizingRecommendation:
        """Lemma 5.6 sizes for the current tau estimate."""
        tau = self.tau()
        ratio = optimal_size_ratio(tau, cost_a, cost_l)
        qa, ql = asymmetric_quorum_sizes(n, epsilon, ratio)
        return SizingRecommendation(tau=tau,
                                    advertise_size=min(qa, n),
                                    lookup_size=min(ql, n))


@dataclass
class OperationMix:
    """A generated operation schedule."""

    operations: List[Tuple[str, Hashable]]  # ("lookup"|"advertise", key)

    @property
    def tau(self) -> float:
        lookups = sum(1 for op, _ in self.operations if op == "lookup")
        advertises = sum(1 for op, _ in self.operations if op == "advertise")
        return lookups / advertises if advertises else math.inf


def generate_operation_mix(
    keys: Sequence[Hashable],
    n_operations: int,
    tau: float = 10.0,
    zipf_exponent: float = 1.0,
    rng: Optional[random.Random] = None,
) -> OperationMix:
    """A P2P-style schedule: each key advertised once up front, then
    lookups/re-advertises interleaved at rate ``tau`` with Zipf-popular
    lookup keys."""
    if n_operations < len(keys):
        raise ValueError("need at least one operation per key")
    rng = rng or random.Random()
    sampler = ZipfKeySampler(keys, exponent=zipf_exponent, rng=rng)
    operations: List[Tuple[str, Hashable]] = [
        ("advertise", key) for key in keys
    ]
    p_lookup = tau / (tau + 1.0)
    while len(operations) < n_operations:
        if rng.random() < p_lookup:
            operations.append(("lookup", sampler.sample()))
        else:
            operations.append(("advertise", rng.choice(list(keys))))
    return OperationMix(operations=operations)
