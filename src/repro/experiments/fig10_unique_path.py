"""Figure 10 — RANDOM advertise with UNIQUE-PATH lookup.

The paper's headline result: a 0.9 hit ratio at target quorum size
``~1.15 sqrt(n)`` (validating the mix-and-match Lemma 5.2 — a non-random
lookup quorum intersects like a random one), with *fewer than* ``|Ql|``
messages per lookup including the reply, thanks to early halting, the
reply-path reduction, and the originator counting itself into the quorum.

Also hosts the ablations for early halting and reply reduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.core.strategies import RandomStrategy, UniquePathStrategy
from repro.experiments.common import (
    make_membership,
    run_scenario,
    scenario_config,
)
from repro.experiments.montecarlo import run_replicated
from repro.experiments.runner import run_sweep


@dataclass
class UniquePathPoint:
    """UNIQUE-PATH lookup performance at one target quorum size."""

    n: int
    mobility: str
    lookup_size: int
    lookup_size_factor: float
    hit_ratio: float
    avg_messages: float
    avg_messages_on_hit: float
    avg_messages_on_miss: float
    early_halting: bool
    reply_reduction: bool
    avg_latency: float = 0.0    # simulated seconds per lookup
    reps: int = 1
    ci: Dict[str, float] = field(default_factory=dict)  # metric -> half-width


def _unique_path_point(factor, task_seed, *, n: int, mobility: str,
                       max_speed: float, advertise_factor: float,
                       n_keys: int, n_lookups: int, miss_fraction: float,
                       early_halting: bool, reply_reduction: bool,
                       seed: int, reps: int = 1,
                       rep_backend: Optional[str] = None,
                       ci_target: Optional[float] = None) -> UniquePathPoint:
    """One lookup-factor sweep point (process-pool worker)."""
    qa = max(1, int(round(advertise_factor * math.sqrt(n))))
    ql = max(1, int(round(factor * math.sqrt(n))))

    def run(net, rep_seed):
        membership = make_membership(net, "random")
        return run_scenario(
            net,
            advertise_strategy=RandomStrategy(membership),
            lookup_strategy=UniquePathStrategy(
                early_halting=early_halting,
                reply_reduction=reply_reduction),
            advertise_size=qa, lookup_size=ql,
            n_keys=n_keys, n_lookups=n_lookups,
            miss_fraction=miss_fraction, seed=rep_seed,
        )

    outcome = run_replicated(
        scenario_config(n, mobility=mobility, max_speed=max_speed, seed=seed),
        run, base_seed=seed, reps=reps, backend=rep_backend,
        target_halfwidth=ci_target)
    return UniquePathPoint(
        n=n, mobility=mobility, lookup_size=ql,
        lookup_size_factor=factor,
        hit_ratio=outcome.mean("hit_ratio"),
        avg_messages=outcome.mean("avg_lookup_messages"),
        avg_messages_on_hit=outcome.mean("avg_lookup_messages_on_hit"),
        avg_messages_on_miss=outcome.mean("avg_lookup_messages_on_miss"),
        early_halting=early_halting, reply_reduction=reply_reduction,
        avg_latency=outcome.mean("avg_lookup_latency"),
        reps=outcome.reps, ci=outcome.ci_dict())


def unique_path_lookup(
    n: int = 200,
    lookup_factors: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 1.15, 1.5, 2.0),
    mobility: str = "waypoint",
    max_speed: float = 2.0,
    advertise_factor: float = 2.0,
    n_keys: int = 10,
    n_lookups: int = 60,
    miss_fraction: float = 0.15,
    early_halting: bool = True,
    reply_reduction: bool = True,
    seed: int = 0,
    jobs: Optional[int] = None,
    reps: int = 1,
    rep_backend: Optional[str] = None,
    ci_target: Optional[float] = None,
) -> List[UniquePathPoint]:
    """Hit ratio / message cost of UNIQUE-PATH lookup vs target size."""
    return run_sweep(
        list(lookup_factors),
        partial(_unique_path_point, n=n, mobility=mobility,
                max_speed=max_speed, advertise_factor=advertise_factor,
                n_keys=n_keys, n_lookups=n_lookups,
                miss_fraction=miss_fraction, early_halting=early_halting,
                reply_reduction=reply_reduction, seed=seed,
                reps=reps, rep_backend=rep_backend, ci_target=ci_target),
        jobs=jobs, base_seed=seed, combine=lambda results: results[0])


def ablation_early_halting(
    n: int = 200,
    lookup_factor: float = 1.15,
    seed: int = 0,
    n_keys: int = 10,
    n_lookups: int = 60,
) -> List[UniquePathPoint]:
    """Ablation: UNIQUE-PATH lookup with/without early halting and
    reply-path reduction (Section 7 optimizations)."""
    results: List[UniquePathPoint] = []
    for early, reduction in ((True, True), (False, True), (True, False),
                             (False, False)):
        results.extend(unique_path_lookup(
            n=n, lookup_factors=(lookup_factor,), mobility="static",
            early_halting=early, reply_reduction=reduction,
            n_keys=n_keys, n_lookups=n_lookups, miss_fraction=0.0,
            seed=seed))
    return results
