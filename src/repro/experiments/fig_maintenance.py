"""Maintenance degradation under churn, with and without refresh (§6).

The paper's Section 6.1 analyses how the intersection probability of a
quorum established *before* churn degrades as nodes join/fail, and
prescribes periodic readvertising to restore it.  This experiment
measures that degradation end-to-end on the simulated deployment: a
batch of advertisements at t=0, a fault campaign driving churn, and the
*expected* advertise/lookup intersection probability sampled over time —
computed exactly (hypergeometric) from the surviving owner sets rather
than estimated by Monte-Carlo lookups, so the curves are deterministic:

    Pr(miss) = C(n - o, ql) / C(n, ql)
             = prod_{i=0}^{ql-1} (n - o - i) / (n - i)

for a key with ``o`` surviving owners in an ``n``-node network probed by
a uniform lookup quorum of size ``ql``.  Without refresh the curve
degrades monotonically as the campaign churns the network; with the
(churn-adaptive) refresh daemon running, readvertise rounds restore the
owner sets and flatten the curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.biquorum import ProbabilisticBiquorum
from repro.core.strategies import RandomStrategy, UniquePathStrategy
from repro.faults.campaign import CampaignRunner, load_campaign
from repro.membership.service import RandomMembership
from repro.services.location import LocationService
from repro.services.maintenance import RefreshDaemon
from repro.simnet.network import NetworkConfig, SimNetwork


@dataclass(frozen=True)
class MaintenancePoint:
    """One sample of the expected intersection probability."""

    refresh: str          # "off" | "on"
    t: float
    n_alive: int
    intersection: float
    refresh_rounds: int


def expected_intersection(service: LocationService, net: SimNetwork,
                          lookup_size: int) -> float:
    """Mean exact intersection probability over the advertised keys."""
    n = net.n_alive
    ql = min(lookup_size, n)
    misses: List[float] = []
    for key in service.advertised_keys():
        owners = len(service.owners_of(key))
        miss = 1.0
        for i in range(ql):
            denom = n - i
            if denom <= 0 or n - owners - i <= 0:
                miss = 0.0
                break
            miss *= (n - owners - i) / denom
        misses.append(miss)
    if not misses:
        return 1.0
    return 1.0 - sum(misses) / len(misses)


def maintenance_curves(
    n: int = 100,
    seed: int = 7,
    epsilon: float = 0.05,
    min_intersection: float = 0.9,
    campaign: str = "join-surge",
    n_keys: int = 8,
    samples: int = 12,
    refresh_interval: float = 15.0,
    settle: float = 5.0,
) -> List[MaintenancePoint]:
    """Degradation curves with refresh off vs. adaptive refresh on.

    Both runs use the same seed, so the campaign's churn schedule is
    identical; the only difference is whether the refresh daemon runs.
    """
    points: List[MaintenancePoint] = []
    for refresh_mode in ("off", "on"):
        net = SimNetwork(NetworkConfig(n=n, seed=seed))
        membership = RandomMembership(net)
        size = max(1, int(round(math.sqrt(n * math.log(1.0 / epsilon)))))
        biquorum = ProbabilisticBiquorum(
            net, advertise=RandomStrategy(membership),
            lookup=UniquePathStrategy(),
            advertise_size=size, lookup_size=size,
            adjust_to_network_size=False)
        service = LocationService(biquorum)

        daemon: Optional[RefreshDaemon] = None
        if refresh_mode == "on":
            daemon = RefreshDaemon(
                service, interval=refresh_interval, epsilon=epsilon,
                min_intersection=min_intersection, adaptive=True)

        wrng = net.rngs.stream("workload")
        for i in range(n_keys):
            origin = net.random_alive_node(wrng)
            service.advertise(origin, f"key-{i}", f"value-{i}")

        plan = load_campaign(campaign)
        runner = CampaignRunner(net, plan,
                                memberships=(membership,)).start()
        duration = plan.duration + settle
        start = net.now
        for s in range(samples + 1):
            net.run_until(start + duration * s / samples)
            points.append(MaintenancePoint(
                refresh=refresh_mode,
                t=net.now,
                n_alive=net.n_alive,
                intersection=expected_intersection(
                    service, net, biquorum.sizing.lookup_size),
                refresh_rounds=daemon.stats.rounds if daemon else 0,
            ))
        runner.stop()
        if daemon is not None:
            daemon.stop()
        membership.stop()
    return points
