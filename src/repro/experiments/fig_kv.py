"""Replicated kv serving benchmark (the ``repro kv`` figure).

Sweeps lease TTL x arrival rate over the open-loop workload engine and
reports, per cell: tail latency (p50/p99/p999), stale-read fraction with
its analytic prediction, availability, and the consistency checker's
verdict.  Replication across scenario seeds gives a CI on the stale
fraction; the ``ok`` column says whether the analytic curve from
:func:`repro.analysis.leases.stale_read_probability_exact` falls inside
it.

Two backends (same generated op stream, see
:mod:`repro.experiments.workload`):

* ``batched`` — the numpy kernel; the default, ~1M ops per point in
  seconds.  Strategy column reads ``uniform`` (the kernel models uniform
  quorum sampling, the regime the lease analysis covers).
* ``sequential`` — the real :class:`~repro.services.kvstore.QuorumKVStore`
  on a live network, one op at a time, per access strategy (``random``
  or ``masking:<b>``); thousands of ops, full audit/trace/watcher
  machinery active.

A TTL of 0 in the sweep means "derive it": the cell uses
:func:`repro.analysis.leases.lease_ttl_for_churn` at the configured
churn rate, exercising the sizing rule end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.leases import lease_ttl_for_churn
from repro.experiments.montecarlo import Welford, wilson_interval
from repro.experiments.runner import run_sweep
from repro.experiments.workload import (
    KVPointConfig,
    KVRunStats,
    WorkloadSpec,
    run_workload_batched,
    run_workload_sequential,
)

#: Absolute slack added to the replication CI when checking the analytic
#: prediction — covers the CI's own estimation noise at small rep counts.
PREDICTION_SLACK = 2e-3


@dataclass(frozen=True)
class KVSweepPoint:
    """One (strategy, ttl, rate) cell of the kv sweep (picklable)."""

    backend: str              # "batched" | "sequential"
    strategy: str             # "uniform" | "random" | "masking:<b>"
    ttl: float                # requested TTL; 0 = derive from churn
    rate: float               # open-loop arrival rate (ops/s)
    ops: int
    n: int
    n_keys: int
    read_fraction: float
    cas_fraction: float
    zipf_s: float
    churn_rate: float
    epsilon: float
    min_survival: float

    @property
    def effective_ttl(self) -> float:
        if self.ttl > 0:
            return self.ttl
        return lease_ttl_for_churn(self.churn_rate, self.min_survival)


@dataclass
class KVCell:
    """Aggregated replicas of one sweep point."""

    point: KVSweepPoint
    reps: int
    p50: float
    p99: float
    p999: float
    stale: float              # mean stale fraction across replicas
    stale_hw: float           # replication CI half-width (nan if reps<2)
    wilson_low: float         # pooled Wilson interval over all reads
    wilson_high: float
    predicted: float          # mean analytic prediction (nan sequential)
    availability: float
    cas_ok: float             # cas success ratio (nan with no cas)
    violations: int           # consistency-checker hard violations
    clean: bool

    @property
    def tracks_prediction(self) -> Optional[bool]:
        """Does the analytic curve fall inside the replication CI?

        None when there is no prediction (sequential backend) or no CI.
        """
        if self.predicted != self.predicted or self.stale != self.stale:
            return None
        hw = self.stale_hw if self.stale_hw == self.stale_hw else 0.0
        return abs(self.stale - self.predicted) <= hw + PREDICTION_SLACK


def evaluate_kv_point(point: KVSweepPoint, seed: int) -> KVRunStats:
    """One replica of one sweep cell (module-level: pool-picklable)."""
    spec = WorkloadSpec(
        ops=point.ops, n_keys=point.n_keys,
        read_fraction=point.read_fraction,
        cas_fraction=point.cas_fraction, zipf_s=point.zipf_s,
        arrival_rate=point.rate, seed=seed)
    if point.backend == "batched":
        config = KVPointConfig(
            n=point.n, epsilon=point.epsilon,
            lease_ttl=point.effective_ttl,
            churn_rate=point.churn_rate)
        return run_workload_batched(spec, config)
    return _run_sequential_replica(point, spec, seed)


def _run_sequential_replica(point: KVSweepPoint, spec: WorkloadSpec,
                            seed: int) -> KVRunStats:
    from repro.analysis.intersection import (
        masking_quorum_size,
        symmetric_quorum_size,
    )
    from repro.core.biquorum import ProbabilisticBiquorum
    from repro.core.masking import MaskingStrategy
    from repro.core.strategies import RandomStrategy
    from repro.membership.service import RandomMembership
    from repro.services.consistency import KVHistoryChecker
    from repro.services.kvstore import QuorumKVStore
    from repro.simnet.network import NetworkConfig, SimNetwork

    net = SimNetwork(NetworkConfig(n=point.n, avg_degree=10.0, seed=seed))
    masking_b = 0
    if point.strategy.startswith("masking"):
        _, _, raw = point.strategy.partition(":")
        masking_b = max(1, int(raw or "1"))
        size = masking_quorum_size(point.n, point.epsilon, masking_b)
    else:
        size = symmetric_quorum_size(point.n, point.epsilon)
    view = max(size, int(round(2.0 * math.sqrt(point.n))))
    membership = RandomMembership(net, view_size=view)
    advertise = RandomStrategy(membership)
    lookup = RandomStrategy(membership)
    if masking_b:
        lookup = MaskingStrategy(lookup, masking_b)
    biquorum = ProbabilisticBiquorum(
        net, advertise=advertise, lookup=lookup,
        advertise_size=size, lookup_size=size,
        adjust_to_network_size=False)
    store = QuorumKVStore(biquorum, lease_ttl=point.effective_ttl,
                          checker=KVHistoryChecker())
    try:
        return run_workload_sequential(store, spec)
    finally:
        membership.stop()


def _combine(point: KVSweepPoint, runs: Sequence[KVRunStats]) -> KVCell:
    stale = Welford()
    p50 = Welford()
    p99 = Welford()
    p999 = Welford()
    avail = Welford()
    pred = Welford()
    not_newest = eligible = 0
    cas_attempts = cas_ok = violations = 0
    for run in runs:
        if run.stale_fraction == run.stale_fraction:
            stale.update(run.stale_fraction)
        if run.availability == run.availability:
            avail.update(run.availability)
        if run.predicted_stale == run.predicted_stale:
            pred.update(run.predicted_stale)
        p50.update(run.p50)
        p99.update(run.p99)
        p999.update(run.p999)
        not_newest += run.stale_or_missed
        eligible += run.eligible_reads
        cas_attempts += run.cas_attempts
        cas_ok += run.cas_successes
        violations += run.report.total_violations
    low, high = wilson_interval(not_newest, eligible)
    return KVCell(
        point=point, reps=len(runs),
        p50=p50.mean, p99=p99.mean, p999=p999.mean,
        stale=stale.mean if stale.count else math.nan,
        stale_hw=stale.halfwidth(),
        wilson_low=low, wilson_high=high,
        predicted=pred.mean if pred.count else math.nan,
        availability=avail.mean if avail.count else math.nan,
        cas_ok=(cas_ok / cas_attempts) if cas_attempts else math.nan,
        violations=violations, clean=(violations == 0))


def kv_sweep(
    backend: str = "batched",
    strategies: Sequence[str] = ("uniform",),
    ttls: Sequence[float] = (5.0, 20.0, 80.0),
    rates: Sequence[float] = (2000.0,),
    ops: int = 200_000,
    n: int = 400,
    n_keys: int = 128,
    read_fraction: float = 0.92,
    cas_fraction: float = 0.05,
    zipf_s: float = 0.99,
    churn_rate: float = 0.01,
    epsilon: float = 0.05,
    min_survival: float = 0.9,
    reps: int = 3,
    jobs: Optional[int] = None,
    seed: int = 7,
) -> List[KVCell]:
    """The ``repro kv`` sweep: strategy x TTL x arrival rate."""
    if backend not in ("batched", "sequential"):
        raise ValueError(f"unknown kv backend {backend!r}")
    if backend == "batched":
        strategies = ("uniform",)
    points = [
        KVSweepPoint(
            backend=backend, strategy=strategy, ttl=ttl, rate=rate,
            ops=ops, n=n, n_keys=n_keys, read_fraction=read_fraction,
            cas_fraction=cas_fraction, zipf_s=zipf_s,
            churn_rate=churn_rate, epsilon=epsilon,
            min_survival=min_survival)
        for strategy in strategies
        for ttl in ttls
        for rate in rates
    ]
    results = run_sweep(points, evaluate_kv_point, replications=reps,
                        jobs=jobs, base_seed=seed)
    return [_combine(res.point, res.results) for res in results]
