"""Figure 11 — RANDOM advertise with FLOODING lookup.

The paper's findings: the hit ratio grows superlinearly with TTL (0.5 at
TTL 2, ~0.85 at TTL 3 for n=800); pushing it to 0.9 needs TTL 4, which
inflates the message count disproportionately — the coarse coverage
granularity that makes FLOODING hard to tune.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.core.strategies import FloodingStrategy, RandomStrategy
from repro.experiments.common import (
    make_membership,
    run_scenario,
    scenario_config,
)
from repro.experiments.montecarlo import run_replicated
from repro.experiments.runner import run_sweep


@dataclass
class FloodingLookupPoint:
    """FLOODING lookup performance at one TTL."""

    n: int
    mobility: str
    ttl: int
    hit_ratio: float
    avg_messages: float
    avg_coverage: float
    reps: int = 1
    ci: Dict[str, float] = field(default_factory=dict)  # metric -> half-width


def _flooding_point(ttl, task_seed, *, n: int, mobility: str,
                    max_speed: float, advertise_factor: float, n_keys: int,
                    n_lookups: int, seed: int, reps: int = 1,
                    rep_backend: Optional[str] = None,
                    ci_target: Optional[float] = None) -> FloodingLookupPoint:
    """One TTL sweep point (process-pool worker)."""
    qa = max(1, int(round(advertise_factor * math.sqrt(n))))

    def run(net, rep_seed):
        membership = make_membership(net, "random")
        return run_scenario(
            net,
            advertise_strategy=RandomStrategy(membership),
            lookup_strategy=FloodingStrategy(ttl=ttl),
            advertise_size=qa, lookup_size=qa,  # size unused (fixed TTL)
            n_keys=n_keys, n_lookups=n_lookups, seed=rep_seed,
        )

    outcome = run_replicated(
        scenario_config(n, mobility=mobility, max_speed=max_speed, seed=seed),
        run, base_seed=seed, reps=reps, backend=rep_backend,
        target_halfwidth=ci_target)
    sizes = [size for s in outcome.stats for size in s.lookup_quorum_sizes]
    return FloodingLookupPoint(
        n=n, mobility=mobility, ttl=ttl,
        hit_ratio=outcome.mean("hit_ratio"),
        avg_messages=outcome.mean("avg_lookup_messages"),
        avg_coverage=sum(sizes) / len(sizes) if sizes else 0.0,
        reps=outcome.reps, ci=outcome.ci_dict())


def flooding_lookup(
    n: int = 200,
    ttls: Sequence[int] = (1, 2, 3, 4, 5),
    mobility: str = "static",
    max_speed: float = 2.0,
    advertise_factor: float = 2.0,
    n_keys: int = 10,
    n_lookups: int = 40,
    seed: int = 0,
    jobs: Optional[int] = None,
    reps: int = 1,
    rep_backend: Optional[str] = None,
    ci_target: Optional[float] = None,
) -> List[FloodingLookupPoint]:
    """Hit ratio / message cost of FLOODING lookup vs TTL."""
    return run_sweep(
        list(ttls),
        partial(_flooding_point, n=n, mobility=mobility, max_speed=max_speed,
                advertise_factor=advertise_factor, n_keys=n_keys,
                n_lookups=n_lookups, seed=seed, reps=reps,
                rep_backend=rep_backend, ci_target=ci_target),
        jobs=jobs, base_seed=seed, combine=lambda results: results[0])
