"""Figure 11 — RANDOM advertise with FLOODING lookup.

The paper's findings: the hit ratio grows superlinearly with TTL (0.5 at
TTL 2, ~0.85 at TTL 3 for n=800); pushing it to 0.9 needs TTL 4, which
inflates the message count disproportionately — the coarse coverage
granularity that makes FLOODING hard to tune.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence

from repro.core.strategies import FloodingStrategy, RandomStrategy
from repro.experiments.common import make_membership, make_network, run_scenario
from repro.experiments.runner import run_sweep


@dataclass
class FloodingLookupPoint:
    """FLOODING lookup performance at one TTL."""

    n: int
    mobility: str
    ttl: int
    hit_ratio: float
    avg_messages: float
    avg_coverage: float


def _flooding_point(ttl, task_seed, *, n: int, mobility: str,
                    max_speed: float, advertise_factor: float, n_keys: int,
                    n_lookups: int, seed: int) -> FloodingLookupPoint:
    """One TTL sweep point (process-pool worker)."""
    qa = max(1, int(round(advertise_factor * math.sqrt(n))))
    net = make_network(n, mobility=mobility, max_speed=max_speed, seed=seed)
    membership = make_membership(net, "random")
    stats = run_scenario(
        net,
        advertise_strategy=RandomStrategy(membership),
        lookup_strategy=FloodingStrategy(ttl=ttl),
        advertise_size=qa, lookup_size=qa,  # size unused (fixed TTL)
        n_keys=n_keys, n_lookups=n_lookups, seed=seed + 1,
    )
    sizes = stats.lookup_quorum_sizes
    return FloodingLookupPoint(
        n=n, mobility=mobility, ttl=ttl,
        hit_ratio=stats.hit_ratio,
        avg_messages=stats.avg_lookup_messages,
        avg_coverage=sum(sizes) / len(sizes) if sizes else 0.0)


def flooding_lookup(
    n: int = 200,
    ttls: Sequence[int] = (1, 2, 3, 4, 5),
    mobility: str = "static",
    max_speed: float = 2.0,
    advertise_factor: float = 2.0,
    n_keys: int = 10,
    n_lookups: int = 40,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[FloodingLookupPoint]:
    """Hit ratio / message cost of FLOODING lookup vs TTL."""
    return run_sweep(
        list(ttls),
        partial(_flooding_point, n=n, mobility=mobility, max_speed=max_speed,
                advertise_factor=advertise_factor, n_keys=n_keys,
                n_lookups=n_lookups, seed=seed),
        jobs=jobs, base_seed=seed, combine=lambda results: results[0])
