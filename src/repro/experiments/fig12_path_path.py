"""Figure 12 — UNIQUE-PATH advertise with UNIQUE-PATH lookup.

The symmetric routing-free combination.  The paper's finding (for n=800):
0.9 hit ratio needs a *combined* walk length of ~n/2 — each quorum around
``1.5 n / ln n`` — reflecting the crossing-time lower bound (Theorem 5.5),
and the constants are topology/density dependent, unlike the
RANDOM x UNIQUE-PATH mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.core.strategies import UniquePathStrategy
from repro.experiments.common import run_scenario, scenario_config
from repro.experiments.montecarlo import run_replicated
from repro.experiments.runner import run_sweep


@dataclass
class PathPathPoint:
    """Symmetric UNIQUE-PATH biquorum at one per-quorum target size."""

    n: int
    quorum_size: int            # per side (|Qa| = |Ql|)
    combined_size: int
    combined_fraction: float    # combined / n
    hit_ratio: float
    avg_advertise_messages: float
    avg_lookup_messages: float
    reps: int = 1
    ci: Dict[str, float] = field(default_factory=dict)  # metric -> half-width


def _path_path_point(frac, task_seed, *, n: int, n_keys: int, n_lookups: int,
                     mobility: str, seed: int, reps: int = 1,
                     rep_backend: Optional[str] = None,
                     ci_target: Optional[float] = None) -> PathPathPoint:
    """One size-fraction sweep point (process-pool worker)."""
    q = max(2, int(round(frac * n)))

    def run(net, rep_seed):
        return run_scenario(
            net,
            advertise_strategy=UniquePathStrategy(),
            lookup_strategy=UniquePathStrategy(),
            advertise_size=q, lookup_size=q,
            n_keys=n_keys, n_lookups=n_lookups, seed=rep_seed,
        )

    outcome = run_replicated(
        scenario_config(n, mobility=mobility, seed=seed), run,
        base_seed=seed, reps=reps, backend=rep_backend,
        target_halfwidth=ci_target)
    return PathPathPoint(
        n=n, quorum_size=q, combined_size=2 * q,
        combined_fraction=2 * q / n,
        hit_ratio=outcome.mean("hit_ratio"),
        avg_advertise_messages=outcome.mean("avg_advertise_messages"),
        avg_lookup_messages=outcome.mean("avg_lookup_messages"),
        reps=outcome.reps, ci=outcome.ci_dict())


def path_x_path(
    n: int = 200,
    size_fractions: Sequence[float] = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3),
    n_keys: int = 8,
    n_lookups: int = 40,
    mobility: str = "static",
    seed: int = 0,
    jobs: Optional[int] = None,
    reps: int = 1,
    rep_backend: Optional[str] = None,
    ci_target: Optional[float] = None,
) -> List[PathPathPoint]:
    """Hit ratio vs per-quorum size (as a fraction of n) for UP x UP."""
    return run_sweep(
        list(size_fractions),
        partial(_path_path_point, n=n, n_keys=n_keys, n_lookups=n_lookups,
                mobility=mobility, seed=seed, reps=reps,
                rep_backend=rep_backend, ci_target=ci_target),
        jobs=jobs, base_seed=seed, combine=lambda results: results[0])
