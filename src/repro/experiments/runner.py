"""Parallel sweep engine for the paper's parameter sweeps.

Every figure is a sweep: a list of parameter points, each evaluated by an
independent simulation (often several replications per point).  Points
share no state — a network is constructed from scratch per evaluation —
so they parallelize perfectly across a process pool.

:func:`run_sweep` is the one entry point.  Its contract:

* **Determinism** — each (point index, replication) task gets a seed
  derived through :class:`~repro.sim.rng.RngRegistry` from ``base_seed``
  alone, independent of worker scheduling; results are returned in point
  order.  ``jobs=N`` is therefore bit-identical to ``jobs=1``.
* **Picklability** — with ``jobs > 1`` the worker function must be
  defined at module level (a ``functools.partial`` over one is fine);
  the figure modules follow this shape.
* **Aggregation** — per-point replication results can be reduced with a
  ``combine`` callable; :func:`merge_scenario_stats` combines
  :class:`~repro.experiments.common.ScenarioStats` bundles.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, List, Optional, Sequence

from repro.obs.manifest import RunManifest, collect_manifest
from repro.obs.profile import PROFILER
from repro.sim.rng import RngRegistry

#: Provenance of the most recent :func:`run_sweep` batch in this process
#: (also written to ``$REPRO_MANIFEST_DIR`` when that is set).
last_sweep_manifest: Optional[RunManifest] = None

_manifest_counter = 0


def default_jobs() -> int:
    """Job count from ``REPRO_JOBS`` (defaults to 1: sequential)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def derive_task_seed(base_seed: int, index: int, replication: int) -> int:
    """Deterministic per-task seed, independent of execution order."""
    return RngRegistry(base_seed).fork(f"sweep:{index}", replication).master_seed


@dataclass
class SweepResult:
    """All replication results for one sweep point."""

    point: Any
    results: List[Any] = field(default_factory=list)

    @property
    def value(self) -> Any:
        """The single result (convenience for ``replications=1``)."""
        if len(self.results) != 1:
            raise ValueError(
                f"point has {len(self.results)} results; use .results")
        return self.results[0]


def _evaluate(fn: Callable[[Any, int], Any], point: Any, seed: int) -> Any:
    # Module-level trampoline so the pool pickles (fn, point, seed) only.
    return fn(point, seed)


def _evaluate_profiled(fn: Callable[[Any, int], Any], point: Any,
                       seed: int) -> Any:
    """Pool trampoline that ships the worker's profiler delta back.

    Each worker process has its own :data:`~repro.obs.profile.PROFILER`;
    snapshotting before/after the task isolates this task's phases so
    the parent can merge a complete per-phase table for ``jobs > 1``.
    """
    before = PROFILER.snapshot()
    result = fn(point, seed)
    after = PROFILER.snapshot()
    delta = {}
    for name, stat in after.items():
        prior = before.get(name, {"calls": 0, "cumulative": 0.0,
                                  "self": 0.0})
        delta[name] = {key: stat[key] - prior[key] for key in stat}
    return result, delta


def _sweep_manifest(n_points: int, replications: int, jobs: int,
                    base_seed: int, fn: Callable,
                    wall_time_s: float) -> RunManifest:
    """Record (and optionally persist) one sweep batch's provenance."""
    global last_sweep_manifest, _manifest_counter
    target = getattr(fn, "func", fn)  # unwrap functools.partial
    manifest = collect_manifest(
        command="sweep",
        params={
            "fn": f"{getattr(target, '__module__', '?')}."
                  f"{getattr(target, '__qualname__', repr(target))}",
            "points": n_points,
            "replications": replications,
        },
        seed=base_seed,
        jobs=jobs,
        trace_path=os.environ.get("REPRO_TRACE"),
    )
    manifest.wall_time_s = round(wall_time_s, 6)
    last_sweep_manifest = manifest
    out_dir = os.environ.get("REPRO_MANIFEST_DIR")
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        _manifest_counter += 1
        manifest.write(os.path.join(
            out_dir, f"sweep-{os.getpid()}-{_manifest_counter}"
                     f".manifest.json"))
    return manifest


def run_sweep(
    points: Sequence[Any],
    fn: Callable[[Any, int], Any],
    replications: int = 1,
    jobs: Optional[int] = None,
    base_seed: int = 0,
    combine: Optional[Callable[[List[Any]], Any]] = None,
) -> List[Any]:
    """Evaluate ``fn(point, seed)`` for every point x replication.

    Returns one entry per point, in point order: a :class:`SweepResult`
    (or ``combine(results)`` when ``combine`` is given).  ``jobs`` > 1
    fans tasks out over a process pool; ``jobs=None`` reads the
    ``REPRO_JOBS`` environment variable.
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    started = time.perf_counter()
    tasks = [
        (index, rep, derive_task_seed(base_seed, index, rep))
        for index in range(len(points))
        for rep in range(replications)
    ]
    outputs: dict = {}
    if jobs == 1 or len(tasks) <= 1:
        for index, rep, seed in tasks:
            outputs[(index, rep)] = fn(points[index], seed)
    else:
        # With profiling on, workers return (result, profiler delta) so
        # the parent's table covers the whole fan-out.
        trampoline = (_evaluate_profiled if PROFILER.enabled
                      else _evaluate)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                (index, rep): pool.submit(trampoline, fn, points[index],
                                          seed)
                for index, rep, seed in tasks
            }
            for key, future in futures.items():
                value = future.result()
                if trampoline is _evaluate_profiled:
                    value, profile_delta = value
                    PROFILER.merge(profile_delta)
                outputs[key] = value
    _sweep_manifest(len(points), replications, jobs, base_seed, fn,
                    time.perf_counter() - started)
    results = [
        SweepResult(point=point,
                    results=[outputs[(i, r)] for r in range(replications)])
        for i, point in enumerate(points)
    ]
    if combine is not None:
        return [combine(res.results) for res in results]
    return results


def merge_scenario_stats(stats_list: Sequence[Any]) -> Any:
    """Merge replicated ``ScenarioStats`` into one aggregate bundle.

    Counters sum and sample lists concatenate, so ratio/average properties
    weight every replication by its own operation count.  ``n`` is averaged
    (replications of one point may differ slightly under churn).
    """
    if not stats_list:
        raise ValueError("nothing to merge")
    first = stats_list[0]
    if len(stats_list) == 1:
        return first
    merged = replace(first)
    for f in fields(first):
        values = [getattr(s, f.name) for s in stats_list]
        if f.name == "n":
            setattr(merged, f.name, round(sum(values) / len(values)))
        elif isinstance(values[0], list):
            combined: List[Any] = []
            for v in values:
                combined.extend(v)
            setattr(merged, f.name, combined)
        else:
            setattr(merged, f.name, sum(values))
    return merged
