"""Figure 4 — partial cover time of random walks on RGG deployments.

Measures the number of random-walk steps needed to visit a given number of
distinct nodes, for simple (PATH) and self-avoiding (UNIQUE-PATH) walks,
across network sizes and densities.  The paper's findings to reproduce:

* steps/unique stays a small constant (~1.7 at d_avg=10) for |Q| up to
  ~sqrt(n) — PCT is linear in the covered count (Theorem 4.1);
* sparser networks cost more (~2.5 at d_avg=7), denser ones approach the
  complete-graph behaviour;
* UNIQUE-PATH almost never revisits: steps/unique ~ 1 regardless of density.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.common import make_network
from repro.randomwalk.walker import random_walk
from repro.simnet.network import SimNetwork


@dataclass
class PctPoint:
    """One measurement: cost of covering ``unique_target`` distinct nodes."""

    n: int
    avg_degree: float
    unique_target: int
    unique: bool                 # self-avoiding?
    steps_per_unique: float      # mean steps / distinct nodes visited
    mean_steps: float
    walks: int


def measure_pct(
    net: SimNetwork,
    unique_target: int,
    self_avoiding: bool,
    walks: int = 10,
    seed: int = 0,
) -> Tuple[float, float]:
    """Mean (steps, steps-per-unique) over ``walks`` walks on one network."""
    rng = random.Random(seed)
    total_steps = 0
    total_unique = 0
    done = 0
    attempts = 0
    while done < walks and attempts < 4 * walks:
        attempts += 1
        start = net.random_alive_node(rng)
        result = random_walk(net, start, target_unique=unique_target,
                             unique=self_avoiding, rng=rng,
                             max_steps=60 * unique_target + 200)
        if not result.completed:
            continue
        total_steps += result.steps
        total_unique += result.unique_count
        done += 1
    if done == 0:
        return float("nan"), float("nan")
    return total_steps / done, total_steps / max(1, total_unique)


def pct_by_network_size(
    sizes: Sequence[int] = (50, 100, 200, 400),
    avg_degree: float = 10.0,
    coverage_fractions: Sequence[float] = (0.5, 1.0, 2.0),
    walks: int = 10,
    seed: int = 0,
) -> List[PctPoint]:
    """Figure 4(a)/(c): steps-per-unique vs covered count, per network size.

    ``coverage_fractions`` are multiples of sqrt(n) for the target count.
    """
    points: List[PctPoint] = []
    for n in sizes:
        net = make_network(n, avg_degree=avg_degree, seed=seed)
        for frac in coverage_fractions:
            target = max(2, int(round(frac * (n ** 0.5))))
            target = min(target, n - 1)
            for self_avoiding in (False, True):
                steps, per_unique = measure_pct(
                    net, target, self_avoiding, walks=walks, seed=seed + 1)
                points.append(PctPoint(
                    n=n, avg_degree=avg_degree, unique_target=target,
                    unique=self_avoiding, steps_per_unique=per_unique,
                    mean_steps=steps, walks=walks))
    return points


def pct_by_density(
    densities: Sequence[float] = (7, 10, 15, 20, 25),
    n: int = 200,
    coverage_fraction: float = 1.0,
    walks: int = 10,
    seed: int = 0,
) -> List[PctPoint]:
    """Figure 4(b): density influence on the partial cover time."""
    points: List[PctPoint] = []
    target = max(2, int(round(coverage_fraction * (n ** 0.5))))
    for d in densities:
        net = make_network(n, avg_degree=d, seed=seed)
        for self_avoiding in (False, True):
            steps, per_unique = measure_pct(
                net, target, self_avoiding, walks=walks, seed=seed + 1)
            points.append(PctPoint(
                n=n, avg_degree=d, unique_target=target,
                unique=self_avoiding, steps_per_unique=per_unique,
                mean_steps=steps, walks=walks))
    return points
