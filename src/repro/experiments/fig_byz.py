"""Byzantine fault tolerance: masking quorums vs undefended RANDOM.

Sweeps the Byzantine (lying-replica) fraction and, for each point, runs
the same seeded workload twice — once over plain RANDOM quorums sized by
Lemma 5.2 and once over :class:`~repro.core.masking.MaskingStrategy`
quorums sized by the hypergeometric ``b``-masking bound (Malkhi &
Reiter's probabilistic masking quorums transplanted onto the paper's
uniform access strategies).  Each leg reports the empirical corrupt-read
fraction next to its analytic prediction, and the per-node load next to
the ``q/n`` uniform-access prediction, so the figure shows the masking
trade-off directly: corrupt reads go to zero while load rises with the
larger quorums.

The undefended leg also runs the builtin invariant watchers in
record mode (a private hub, deliberately *not* wired to the strict
auditor — the whole point of the leg is to observe the damage) and
reports how many watcher violations the adversary caused: every
undefended configuration with corrupt reads should be *caught*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.analysis.intersection import (
    masking_quorum_size,
    symmetric_quorum_size,
)
from repro.core.biquorum import ProbabilisticBiquorum
from repro.core.masking import MaskingStrategy
from repro.core.strategies import RandomStrategy
from repro.faults.byzantine import ensure_byzantine
from repro.membership.service import RandomMembership
from repro.services.location import LocationService
from repro.simnet.network import NetworkConfig, SimNetwork


@dataclass(frozen=True)
class ByzPoint:
    """One (fraction, defence) cell of the Byzantine sweep."""

    mode: str                 # "undefended" | "masked"
    byz_fraction: float
    liars: int
    b: Optional[int]          # masking budget (None when undefended)
    quorum_size: int
    lookups: int
    hits: int
    masked_lookups: int       # vote filter rejected (masked leg only)
    corrupt_reads: int
    caught: int               # watcher violations during the run
    predicted_corrupt: float  # analytic corrupt-read bound for this leg
    per_node_load: float      # measured messages / (n * accesses)
    predicted_load: float     # uniform-access prediction q / n

    @property
    def corrupt_fraction(self) -> float:
        if self.lookups == 0:
            return math.nan
        return self.corrupt_reads / self.lookups

    @property
    def hit_ratio(self) -> float:
        if self.lookups == 0:
            return math.nan
        return self.hits / self.lookups


def undefended_corrupt_bound(n: int, liars: int, lookup_size: int) -> float:
    """P[a uniform lookup quorum touches at least one liar].

    Hypergeometric: an undefended lookup can only return a fabricated
    value when its quorum contains a lying replica, so this touch
    probability upper-bounds the corrupt-read fraction.
    """
    if liars <= 0 or n <= 0:
        return 0.0
    ql = min(lookup_size, n)
    clean = 1.0
    for i in range(ql):
        denom = n - i
        if denom <= 0:
            return 1.0
        clean *= max(0, n - liars - i) / denom
    return 1.0 - clean


def _run_leg(mode: str, n: int, seed: int, fraction: float, b: Optional[int],
             epsilon: float, n_keys: int, n_lookups: int) -> ByzPoint:
    net = SimNetwork(NetworkConfig(n=n, avg_degree=10.0, seed=seed))
    # A private record-mode hub: violations are counted, never raised,
    # even when the surrounding process runs REPRO_AUDIT=strict — the
    # undefended leg *should* be violated, that is the figure's point.
    from repro.obs.watch import WatcherHub, builtin_watchers
    hub = WatcherHub(builtin_watchers(n=net.n_alive), auditor=None)
    trace = net.trace
    if not trace.enabled:
        trace.enable(memory=False)
    hub.attach(trace)
    # Count quorum *contacts* (store/probe events) straight off the
    # trace: Malkhi-Reiter load is the chance a node serves an access,
    # so contacts / (n * accesses) is the empirical counterpart of q/n
    # (the transport-message counters would count routing hops instead).
    contacts = [0]

    def _count(event: Any) -> None:
        if event.kind in ("store", "probe"):
            contacts[0] += 1
    trace.subscribe(_count)

    if mode == "masked":
        assert b is not None
        size = masking_quorum_size(n, epsilon, b)
    else:
        size = symmetric_quorum_size(n, epsilon)
    # Masking quorums outgrow the default 2*sqrt(n) partial views.
    view = max(size, int(round(2.0 * math.sqrt(n))))
    membership = RandomMembership(net, view_size=view)
    advertise = RandomStrategy(membership)
    lookup: RandomStrategy | MaskingStrategy = RandomStrategy(membership)
    if mode == "masked":
        lookup = MaskingStrategy(lookup, b)
    biquorum = ProbabilisticBiquorum(
        net, advertise=advertise, lookup=lookup,
        advertise_size=size, lookup_size=size,
        adjust_to_network_size=False)
    service = LocationService(biquorum, enable_caching=False)

    wrng = net.rngs.stream("workload")
    liars = min(n, int(round(fraction * n)))
    if liars:
        frng = net.rngs.stream("faults")
        victims = frng.sample(sorted(net.alive_nodes()), liars)
        ensure_byzantine(net).attach(victims, "lie")

    keys = [f"key-{i}" for i in range(n_keys)]
    for key in keys:
        service.advertise(net.random_alive_node(wrng), key,
                          f"value-of-{key}")
    lookups = hits = masked = corrupt = 0
    for i in range(n_lookups):
        net.advance(0.05)
        key = wrng.choice(keys)
        receipt = service.lookup(net.random_alive_node(wrng), key)
        lookups += 1
        if receipt.found:
            hits += 1
            if receipt.value != f"value-of-{key}":
                corrupt += 1
        elif receipt.access is not None and getattr(
                receipt.access, "masked", False):
            masked += 1
    hub.finish()
    hub.detach()
    trace.unsubscribe(_count)
    membership.stop()

    metrics = net.metrics
    accesses = (metrics.counter_value("access.advertise.count")
                + metrics.counter_value("access.lookup.count"))
    load = contacts[0] / (n * accesses) if accesses else math.nan
    if mode == "masked":
        # Fabrications are per-node salted, so with <= b liars no wrong
        # value can muster the b+1 corroborating votes: the residual
        # corrupt bound is 0; beyond budget all bets are off (bound 1).
        predicted = 0.0 if liars <= (b or 0) else 1.0
    else:
        predicted = undefended_corrupt_bound(n, liars, size)
    return ByzPoint(
        mode=mode, byz_fraction=fraction, liars=liars, b=b,
        quorum_size=size, lookups=lookups, hits=hits,
        masked_lookups=masked, corrupt_reads=corrupt,
        caught=len(hub.violations), predicted_corrupt=predicted,
        per_node_load=load, predicted_load=min(size, n) / n)


def byzantine_sweep(
    n: int = 100,
    seed: int = 7,
    fractions: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
    b: Optional[int] = None,
    epsilon: float = 0.05,
    n_keys: int = 6,
    n_lookups: int = 80,
) -> List[ByzPoint]:
    """The ``repro byz`` sweep: fraction x {undefended, masked}.

    ``b`` defaults to the smallest budget covering the largest swept
    fraction (``ceil(max_fraction * n)``), i.e. a correctly-provisioned
    defence; pass a smaller ``b`` to study an under-provisioned one.
    """
    if not fractions:
        raise ValueError("fractions must be non-empty")
    if b is None:
        b = max(1, math.ceil(max(fractions) * n))
    points: List[ByzPoint] = []
    for fraction in fractions:
        points.append(_run_leg("undefended", n, seed, fraction, None,
                               epsilon, n_keys, n_lookups))
        points.append(_run_leg("masked", n, seed, fraction, b,
                               epsilon, n_keys, n_lookups))
    return points
