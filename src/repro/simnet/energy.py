"""Per-node energy accounting (Section 4.4's energy argument).

The paper argues broadcast is "less energy efficient than sending
point-to-point messages": broadcasts are sent at the low 2 Mbps rate (long
airtime) and wake every node in range, while the 802.11 power-save mode
(PSM) that can sleep idle nodes is *disabled* by broadcast traffic.  This
model captures that asymmetry so strategies can be compared on energy as
well as message count:

* a unicast frame charges the sender one TX unit and the addressed
  receiver one RX unit; other nodes in range only pay the cheap
  header-decode cost (they drop the frame after the MAC header);
* a broadcast frame charges the (slower) broadcast TX rate and a *full*
  RX cost at every node in range — nobody can sleep through it.

Costs default to airtime-proportional values derived from the paper's
PHY rates (11 Mbps unicast vs 2 Mbps broadcast for 512-byte payloads).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class EnergyModel:
    """Relative energy costs per frame event (units: one unicast TX)."""

    tx_unicast: float = 1.0
    rx_unicast: float = 0.8
    # 512B at 2 Mbps takes 5.5x the airtime of 11 Mbps: broadcasting is
    # intrinsically more expensive per frame.
    tx_broadcast: float = 5.5
    rx_broadcast: float = 4.4
    overhear_header: float = 0.05  # non-addressed nodes decode the header


class EnergyLedger:
    """Per-node and aggregate energy spent."""

    def __init__(self, model: Optional[EnergyModel] = None) -> None:
        self.model = model or EnergyModel()
        self.per_node: Counter = Counter()

    @property
    def total(self) -> float:
        return sum(self.per_node.values())

    def spent_by(self, node_id: int) -> float:
        return self.per_node.get(node_id, 0.0)

    def charge_unicast(self, sender: int, receiver: int,
                       bystanders: int = 0) -> None:
        self.per_node[sender] += self.model.tx_unicast
        self.per_node[receiver] += self.model.rx_unicast
        if bystanders > 0:
            # Header-decode cost spread over the in-range non-addressees.
            self.per_node[sender] += 0.0  # no extra sender cost
            self._charge_bystanders(sender, bystanders)

    def _charge_bystanders(self, around: int, count: int) -> None:
        # Aggregated: we do not know the individual ids cheaply; a shared
        # bucket keyed by -1 keeps totals honest without n^2 bookkeeping.
        self.per_node[-1] += count * self.model.overhear_header

    def charge_failed_unicast(self, sender: int) -> None:
        """A frame whose receiver is gone still costs the sender airtime."""
        self.per_node[sender] += self.model.tx_unicast

    def charge_broadcast(self, sender: int, receivers: int) -> None:
        self.per_node[sender] += self.model.tx_broadcast
        self.per_node[-1] += receivers * self.model.rx_broadcast

    def max_node_share(self) -> float:
        """Largest single-node share of the total (hot-spot indicator)."""
        if not self.per_node:
            return 0.0
        named = [v for k, v in self.per_node.items() if k >= 0]
        if not named or self.total <= 0:
            return 0.0
        return max(named) / self.total
