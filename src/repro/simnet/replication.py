"""Cross-replica shared state for batched Monte-Carlo replication.

Replicas of one scenario share the network seed, hence the deployment:
the *topology* (static positions + the deterministic, network-seed-driven
churn sequence) evolves identically in every replica even though each
replica's workload randomness differs.  Route discovery — BFS path + ring
coverage counts — is a pure function of that topology, so its results can
be memoized ONCE and served to every replica.

:class:`TopologyRouteOracle` is that memo.  A network keys into it with
its ``topology_version`` (a counter bumped on every geometry mutation):
two replicas at the same version have applied the same mutation sequence
to the same initial placement, so their graphs are identical and the
cached BFS trees are exact.  The oracle is only ever attached to
*static*-mobility networks (time-varying topologies are never shared).

Accounting stays strictly per-replica: the oracle returns topology facts
(paths, distances, coverage counts); each network still meters its own
routing messages, energy, and trace events from them.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, List, Optional


class BfsTree:
    """Full BFS tree from one source over one frozen topology.

    ``parent``/``dist`` replicate exactly what
    ``SimNetwork._bfs_path`` / ``_hop_distances_capped`` would compute:
    the BFS expands nodes in FIFO order and scans neighbors in sorted
    order, so the first-discovery parent of every node — and therefore
    the extracted path — is identical to the early-exit BFS.
    """

    __slots__ = ("source", "parent", "dist", "_cum")

    def __init__(self, source: int, parent: Dict[int, int],
                 dist: Dict[int, int]) -> None:
        self.source = source
        self.parent = parent
        self.dist = dist
        # _cum[h] = number of nodes at distance <= h (the RREQ ring size).
        max_d = max(dist.values()) if dist else 0
        counts = [0] * (max_d + 1)
        for d in dist.values():
            counts[d] += 1
        total = 0
        self._cum = []
        for c in counts:
            total += c
            self._cum.append(total)

    @property
    def reachable(self) -> int:
        """Nodes reachable from the source (including itself)."""
        return len(self.dist)

    def count_within(self, hops: int) -> int:
        """Nodes at hop distance <= ``hops`` (the TTL-ring coverage)."""
        if hops < 0:
            return 0
        if hops >= len(self._cum):
            return self._cum[-1] if self._cum else 0
        return self._cum[hops]

    def path_to(self, dst: int) -> Optional[List[int]]:
        """Shortest path source -> dst (a fresh list), or None."""
        if dst not in self.parent:
            return None
        path = [dst]
        while path[-1] != self.source:
            path.append(self.parent[path[-1]])
        return list(reversed(path))


def bfs_tree(net, src: int) -> BfsTree:
    """Compute the full BFS tree from ``src`` on ``net``'s current graph.

    When the network's batched access engine is eligible (static
    topology, vectorized tables, large enough n), the tree is built by
    its level-synchronous numpy kernel — identical parents and
    distances, one pass per ring instead of one Python scan per node.
    """
    engine = getattr(net, "access_engine", None)
    if engine is not None:
        tree = engine.numpy_tree(net, src)
        if tree is not None:
            return tree
    parent: Dict[int, int] = {src: src}
    dist: Dict[int, int] = {src: 0}
    queue = deque([src])
    while queue:
        u = queue.popleft()
        for v in net.true_neighbors(u):
            if v in parent:
                continue
            parent[v] = u
            dist[v] = dist[u] + 1
            queue.append(v)
    return BfsTree(source=src, parent=parent, dist=dist)


class TopologyRouteOracle:
    """Memoized BFS trees shared by replicas of one deployment.

    Keyed by ``(topology_version, source)``.  Old versions are evicted
    LRU-style once ``max_versions`` distinct topologies have been seen
    (churn bumps the version; replicas all walk the same version
    sequence, so only a handful are ever live at once).
    """

    def __init__(self, max_versions: int = 8) -> None:
        self._versions: "OrderedDict[int, Dict[int, BfsTree]]" = OrderedDict()
        self._max_versions = max_versions
        self._fingerprint: Optional[tuple] = None
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _config_fingerprint(net) -> tuple:
        cfg = net.config
        return (cfg.seed, cfg.n, cfg.avg_degree, cfg.radio_range,
                cfg.mobility, cfg.torus)

    def tree(self, net, src: int) -> BfsTree:
        """The BFS tree from ``src`` at ``net``'s current topology."""
        fingerprint = self._config_fingerprint(net)
        if self._fingerprint is None:
            self._fingerprint = fingerprint
        elif fingerprint != self._fingerprint:
            raise ValueError(
                "TopologyRouteOracle shared across different deployments: "
                f"{fingerprint} vs {self._fingerprint}")
        version = net.topology_version
        trees = self._versions.get(version)
        if trees is None:
            trees = {}
            self._versions[version] = trees
            if len(self._versions) > self._max_versions:
                self._versions.popitem(last=False)
        else:
            self._versions.move_to_end(version)
        cached = trees.get(src)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        tree = bfs_tree(net, src)
        trees[src] = tree
        return tree
