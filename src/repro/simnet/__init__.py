"""Protocol-model network simulator (the paper's measurement abstraction)."""

from repro.simnet.churn import ChurnOutcome, ChurnProcess, apply_churn
from repro.simnet.energy import EnergyLedger, EnergyModel
from repro.simnet.network import (
    FloodOutcome,
    NetworkConfig,
    RouteResult,
    SimNetwork,
)

__all__ = [
    "ChurnOutcome",
    "ChurnProcess",
    "apply_churn",
    "EnergyLedger",
    "EnergyModel",
    "FloodOutcome",
    "NetworkConfig",
    "RouteResult",
    "SimNetwork",
]
