"""Churn: node failures, departures, and joins (Sections 3, 6.1, 8.7).

Two interfaces are provided:

* :func:`apply_churn` — the batch form used in the paper's Figure 14(f)
  experiment: after all advertisements complete, fail each node with a given
  probability and/or add new nodes, optionally requiring the survivor graph
  to stay connected.
* :class:`ChurnProcess` — a continuous Poisson churn process for long-running
  scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.simnet.network import SimNetwork


@dataclass
class ChurnOutcome:
    """What a batch churn application actually did."""

    failed: List[int] = field(default_factory=list)
    joined: List[int] = field(default_factory=list)
    skipped_for_connectivity: int = 0


def apply_churn(
    net: SimNetwork,
    fail_fraction: float = 0.0,
    join_fraction: float = 0.0,
    rng: Optional[random.Random] = None,
    keep_connected: bool = True,
    protected: Optional[Set[int]] = None,
) -> ChurnOutcome:
    """Fail a fraction of the current nodes and/or join new ones.

    ``fail_fraction``/``join_fraction`` are relative to the network size at
    call time.  With ``keep_connected`` (the paper requires the network to
    remain connected), a failure that would disconnect the survivors is
    skipped and another victim is tried.  ``protected`` nodes are never
    failed (e.g. the measurement origin).
    """
    if not 0.0 <= fail_fraction <= 1.0:
        raise ValueError("fail_fraction must be in [0, 1]")
    if join_fraction < 0.0:
        raise ValueError("join_fraction must be >= 0")
    rng = rng or random.Random()
    protected = protected or set()
    outcome = ChurnOutcome()

    initial = net.alive_nodes()
    n0 = len(initial)
    target_failures = int(round(fail_fraction * n0))
    candidates = [v for v in initial if v not in protected]
    rng.shuffle(candidates)
    for victim in candidates:
        if len(outcome.failed) >= target_failures:
            break
        # Tentative failure: geometry updates so is_connected() sees the
        # survivor graph, but the fail event / metrics / state-eviction
        # listeners only run once the failure commits.
        net.fail_node(victim, commit=False)
        if keep_connected and not net.is_connected():
            # Undo by re-joining the same node id is not possible (crash
            # semantics); instead re-admit it as itself via mobility state.
            net.revive_node(victim)
            outcome.skipped_for_connectivity += 1
            continue
        net.commit_failure(victim)
        outcome.failed.append(victim)

    target_joins = int(round(join_fraction * n0))
    for _ in range(target_joins):
        outcome.joined.append(net.join_node())

    net.invalidate_routes()
    return outcome


class ChurnProcess:
    """Continuous Poisson failure/join process.

    ``failure_rate`` and ``join_rate`` are events per second over the whole
    network.  Each event picks a uniform victim (never ``protected``) or
    joins a fresh node at a uniform position.
    """

    def __init__(
        self,
        net: SimNetwork,
        failure_rate: float = 0.0,
        join_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        keep_connected: bool = False,
        protected: Optional[Set[int]] = None,
    ) -> None:
        if failure_rate < 0 or join_rate < 0:
            raise ValueError("rates must be non-negative")
        self.net = net
        self.failure_rate = failure_rate
        self.join_rate = join_rate
        self.rng = rng or random.Random()
        self.keep_connected = keep_connected
        self.protected = protected or set()
        self.failures = 0
        self.joins = 0
        self._stopped = False
        self._pending_failure = None
        self._pending_join = None
        if failure_rate > 0:
            self._schedule_failure()
        if join_rate > 0:
            self._schedule_join()

    def stop(self) -> None:
        """Halt the process and cancel queued callbacks.

        Without the cancellation, the already-scheduled failure/join
        events would sit in the sim queue firing no-ops (and keeping the
        network reachable) for the rest of the run.
        """
        self._stopped = True
        for event in (self._pending_failure, self._pending_join):
            if event is not None:
                event.cancel()
        self._pending_failure = None
        self._pending_join = None

    def _schedule_failure(self) -> None:
        delay = self.rng.expovariate(self.failure_rate)
        self._pending_failure = self.net.sim.schedule(delay, self._do_failure)

    def _schedule_join(self) -> None:
        delay = self.rng.expovariate(self.join_rate)
        self._pending_join = self.net.sim.schedule(delay, self._do_join)

    def _do_failure(self) -> None:
        if self._stopped:
            return
        candidates = [v for v in self.net.alive_nodes()
                      if v not in self.protected]
        if len(candidates) > 1:
            victim = self.rng.choice(candidates)
            net = self.net
            net.fail_node(victim, commit=False)
            if self.keep_connected and not net.is_connected():
                net.revive_node(victim)
            else:
                net.commit_failure(victim)
                self.failures += 1
        self._schedule_failure()

    def _do_join(self) -> None:
        if self._stopped:
            return
        self.net.join_node()
        self.joins += 1
        self._schedule_join()
