"""Graph-level (protocol-model) network simulator.

This is the workhorse for the paper's large parameter sweeps.  It models an
ad hoc network exactly at the abstraction level the paper measures
(Section 8): *network-layer messages* — one application message over a
4-hop route counts as 4 messages — with routing control overhead accounted
separately, while still capturing the phenomena the results depend on:

* mobility (positions move; links appear/disappear mid-operation);
* stale neighbor knowledge (neighbor tables refresh on a 10 s heartbeat, so
  a chosen next hop may have moved away — exactly the failure mode that RW
  salvation and reply-path repair address, Section 6.2);
* MAC-level failure notification (a one-hop unicast to a departed neighbor
  *fails visibly* rather than silently);
* route caching, discovery floods and route breakage for AODV-style routing;
* churn: node failures and joins at runtime.

The packet-level stack in :mod:`repro.stack` cross-validates this model on
small networks.
"""

from __future__ import annotations

import bisect
import math
import os
import random
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.geometry.grid import SpatialGrid
from repro.geometry.kernel import NeighborKernel
from repro.geometry.rgg import GeometricGraph
from repro.geometry.space import Point, area_side_for_density
from repro.obs.audit import auditor_from_env
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PROFILER
from repro.obs.trace import EventTrace
from repro.mobility.models import (
    FixedPlacement,
    MobilityManager,
    RandomWaypoint,
    StaticPlacement,
)
from repro.sim.kernel import PeriodicTimer, Simulator
from repro.sim.rng import RngRegistry
from repro.simnet.energy import EnergyLedger


def _default_neighbor_backend() -> str:
    """Backend choice, overridable per-process for CI/bench comparisons."""
    return os.environ.get("REPRO_NEIGHBOR_BACKEND", "vectorized")


def _default_access_backend() -> str:
    """Access-engine backend (see :mod:`repro.core.access_engine`)."""
    return os.environ.get("REPRO_ACCESS_BACKEND", "batched")


@dataclass
class NetworkConfig:
    """Deployment and protocol parameters (paper Figure 2 defaults)."""

    n: int = 100
    avg_degree: float = 10.0
    radio_range: float = 200.0
    seed: int = 0
    mobility: str = "static"  # "static" | "waypoint"
    min_speed: float = 0.5
    max_speed: float = 2.0
    pause_time: float = 30.0
    heartbeat_interval: float = 10.0
    hop_latency: float = 0.002
    torus: bool = False
    require_connected: bool = True
    drop_prob: float = 0.0  # extra random per-hop loss (interference proxy)
    grid_refresh: float = 1.0
    #: "vectorized" (numpy batched kernel) or "python" (reference path).
    neighbor_backend: str = field(default_factory=_default_neighbor_backend)
    #: "batched" (numpy access kernels, statistic-identical) or
    #: "sequential" (legacy per-event path).
    access_backend: str = field(default_factory=_default_access_backend)

    @property
    def side(self) -> float:
        return area_side_for_density(self.n, self.radio_range, self.avg_degree)


@dataclass
class RouteResult:
    """Outcome of a multi-hop routed send."""

    success: bool
    path: List[int] = field(default_factory=list)
    data_messages: int = 0
    routing_messages: int = 0

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


@dataclass
class FloodOutcome:
    """Result of a TTL-scoped flood."""

    origin: int
    ttl: int
    covered: Dict[int, int] = field(default_factory=dict)  # node -> hop
    parent: Dict[int, int] = field(default_factory=dict)   # reverse tree
    messages: int = 0

    @property
    def coverage(self) -> int:
        return len(self.covered)

    def reverse_path(self, node: int) -> List[int]:
        """Path from ``node`` back to the flood origin along the tree.

        The parent chain of a valid flood tree has at most ``len(covered)``
        hops; a longer walk means the chain is cyclic, and a missing parent
        means it is broken — both raise :class:`ValueError` rather than
        looping forever / leaking a ``KeyError``.
        """
        max_hops = max(len(self.covered), 1)
        path = [node]
        while path[-1] != self.origin:
            if len(path) > max_hops:
                raise ValueError(
                    f"cyclic parent chain in flood tree at node {node} "
                    f"(walked {len(path)} hops over {max_hops} covered nodes)")
            try:
                path.append(self.parent[path[-1]])
            except KeyError:
                raise ValueError(
                    f"broken parent chain in flood tree: node {path[-1]} "
                    f"has no parent entry (started from {node})") from None
        return path


class SimNetwork:
    """A simulated ad hoc network at the protocol-model level."""

    def __init__(self, config: NetworkConfig,
                 sim: Optional[Simulator] = None,
                 positions: Optional[List[Point]] = None,
                 defer_neighbor_init: bool = False) -> None:
        self.config = config
        self.sim = sim or Simulator()
        self.rngs = RngRegistry(config.seed)
        side = config.side

        # Observability: typed event trace, metrics registry, accounting
        # auditor.  Tracing is off unless enabled explicitly, via the
        # REPRO_TRACE env var (JSONL path), or implied by REPRO_AUDIT.
        self.trace = EventTrace()
        self.metrics = MetricsRegistry()
        self.auditor = auditor_from_env()
        if self.auditor is not None:
            self.trace.enable(memory=True)
        trace_path = os.environ.get("REPRO_TRACE")
        if trace_path:
            self.trace.enable(memory=self.auditor is not None,
                              jsonl_path=trace_path)
        self._metric_unicasts = self.metrics.counter("net.unicasts")
        self._metric_unicast_failures = self.metrics.counter(
            "net.unicast_failures")
        self._metric_broadcasts = self.metrics.counter("net.broadcasts")
        self._metric_routing = self.metrics.counter("net.routing")

        # Churn commit/rollback state: failures can be applied tentatively
        # (geometry updated so connectivity checks see them) and only
        # *committed* — trace event, churn metrics, service-state eviction
        # listeners — once the churn driver decides they stick.
        self._tentative_failures: Set[int] = set()
        self._failure_listeners: List = []
        self._heartbeat_suspended = False

        placement_rng = self.rngs.stream("placement")
        if config.mobility == "waypoint":
            self._model = RandomWaypoint(
                side=side, min_speed=config.min_speed,
                max_speed=config.max_speed, pause_time=config.pause_time,
                rng=self.rngs.stream("mobility"),
            )
        elif config.mobility == "static":
            if positions is not None:
                self._model = FixedPlacement(positions)
            else:
                self._model = StaticPlacement(side, rng=placement_rng)
        else:
            raise ValueError(f"unknown mobility model {config.mobility!r}")

        if config.neighbor_backend not in ("python", "vectorized"):
            raise ValueError(
                f"unknown neighbor backend {config.neighbor_backend!r}")

        # Batched access engine (local import: repro.core pulls in the
        # strategy modules, which import this one).
        from repro.core.access_engine import AccessEngine
        self.access_engine = AccessEngine(config.access_backend)

        self.mobility = MobilityManager(self._model)
        self._alive: Set[int] = set()
        self._next_id = 0
        self.counters: Counter = Counter()
        # python backend: lazily (re)built spatial hash grid.
        self._grid: Optional[SpatialGrid] = None
        self._grid_time = -math.inf
        # vectorized backend: contiguous-array kernel + full neighbor table,
        # valid at `_tables_time` (forever for static networks).
        self._kernel: Optional[NeighborKernel] = None
        self._tables: Optional[Dict[int, List[int]]] = None
        self._tables_time = -math.inf
        # per-timestamp position cache: MobilityManager.position_at runs at
        # most once per node per tick (static positions are cached forever).
        self._pos_cache: Dict[int, Point] = {}
        self._pos_cache_time = -math.inf
        self._known_neighbors: Dict[int, List[int]] = {}
        # Counts known-view (heartbeat snapshot) mutations; these do not
        # touch geometry, so known-view caches key on
        # (topology_version, known_version).
        self._known_version = 0
        self._route_cache: Dict[Tuple[int, int], List[int]] = {}
        self._drop_rng = self.rngs.stream("drops")
        self.energy = EnergyLedger()
        # Batched-replication hooks: a shared per-deployment BFS memo and
        # a counter identifying the current topology (bumped on every
        # geometry mutation, so replicas that applied the same mutation
        # sequence agree on the key).
        self._route_oracle = None
        self._oracle_version = 0
        self._topo_version = 0
        self._positions_given = positions is not None
        self._deferred_init = defer_neighbor_init

        init_positions = positions
        if init_positions is None and config.mobility == "static":
            init_positions = None  # StaticPlacement draws them
        for i in range(config.n):
            pos = None
            if positions is not None and config.mobility != "waypoint":
                pos = positions[i]
            self._spawn_node(pos)

        if not defer_neighbor_init:
            if config.require_connected and positions is None:
                self._ensure_connected(placement_rng)
            self._refresh_neighbor_tables()
        self._heartbeat = PeriodicTimer(
            self.sim, config.heartbeat_interval, self._refresh_neighbor_tables
        )

        # Adversarial replica registry (repro.faults.byzantine); None on
        # honest networks so the access path pays one attribute check.
        self.byzantine = None

        # Live invariant watchers (REPRO_WATCH env hook).  Attached last
        # so the hub sees the finished topology (n_alive for the
        # intersection bound).  Lazy import: the common path pays one
        # env lookup only.
        self.watch_hub = None
        if os.environ.get("REPRO_WATCH", "").strip():
            from repro.obs.watch import attach_env_watchers
            attach_env_watchers(self)

    # -- construction helpers ----------------------------------------------

    def _spawn_node(self, position: Optional[Point] = None) -> int:
        node_id = self._next_id
        self._next_id += 1
        self.mobility.add_node(node_id, t=self.sim.now, position=position)
        self._alive.add(node_id)
        self._admit_to_geometry(node_id)
        return node_id

    def _ensure_connected(self, rng: random.Random, max_attempts: int = 60) -> None:
        for _ in range(max_attempts):
            if self.is_connected():
                return
            # Re-place all nodes.
            for node_id in list(self._alive):
                self.mobility.remove_node(node_id)
                pos = (rng.uniform(0, self.config.side),
                       rng.uniform(0, self.config.side))
                self.mobility.add_node(node_id, t=self.sim.now, position=pos)
            self._invalidate_geometry()
        raise RuntimeError(
            f"could not obtain a connected deployment "
            f"(n={self.config.n}, d_avg={self.config.avg_degree})"
        )

    def finish_deferred_init(self,
                             tables: Optional[Dict[int, List[int]]] = None
                             ) -> None:
        """Complete a ``defer_neighbor_init=True`` construction.

        ``tables``, when given, must equal what :meth:`_neighbor_tables`
        would compute for the current placement (the batched replication
        engine obtains it from one replica-axis kernel pass); it is
        adopted instead of recomputed.  Connectivity enforcement then
        runs exactly as the normal constructor would — same placement
        stream, same redraw sequence — so a deferred network is
        indistinguishable from an eagerly-built one.
        """
        if not self._deferred_init:
            return
        if (tables is not None
                and self.config.neighbor_backend == "vectorized"
                and self.config.mobility == "static"):
            ids = sorted(self._alive)
            kernel = NeighborKernel(side=self.config.side,
                                    radius=self.config.radio_range,
                                    torus=self.config.torus)
            kernel.rebuild(ids, [self.position(i) for i in ids])
            self._kernel = kernel
            self._tables = {node: list(nbrs) for node, nbrs in tables.items()}
            self._tables_time = self.sim.now
        if self.config.require_connected and not self._positions_given:
            if not self.is_connected():
                self._ensure_connected(self.rngs.stream("placement"))
        self._refresh_neighbor_tables()
        self._deferred_init = False

    # -- geometry caches -----------------------------------------------------

    def _invalidate_geometry(self) -> None:
        """Full invalidation: every position may have changed."""
        self._topo_version += 1
        self._grid = None
        self._grid_time = -math.inf
        self._kernel = None
        self._tables = None
        self._tables_time = -math.inf
        self._pos_cache.clear()
        self._pos_cache_time = self.sim.now

    def _admit_to_geometry(self, node_id: int) -> None:
        """Incrementally add a node to whichever indexes are live."""
        self._topo_version += 1
        self._pos_cache.pop(node_id, None)
        if self._grid is None and self._kernel is None and self._tables is None:
            return
        pos = self.position(node_id)
        if self._grid is not None:
            self._grid.insert(node_id, pos)
        if self._kernel is not None:
            self._kernel.insert(node_id, pos)
        if self._tables is not None:
            if self._kernel is not None:
                neighbors = self._kernel.neighbors_of(node_id)
            else:
                neighbors = sorted(
                    v for v in self._alive
                    if v != node_id
                    and self.distance(pos, self.position(v))
                    <= self.config.radio_range)
            self._tables[node_id] = neighbors
            for other in neighbors:
                table = self._tables.get(other)
                if table is not None and node_id not in table:
                    bisect.insort(table, node_id)

    def _evict_from_geometry(self, node_id: int) -> None:
        """Incrementally drop a node — no full rebuild for one churn event."""
        self._topo_version += 1
        self._pos_cache.pop(node_id, None)
        if self._grid is not None:
            self._grid.remove(node_id)
        if self._kernel is not None:
            self._kernel.remove(node_id)
        if self._tables is not None:
            for other in self._tables.pop(node_id, ()):  # symmetric links
                table = self._tables.get(other)
                if table is not None and node_id in table:
                    table.remove(node_id)

    # -- batched replication hooks ------------------------------------------

    @property
    def topology_version(self) -> int:
        """Counts geometry mutations; replicas that applied the same
        deterministic mutation sequence to the same placement agree."""
        return self._topo_version

    @property
    def known_version(self) -> int:
        """Counts known-view (heartbeat snapshot) mutations."""
        return self._known_version

    def attach_route_oracle(self, oracle) -> None:
        """Serve route discovery from a shared per-deployment BFS memo.

        Only meaningful for static-mobility networks (the oracle is
        ignored under waypoint mobility, where topology is a function of
        each replica's private clock).  The oracle must be shared only
        among replicas of the *same* deployment; it verifies this.

        The attachment covers the topology as it stands *now*: any later
        geometry mutation (churn fail/join) silently disables the oracle
        for this network, because workload-driven churn differs between
        replicas — two replicas at the same version count would no longer
        share a graph, so serving memoized trees across them is unsound.
        """
        self._route_oracle = oracle
        self._oracle_version = self._topo_version

    def detach_route_oracle(self) -> None:
        self._route_oracle = None

    def _oracle_tree(self, src: int):
        """A memoized BFS tree from ``src``, or None when not applicable.

        The shared per-deployment oracle (batched replication) takes
        precedence; otherwise the access engine serves its own
        version-keyed memo when the batched backend is eligible.  Both
        produce trees identical to the sequential BFS, so route
        discovery stays statistic-identical either way.
        """
        if (self._route_oracle is not None
                and self.config.mobility == "static"
                and self._topo_version == self._oracle_version):
            return self._route_oracle.tree(self, src)
        return self.access_engine.tree(self, src)

    # -- observability -------------------------------------------------------

    def record_event(self, kind: str, /, **fields) -> None:
        """Record one trace event at the current simulated time."""
        if self.trace.enabled:
            self.trace.record(kind, self.sim.now, **fields)

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def advance(self, dt: float) -> None:
        """Advance simulated time, running due events (heartbeats, churn)."""
        if dt > 0:
            self.sim.run(until=self.sim.now + dt)

    def run_until(self, t: float) -> None:
        if t > self.sim.now:
            self.sim.run(until=t)

    # -- membership of the deployment ----------------------------------------

    def alive_nodes(self) -> List[int]:
        return sorted(self._alive)

    @property
    def n_alive(self) -> int:
        return len(self._alive)

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._alive

    def add_failure_listener(self, fn) -> None:
        """Register ``fn(node_id)`` to run when a failure *commits*.

        Listeners model service-state reactions to a node really going
        away (e.g. :meth:`LocationService.evict_bystander_state`).  They
        never fire for tentative failures that get rolled back, so a
        connectivity-preserving churn probe leaves caches untouched.
        """
        self._failure_listeners.append(fn)

    def fail_node(self, node_id: int, commit: bool = True) -> None:
        """Crash/leave: the node stops participating immediately.

        With ``commit=False`` the failure is *tentative*: geometry and
        neighbor state update (so ``is_connected`` sees the would-be
        survivor graph) but no trace event, churn metric, or failure
        listener fires until :meth:`commit_failure` — and
        :meth:`revive_node` rolls the whole thing back silently.
        """
        if node_id not in self._alive:
            return
        with PROFILER.phase("churn.update"):
            self._alive.discard(node_id)
            self._evict_from_geometry(node_id)
            self._known_neighbors.pop(node_id, None)
            self._known_version += 1
        if commit:
            self._commit_failure_effects(node_id)
        else:
            self._tentative_failures.add(node_id)

    def commit_failure(self, node_id: int) -> None:
        """Make a tentative failure stick (event + metrics + listeners)."""
        if node_id in self._tentative_failures:
            self._tentative_failures.discard(node_id)
            self._commit_failure_effects(node_id)

    def _commit_failure_effects(self, node_id: int) -> None:
        self.metrics.counter("churn.failures").inc()
        self.record_event("churn", action="fail", node=node_id)
        for fn in self._failure_listeners:
            fn(node_id)

    def revive_node(self, node_id: int) -> None:
        """Undo a failure.

        Rolling back a *tentative* failure is silent (the failure was
        never observable); reviving a committed failure emits the
        compensating ``churn action=revive`` event so offline summaries
        can reconcile the earlier ``fail``.
        """
        if node_id in self._alive:
            return
        tentative = node_id in self._tentative_failures
        with PROFILER.phase("churn.update"):
            if node_id not in self.mobility:
                self.mobility.add_node(node_id, t=self.sim.now)
            self._alive.add(node_id)
            self._admit_to_geometry(node_id)
        if tentative:
            self._tentative_failures.discard(node_id)
        else:
            self.metrics.counter("churn.revives").inc()
            self.record_event("churn", action="revive", node=node_id)

    def join_node(self, position: Optional[Point] = None) -> int:
        """A fresh node joins at a random (or given) position."""
        with PROFILER.phase("churn.update"):
            node_id = self._spawn_node(position)
            # The newcomer learns its neighbors on arrival (first
            # heartbeat).
            self._known_neighbors[node_id] = self.true_neighbors(node_id)
            for other in self._known_neighbors[node_id]:
                table = self._known_neighbors.get(other)
                if table is not None and node_id not in table:
                    table.append(node_id)
            self._known_version += 1
        self.metrics.counter("churn.joins").inc()
        self.record_event("churn", action="join", node=node_id)
        return node_id

    # -- geometry --------------------------------------------------------------

    def position(self, node_id: int) -> Point:
        t = self.sim.now
        if t != self._pos_cache_time:
            if self.config.mobility != "static":
                self._pos_cache.clear()
            self._pos_cache_time = t
        pos = self._pos_cache.get(node_id)
        if pos is None:
            pos = self.mobility.position_at(node_id, t)
            self._pos_cache[node_id] = pos
        return pos

    def distance(self, a: Point, b: Point) -> float:
        dx = abs(a[0] - b[0])
        dy = abs(a[1] - b[1])
        if self.config.torus:
            dx = min(dx, self.config.side - dx)
            dy = min(dy, self.config.side - dy)
        return math.hypot(dx, dy)

    def in_range(self, a: int, b: int) -> bool:
        return (self.distance(self.position(a), self.position(b))
                <= self.config.radio_range)

    def _ensure_grid(self) -> SpatialGrid:
        refresh = (self.config.grid_refresh
                   if self.config.mobility == "waypoint" else math.inf)
        if (self._grid is None
                or self.sim.now - self._grid_time >= refresh
                or self._grid_time < 0):
            with PROFILER.phase("neighbor.rebuild"):
                grid = SpatialGrid(side=self.config.side,
                                   cell_size=self.config.radio_range,
                                   torus=self.config.torus)
                for node_id in self._alive:
                    grid.insert(node_id, self.position(node_id))
            self._grid = grid
            self._grid_time = self.sim.now
        return self._grid

    def _neighbor_tables(self) -> Dict[int, List[int]]:
        """Full ground-truth adjacency at ``sim.now`` (vectorized backend).

        Static networks keep the table until churn touches it (then it is
        patched incrementally); mobile networks recompute it in one batched
        kernel pass the first time any node is queried at a new timestamp.
        """
        static = self.config.mobility == "static"
        if self._tables is not None and (static
                                         or self._tables_time == self.sim.now):
            return self._tables
        with PROFILER.phase("neighbor.rebuild"):
            ids = sorted(self._alive)
            if self._kernel is None or not static:
                kernel = NeighborKernel(side=self.config.side,
                                        radius=self.config.radio_range,
                                        torus=self.config.torus)
                with PROFILER.phase("mobility.positions"):
                    positions = [self.position(i) for i in ids]
                kernel.rebuild(ids, positions)
                self._kernel = kernel
            self._tables = self._kernel.neighbor_tables()
        self._tables_time = self.sim.now
        return self._tables

    def true_neighbors(self, node_id: int) -> List[int]:
        """Ground-truth current neighbors (alive, within range), sorted."""
        if self.config.neighbor_backend == "vectorized":
            neighbors = self._neighbor_tables().get(node_id)
            if neighbors is None:
                # Dead (or never-admitted) query node: its position is still
                # tracked, so answer with a one-off kernel range query.
                return self._kernel.within(self.position(node_id),
                                           self.config.radio_range,
                                           exclude=node_id)
            return list(neighbors)
        grid = self._ensure_grid()
        pos = self.position(node_id)
        margin = 0.0
        if self.config.mobility == "waypoint":
            margin = 2 * self.config.max_speed * self.config.grid_refresh
        candidates = grid.within(pos, self.config.radio_range + margin)
        return sorted(
            other for other in candidates
            if other != node_id and other in self._alive
            and self.distance(pos, self.position(other)) <= self.config.radio_range
        )

    def known_neighbors(self, node_id: int) -> List[int]:
        """Last-heartbeat neighbor snapshot (stale under mobility)."""
        return list(self._known_neighbors.get(node_id, []))

    def suspend_neighbor_refresh(self) -> None:
        """Freeze heartbeat updates (membership-staleness injection).

        The periodic timer keeps firing but becomes a no-op, so nodes
        keep routing on their last-heartbeat neighbor snapshot.
        """
        self._heartbeat_suspended = True

    def resume_neighbor_refresh(self) -> None:
        """Re-enable heartbeat updates and refresh immediately."""
        self._heartbeat_suspended = False
        self._refresh_neighbor_tables()

    def _refresh_neighbor_tables(self) -> None:
        if self._heartbeat_suspended:
            return
        self._known_version += 1
        with PROFILER.phase("neighbor.heartbeat"):
            if self.config.neighbor_backend == "vectorized":
                tables = self._neighbor_tables()
                self._known_neighbors = {
                    node_id: list(tables.get(node_id, ()))
                    for node_id in self._alive
                }
                return
            self._known_neighbors = {
                node_id: self.true_neighbors(node_id)
                for node_id in self._alive
            }

    def snapshot_graph(self) -> GeometricGraph:
        """Current ground-truth connectivity graph (ids compacted are NOT
        applied; dead nodes appear with empty adjacency)."""
        n_total = self._next_id
        positions: List[Point] = []
        for node_id in range(n_total):
            if node_id in self.mobility:
                positions.append(self.position(node_id))
            else:
                positions.append((-1e9, -1e9))
        adjacency: List[List[int]] = [[] for _ in range(n_total)]
        for node_id in self._alive:
            adjacency[node_id] = self.true_neighbors(node_id)
        return GeometricGraph(positions=positions,
                              radius=self.config.radio_range,
                              side=self.config.side,
                              torus=self.config.torus,
                              adjacency=adjacency)

    def is_connected(self) -> bool:
        alive = list(self._alive)
        if not alive:
            return True
        if self.config.neighbor_backend == "vectorized":
            tables = self._neighbor_tables()
            neighbors = lambda u: tables.get(u, ())  # noqa: E731
        else:
            neighbors = self.true_neighbors
        seen = {alive[0]}
        queue = deque([alive[0]])
        while queue:
            u = queue.popleft()
            for v in neighbors(u):
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return len(seen) == len(alive)

    # -- one-hop messaging ------------------------------------------------------

    def one_hop_unicast(self, src: int, dst: int) -> bool:
        """Send one frame to a direct neighbor.

        Returns False — emulating the MAC failure notification after 7
        retries — when the destination is dead, out of range, or the frame
        is lost to the configured random drop.  Counts one network message
        either way (the frame was transmitted).
        """
        self.counters["network"] += 1
        self._metric_unicasts.inc()
        self.advance(self.config.hop_latency)
        ok = True
        if not self.is_alive(src):
            ok = False
        elif not self.is_alive(dst) or not self.in_range(src, dst):
            self.energy.charge_failed_unicast(src)
            ok = False
        elif (self.config.drop_prob > 0
              and self._drop_rng.random() < self.config.drop_prob):
            self.energy.charge_failed_unicast(src)
            ok = False
        else:
            bystanders = max(0, len(self.true_neighbors(src)) - 1)
            self.energy.charge_unicast(src, dst, bystanders=bystanders)
        if not ok:
            self._metric_unicast_failures.inc()
        if self.trace.enabled:
            self.trace.record("hop", self.sim.now, src=src, dst=dst, ok=ok)
        return ok

    def one_hop_broadcast(self, src: int) -> List[int]:
        """Broadcast one frame; returns the alive nodes that received it."""
        self.counters["network"] += 1
        self._metric_broadcasts.inc()
        self.advance(self.config.hop_latency)
        if not self.is_alive(src):
            if self.trace.enabled:
                self.trace.record("broadcast", self.sim.now, src=src,
                                  receivers=0, ok=False)
            return []
        receivers = self.true_neighbors(src)
        if self.config.drop_prob > 0:
            receivers = [r for r in receivers
                         if self._drop_rng.random() >= self.config.drop_prob]
        self.energy.charge_broadcast(src, receivers=len(receivers))
        if self.trace.enabled:
            self.trace.record("broadcast", self.sim.now, src=src,
                              receivers=len(receivers), ok=True)
        return receivers

    # -- TTL-scoped flooding ---------------------------------------------------

    def flood(self, origin: int, ttl: int) -> "FloodOutcome":
        """TTL-scoped flood (Section 4.4): ring-by-ring BFS broadcast.

        The originator broadcasts with the given TTL; each first-time
        receiver decrements it and rebroadcasts while it stays positive.
        Returns every covered node with its hop distance, the reverse
        (parent) tree for replies, and the transmission count (one
        broadcast per rebroadcasting node).
        """
        if ttl < 1:
            raise ValueError("flood TTL must be >= 1")
        batched = self.access_engine.flood(self, origin, ttl)
        if batched is not None:
            covered, parent, messages = batched
        else:
            covered = {origin: 0}
            parent = {origin: origin}
            messages = 0
            frontier = [origin]
            hop = 0
            while frontier and hop < ttl:
                next_frontier: List[int] = []
                for node in frontier:
                    receivers = self.one_hop_broadcast(node)
                    messages += 1
                    for rx in receivers:
                        if rx not in covered:
                            covered[rx] = hop + 1
                            parent[rx] = node
                            next_frontier.append(rx)
                frontier = next_frontier
                hop += 1
        self.record_event("flood", origin=origin, ttl=ttl,
                          coverage=len(covered), messages=messages)
        return FloodOutcome(origin=origin, ttl=ttl, covered=covered,
                            parent=parent, messages=messages)

    # -- multi-hop routing (AODV-style with caching) ------------------------------

    def _bfs_path(self, src: int, dst: int) -> Optional[List[int]]:
        if src == dst:
            return [src]
        parent: Dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for v in self.true_neighbors(u):
                if v in parent:
                    continue
                parent[v] = u
                if v == dst:
                    path = [v]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                queue.append(v)
        return None

    def _hop_distances_capped(self, src: int, cap: int) -> Dict[int, int]:
        dist = {src: 0}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            if dist[u] >= cap:
                continue
            for v in self.true_neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def _route_valid(self, path: List[int]) -> bool:
        for a, b in zip(path, path[1:]):
            if not self.is_alive(b) or not self.in_range(a, b):
                return False
        return True

    def _discover_route(self, src: int, dst: int) -> Tuple[Optional[List[int]], int]:
        """Expanding-ring discovery; returns (path, control message count).

        The control cost models AODV: every node inside the ring that found
        the destination rebroadcasts the RREQ once, and the RREP travels
        back along the path.
        """
        with PROFILER.phase("routing.discover"):
            tree = self._oracle_tree(src)
            if tree is not None:
                path = tree.path_to(dst)
                if path is None:
                    cost = tree.count_within(self.config.n)
                    self._account_routing(src, dst, cost, found=False)
                    return None, cost
                needed_ttl = len(path) - 1
                cost = tree.count_within(needed_ttl) + needed_ttl
                self._account_routing(src, dst, cost, found=True)
                return path, cost
            path = self._bfs_path(src, dst)
            if path is None:
                # Full-network flood that failed: everybody reachable
                # rebroadcast.
                reached = self._hop_distances_capped(src, cap=self.config.n)
                self._account_routing(src, dst, len(reached), found=False)
                return None, len(reached)
            needed_ttl = len(path) - 1
            reached = self._hop_distances_capped(src, cap=needed_ttl)
            rreq_cost = len(reached)  # each reached node broadcasts once
            rrep_cost = needed_ttl
            self._account_routing(src, dst, rreq_cost + rrep_cost, found=True)
            return path, rreq_cost + rrep_cost

    def _account_routing(self, src: int, dst: int, cost: int,
                         found: bool) -> None:
        """Trace + meter one routing-control expenditure."""
        if cost <= 0:
            return
        self._metric_routing.inc(cost)
        if self.trace.enabled:
            self.trace.record("routing", self.sim.now, src=src, dst=dst,
                              count=cost, found=found)

    def discover_path(self, src: int, dst: int) -> Tuple[Optional[List[int]], int]:
        """Obtain a route (cache hit or discovery) WITHOUT sending data.

        Returns ``(path, routing_control_messages)``.  Used by protocols
        that need hop-by-hop control over the data forwarding (e.g. the
        RANDOM-OPT en-route lookup).
        """
        if not self.is_alive(src) or not self.is_alive(dst):
            return None, 0
        if src == dst:
            return [src], 0
        cached = self._route_cache.get((src, dst))
        if cached is not None and self._route_valid(cached):
            return cached, 0
        path, cost = self._discover_route(src, dst)
        self.counters["routing"] += cost
        if path is None:
            self._route_cache.pop((src, dst), None)
        else:
            self._route_cache[(src, dst)] = path
        return path, cost

    def _forward_fast(self, path: List[int]) -> Optional[int]:
        """Bulk-forward along ``path``; returns the hop count, or None.

        Only fires when the result is *provably identical* to the per-hop
        ``one_hop_unicast`` loop: an attached route oracle (batched
        replication mode) or an active batched access engine,
        static positions, no random drops, tracing
        off, every hop currently valid, and no simulation event pending
        inside the forwarding window.  The target time is accumulated by
        repeated addition — the same float operations the per-hop loop
        performs — so clocks and latency statistics stay byte-identical.
        """
        if (self.trace.enabled
                or self.config.mobility != "static"
                or self.config.drop_prob > 0
                or self._tables is None):
            return None
        if (self._route_oracle is None
                and not self.access_engine.routes_active(self)):
            return None
        hops = len(path) - 1
        if hops <= 0:
            return None
        latency = self.config.hop_latency
        t = self.sim.now
        for _ in range(hops):
            t += latency
        # An event at or before t (heartbeat, churn) would run *during*
        # the per-hop loop; fall back to the exact path in that case.
        if self.sim.next_event_time() <= t:
            return None
        tables = self._tables
        alive = self._alive
        for a, b in zip(path, path[1:]):
            nbrs = tables.get(a)
            if nbrs is None or b not in alive or b not in nbrs:
                return None
        self.counters["network"] += hops
        self._metric_unicasts.inc(hops)
        energy = self.energy
        for a, b in zip(path, path[1:]):
            energy.charge_unicast(a, b, bystanders=max(0, len(tables[a]) - 1))
        if t > self.sim.now:
            self.sim.run(until=t)
        return hops

    def route(self, src: int, dst: int) -> RouteResult:
        """Send an application message via (cached) multi-hop routing."""
        if not self.is_alive(src):
            return RouteResult(success=False)
        if src == dst:
            return RouteResult(success=True, path=[src])
        routing_messages = 0
        data_messages = 0
        attempts = 0
        while attempts < 2:
            attempts += 1
            cached = self._route_cache.get((src, dst))
            if cached is None or not self._route_valid(cached):
                path, cost = self._discover_route(src, dst)
                routing_messages += cost
                if path is None:
                    self._route_cache.pop((src, dst), None)
                    self.counters["routing"] += routing_messages
                    self.record_event("route", src=src, dst=dst, ok=False)
                    return RouteResult(success=False,
                                       routing_messages=routing_messages,
                                       data_messages=data_messages)
                self._route_cache[(src, dst)] = path
                cached = path
            # Forward hop by hop; mobility may break the path mid-flight.
            fast_hops = self._forward_fast(cached)
            if fast_hops is not None:
                data_messages += fast_hops
                self.counters["routing"] += routing_messages
                self.record_event("route", src=src, dst=dst, ok=True,
                                  hops=len(cached) - 1)
                return RouteResult(success=True, path=cached,
                                   data_messages=data_messages,
                                   routing_messages=routing_messages)
            ok = True
            for a, b in zip(cached, cached[1:]):
                sent = self.one_hop_unicast(a, b)
                data_messages += 1
                if not sent:
                    ok = False
                    self._route_cache.pop((src, dst), None)
                    break
            if ok:
                self.counters["routing"] += routing_messages
                self.record_event("route", src=src, dst=dst, ok=True,
                                  hops=len(cached) - 1)
                return RouteResult(success=True, path=cached,
                                   data_messages=data_messages,
                                   routing_messages=routing_messages)
        self.counters["routing"] += routing_messages
        self.record_event("route", src=src, dst=dst, ok=False)
        return RouteResult(success=False, data_messages=data_messages,
                           routing_messages=routing_messages)

    def scoped_route(self, src: int, dst: int, max_hops: int) -> RouteResult:
        """Route with a TTL-limited discovery (Section 6.2 local repair).

        The RREQ flood is confined to ``max_hops`` hops around ``src``; its
        cost is the number of nodes reached.  Fails fast if the destination
        is farther than ``max_hops``.
        """
        if not self.is_alive(src):
            return RouteResult(success=False)
        if src == dst:
            return RouteResult(success=True, path=[src])
        tree = self._oracle_tree(src)
        if tree is not None:
            routing_messages = tree.count_within(max_hops)
            found = tree.dist.get(dst, math.inf) <= max_hops
            self.counters["routing"] += routing_messages
            self._account_routing(src, dst, routing_messages, found=found)
            if not found:
                return RouteResult(success=False,
                                   routing_messages=routing_messages)
            path = tree.path_to(dst)
        else:
            reached = self._hop_distances_capped(src, cap=max_hops)
            routing_messages = len(reached)
            self.counters["routing"] += routing_messages
            self._account_routing(src, dst, routing_messages,
                                  found=dst in reached)
            if dst not in reached:
                return RouteResult(success=False,
                                   routing_messages=routing_messages)
            path = self._bfs_path(src, dst)
        if path is None or len(path) - 1 > max_hops:
            return RouteResult(success=False, routing_messages=routing_messages)
        fast_hops = self._forward_fast(path)
        if fast_hops is not None:
            return RouteResult(success=True, path=path,
                               data_messages=fast_hops,
                               routing_messages=routing_messages)
        data_messages = 0
        for a, b in zip(path, path[1:]):
            data_messages += 1
            if not self.one_hop_unicast(a, b):
                return RouteResult(success=False, data_messages=data_messages,
                                   routing_messages=routing_messages)
        return RouteResult(success=True, path=path,
                           data_messages=data_messages,
                           routing_messages=routing_messages)

    def invalidate_routes(self) -> None:
        """Drop all cached routes (e.g. after heavy churn)."""
        self._route_cache.clear()

    # -- convenience --------------------------------------------------------------

    def random_alive_node(self, rng: random.Random) -> int:
        return rng.choice(self.alive_nodes())

    def reset_counters(self) -> None:
        self.counters.clear()
