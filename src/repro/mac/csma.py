"""CSMA/CA MAC layer (802.11 DCF style).

Implements the MAC semantics the paper's protocols depend on (Sections 2.4
and 6.2):

* carrier sensing with DIFS + slotted random backoff (slot 20 us, DIFS 50 us,
  the paper's Figure 2 values);
* unicast frames are acknowledged; up to 7 retransmissions with binary
  exponential backoff, after which the MAC *notifies the upper layer* of the
  failure instead of dropping silently (the cross-layer notification design
  of Section 6.2 that enables RW salvation and reply-path repair);
* broadcast frames are unacknowledged, sent at the low broadcast rate, and
  delayed by a random jitter (10 ms, RFC 5148) to avoid synchronized
  rebroadcast collisions;
* an optional promiscuous hook overhears every decodable frame (Section 7.2).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple
from collections import deque

from repro.sim.kernel import Event, Simulator

BROADCAST = -1


@dataclass(frozen=True)
class MacParams:
    """802.11 DCF timing parameters (paper Figure 2, MAC section)."""

    slot_time: float = 20e-6
    difs: float = 50e-6
    sifs: float = 10e-6
    cw_min: int = 31
    cw_max: int = 1023
    retry_limit: int = 7
    ack_bytes: int = 14
    broadcast_jitter: float = 10e-3
    ack_timeout_guard: float = 100e-6


@dataclass
class MacFrame:
    """A frame on the air: DATA or ACK."""

    kind: str  # "data" | "ack"
    src: int
    dst: int  # BROADCAST for broadcast data
    seq: int
    payload: Any = None
    retry: int = 0


@dataclass
class _OutgoingJob:
    dst: int
    payload: Any
    payload_bytes: int
    on_success: Optional[Callable[[], None]]
    on_failure: Optional[Callable[[], None]]
    seq: int = 0
    retry: int = 0


class MacLayer:
    """Per-node MAC entity.

    Upper layers call :meth:`send_unicast` / :meth:`send_broadcast`; the MAC
    serialises frames through a FIFO queue, performs CSMA/CA and retries,
    and invokes ``deliver`` for every frame addressed to (or broadcast at)
    this node.  Set :attr:`promiscuous` to also receive overheard frames via
    ``on_overhear``.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Any,
        node_id: int,
        deliver: Callable[[Any, int], None],
        params: Optional[MacParams] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.node_id = node_id
        self.deliver = deliver
        self.params = params or MacParams()
        self.rng = rng or random.Random()
        self.promiscuous = False
        self.on_overhear: Optional[Callable[[Any, int, int], None]] = None

        self._queue: Deque[_OutgoingJob] = deque()
        self._current: Optional[_OutgoingJob] = None
        self._seq = itertools.count()
        self._pending_ack: Optional[Tuple[int, Event]] = None  # (seq, timeout)
        self._attempt_event: Optional[Event] = None
        self._seen_data: Dict[Tuple[int, int], float] = {}  # dedupe (src, seq)
        self.alive = True

        # Statistics
        self.data_sent = 0
        self.acks_sent = 0
        self.retries = 0
        self.failures = 0
        self.delivered_up = 0

        channel.attach(node_id, self._on_frame)

    # -- upper-layer API ---------------------------------------------------

    def send_unicast(
        self,
        dst: int,
        payload: Any,
        payload_bytes: int = 512,
        on_success: Optional[Callable[[], None]] = None,
        on_failure: Optional[Callable[[], None]] = None,
    ) -> None:
        """Queue a unicast frame; exactly one of the callbacks fires later."""
        if dst == self.node_id:
            raise ValueError("cannot unicast to self")
        job = _OutgoingJob(dst=dst, payload=payload, payload_bytes=payload_bytes,
                           on_success=on_success, on_failure=on_failure,
                           seq=next(self._seq))
        self._queue.append(job)
        self._kick()

    def send_broadcast(self, payload: Any, payload_bytes: int = 512) -> None:
        """Queue a broadcast frame (fire and forget, jittered)."""
        job = _OutgoingJob(dst=BROADCAST, payload=payload,
                           payload_bytes=payload_bytes,
                           on_success=None, on_failure=None,
                           seq=next(self._seq))
        self._queue.append(job)
        self._kick()

    def shutdown(self) -> None:
        """Power off: detach from the channel and drop queued frames."""
        self.alive = False
        self.channel.detach(self.node_id)
        if self._attempt_event is not None:
            self._attempt_event.cancel()
        if self._pending_ack is not None:
            self._pending_ack[1].cancel()
        self._queue.clear()
        self._current = None

    # -- queue machinery -----------------------------------------------------

    def _kick(self) -> None:
        if not self.alive or self._current is not None or not self._queue:
            return
        self._current = self._queue.popleft()
        self._schedule_attempt(first=True)

    def _contention_window(self, retry: int) -> int:
        cw = (self.params.cw_min + 1) * (2 ** retry) - 1
        return min(cw, self.params.cw_max)

    def _schedule_attempt(self, first: bool = False) -> None:
        job = self._current
        if job is None or not self.alive:
            return
        backoff_slots = self.rng.randint(0, self._contention_window(job.retry))
        delay = self.params.difs + backoff_slots * self.params.slot_time
        if job.dst == BROADCAST and first:
            delay += self.rng.uniform(0, self.params.broadcast_jitter)
        self._attempt_event = self.sim.schedule(delay, self._attempt)

    def _attempt(self) -> None:
        job = self._current
        if job is None or not self.alive:
            return
        if self.channel.carrier_busy(self.node_id) or self.channel.is_transmitting(self.node_id):
            # Medium busy: back off again (simplified DCF freeze).
            self._schedule_attempt()
            return
        frame = MacFrame(kind="data", src=self.node_id, dst=job.dst,
                         seq=job.seq, payload=job.payload, retry=job.retry)
        broadcast = job.dst == BROADCAST
        duration = self.channel.params.tx_duration(job.payload_bytes,
                                                   broadcast=broadcast)
        self.channel.transmit(self.node_id, frame, duration)
        self.data_sent += 1
        if broadcast:
            self._current = None
            self._kick()
            return
        # Await an ACK.
        ack_air = self.channel.params.tx_duration(self.params.ack_bytes)
        timeout = (duration + self.params.sifs + ack_air
                   + self.params.ack_timeout_guard)
        ev = self.sim.schedule(timeout, self._on_ack_timeout, job.seq)
        self._pending_ack = (job.seq, ev)

    def _on_ack_timeout(self, seq: int) -> None:
        job = self._current
        if job is None or job.seq != seq:
            return
        self._pending_ack = None
        if job.retry >= self.params.retry_limit:
            self.failures += 1
            self._current = None
            if job.on_failure is not None:
                job.on_failure()
            self._kick()
            return
        job.retry += 1
        self.retries += 1
        self._schedule_attempt()

    # -- receive path ----------------------------------------------------

    def _on_frame(self, _rx_id: int, frame: MacFrame, _rx_power: float) -> None:
        if not self.alive:
            return
        if frame.kind == "ack":
            self._handle_ack(frame)
            return
        if frame.dst == self.node_id:
            self._send_ack(frame)
            if not self._is_duplicate(frame):
                self.delivered_up += 1
                self.deliver(frame.payload, frame.src)
        elif frame.dst == BROADCAST:
            if not self._is_duplicate(frame):
                self.delivered_up += 1
                self.deliver(frame.payload, frame.src)
        elif self.promiscuous and self.on_overhear is not None:
            self.on_overhear(frame.payload, frame.src, frame.dst)

    def _is_duplicate(self, frame: MacFrame) -> bool:
        key = (frame.src, frame.seq)
        if key in self._seen_data:
            return True
        self._seen_data[key] = self.sim.now
        if len(self._seen_data) > 8192:
            horizon = self.sim.now - 30.0
            self._seen_data = {
                k: v for k, v in self._seen_data.items() if v >= horizon
            }
        return False

    def _send_ack(self, frame: MacFrame) -> None:
        ack = MacFrame(kind="ack", src=self.node_id, dst=frame.src,
                       seq=frame.seq)
        duration = self.channel.params.tx_duration(self.params.ack_bytes)
        self.sim.schedule(
            self.params.sifs,
            lambda: self.alive and self.channel.transmit(self.node_id, ack, duration),
        )
        self.acks_sent += 1

    def _handle_ack(self, frame: MacFrame) -> None:
        if frame.dst != self.node_id:
            return
        job = self._current
        if job is None or self._pending_ack is None:
            return
        seq, ev = self._pending_ack
        if frame.seq != seq:
            return
        ev.cancel()
        self._pending_ack = None
        self._current = None
        if job.on_success is not None:
            job.on_success()
        self._kick()
