"""MAC substrate: CSMA/CA with acked unicast, jittered broadcast, failure notify."""

from repro.mac.csma import BROADCAST, MacFrame, MacLayer, MacParams

__all__ = ["BROADCAST", "MacFrame", "MacLayer", "MacParams"]
