"""Fault-campaign schema and the deterministic campaign runner.

Campaign schema (JSON-serialisable via ``FaultCampaign.to_dict``)::

    {"name": "smoke",
     "injections": [
       {"type": "drop-burst",  "at": 5.0,  "duration": 10.0, "drop_prob": 0.3},
       {"type": "failure-wave", "at": 20.0, "fraction": 0.1,
        "keep_connected": true},
       {"type": "join-wave",   "at": 30.0, "fraction": 0.1},
       {"type": "partition",   "at": 40.0, "duration": 15.0, "axis": "x",
        "position": 0.5, "width": null},
       {"type": "staleness",   "at": 60.0, "duration": 20.0},
       {"type": "byzantine",   "at": 80.0, "duration": 20.0,
        "behavior": "lie", "fraction": 0.05}]}

Every injection fires at an absolute simulated time ``at``; injections
with a ``duration`` schedule a matching *end* action.  The runner draws
all randomness (failure-wave victims) from the deployment's dedicated
``faults`` RNG stream and timestamps come from the shared simulation
clock, so a campaign replayed on an identically-seeded network produces
an identical trace.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.faults.byzantine import ByzantineBehavior
from repro.simnet.churn import apply_churn
from repro.simnet.network import SimNetwork


@dataclass(frozen=True)
class DropBurst:
    """Raise the per-hop drop probability for a window (interference).

    Overlapping bursts stack: each ``begin`` pushes its probability,
    each ``end`` removes its own entry and re-exposes whichever burst
    is still active (or the baseline), so an inner burst's end never
    clobbers an outer burst that is still running.
    """

    at: float
    duration: float
    drop_prob: float
    type: str = "drop-burst"

    def begin(self, runner: "CampaignRunner") -> None:
        runner.drop_stack.append((id(self), self.drop_prob))
        runner.net.config.drop_prob = self.drop_prob

    def end(self, runner: "CampaignRunner") -> None:
        runner.drop_stack[:] = [entry for entry in runner.drop_stack
                                if entry[0] != id(self)]
        runner.net.config.drop_prob = (runner.drop_stack[-1][1]
                                       if runner.drop_stack
                                       else runner.baseline_drop_prob)


@dataclass(frozen=True)
class FailureWave:
    """Mass failure: a fraction of the alive nodes crash at once."""

    at: float
    fraction: float
    keep_connected: bool = True
    type: str = "failure-wave"

    def begin(self, runner: "CampaignRunner") -> None:
        apply_churn(runner.net, fail_fraction=self.fraction,
                    rng=runner.rng, keep_connected=self.keep_connected,
                    protected=runner.protected)


@dataclass(frozen=True)
class JoinWave:
    """Mass arrival: a fraction of the network size joins at once."""

    at: float
    fraction: float
    type: str = "join-wave"

    def begin(self, runner: "CampaignRunner") -> None:
        apply_churn(runner.net, join_fraction=self.fraction,
                    rng=runner.rng, protected=runner.protected)


@dataclass(frozen=True)
class Partition:
    """Spatial partition: fail every node inside a band across the area.

    The band is perpendicular to ``axis`` at ``position`` (a fraction of
    the deployment side), ``width`` meters wide (default: the radio
    range, the narrowest band that actually severs geometric links).
    The partition heals after ``duration``: the band nodes revive.
    """

    at: float
    duration: float
    axis: str = "x"
    position: float = 0.5
    width: Optional[float] = None
    type: str = "partition"

    def band_nodes(self, net: SimNetwork,
                   protected: Iterable[int]) -> List[int]:
        side = net.config.side
        width = self.width if self.width is not None else net.config.radio_range
        center = self.position * side
        lo, hi = center - width / 2.0, center + width / 2.0
        coord = 0 if self.axis == "x" else 1
        skip = set(protected)
        return [node for node in net.alive_nodes()
                if node not in skip and lo <= net.position(node)[coord] <= hi]

    def begin(self, runner: "CampaignRunner") -> None:
        victims = self.band_nodes(runner.net, runner.protected)
        for node in victims:
            runner.net.fail_node(node)
        runner.net.invalidate_routes()
        runner.partition_victims[id(self)] = victims

    def end(self, runner: "CampaignRunner") -> None:
        for node in runner.partition_victims.pop(id(self), ()):
            runner.net.revive_node(node)
        runner.net.invalidate_routes()


@dataclass(frozen=True)
class StalenessWindow:
    """Membership staleness: freeze heartbeats and membership refreshes.

    The freeze is depth-counted on the runner: overlapping windows only
    thaw when the *last* one ends, so an inner window's end cannot
    silently resume refreshes under an outer window.
    """

    at: float
    duration: float
    type: str = "staleness"

    def begin(self, runner: "CampaignRunner") -> None:
        runner.staleness_depth += 1
        if runner.staleness_depth == 1:
            runner.net.suspend_neighbor_refresh()
            for membership in runner.memberships:
                membership.freeze()

    def end(self, runner: "CampaignRunner") -> None:
        runner.staleness_depth = max(0, runner.staleness_depth - 1)
        if runner.staleness_depth == 0:
            runner.net.resume_neighbor_refresh()
            for membership in runner.memberships:
                membership.thaw()


_INJECTION_TYPES = {
    "byzantine": ByzantineBehavior,
    "drop-burst": DropBurst,
    "failure-wave": FailureWave,
    "join-wave": JoinWave,
    "partition": Partition,
    "staleness": StalenessWindow,
}

Injection = Any  # any of the dataclasses above


@dataclass(frozen=True)
class FaultCampaign:
    """A named, ordered schedule of fault injections."""

    name: str
    injections: Tuple[Injection, ...]

    @property
    def duration(self) -> float:
        """Simulated time at which the last injection action happens."""
        end = 0.0
        for inj in self.injections:
            end = max(end, inj.at + getattr(inj, "duration", 0.0))
        return end

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name,
                "injections": [asdict(inj) for inj in self.injections]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultCampaign":
        injections = []
        for spec in data.get("injections", ()):
            spec = dict(spec)
            type_name = spec.pop("type", None)
            klass = _INJECTION_TYPES.get(type_name)
            if klass is None:
                raise ValueError(
                    f"unknown injection type {type_name!r}; pick from "
                    f"{sorted(_INJECTION_TYPES)}")
            injections.append(klass(**spec))
        return cls(name=str(data.get("name", "custom")),
                   injections=tuple(injections))


BUILTIN_CAMPAIGNS: Dict[str, FaultCampaign] = {
    "smoke": FaultCampaign("smoke", (
        DropBurst(at=5.0, duration=8.0, drop_prob=0.25),
        FailureWave(at=16.0, fraction=0.08),
        JoinWave(at=22.0, fraction=0.08),
        StalenessWindow(at=26.0, duration=6.0),
    )),
    "waves": FaultCampaign("waves", (
        FailureWave(at=10.0, fraction=0.1),
        FailureWave(at=30.0, fraction=0.1),
        FailureWave(at=50.0, fraction=0.1),
    )),
    "join-surge": FaultCampaign("join-surge", (
        JoinWave(at=10.0, fraction=0.15),
        JoinWave(at=25.0, fraction=0.15),
        JoinWave(at=40.0, fraction=0.15),
        JoinWave(at=55.0, fraction=0.15),
    )),
    "partition": FaultCampaign("partition", (
        Partition(at=10.0, duration=20.0, axis="x", position=0.5),
    )),
    "stress": FaultCampaign("stress", (
        DropBurst(at=5.0, duration=15.0, drop_prob=0.35),
        FailureWave(at=12.0, fraction=0.12),
        JoinWave(at=20.0, fraction=0.12),
        Partition(at=30.0, duration=15.0, axis="y", position=0.4),
        StalenessWindow(at=50.0, duration=15.0),
        FailureWave(at=58.0, fraction=0.1),
    )),
    "capture": FaultCampaign("capture", (
        ByzantineBehavior(at=1.0, duration=50.0, behavior="capture",
                          fraction=0.4, max_nodes=4),
        ByzantineBehavior(at=4.0, duration=40.0, behavior="lie",
                          fraction=0.02),
    )),
    "byzantine": FaultCampaign("byzantine", (
        ByzantineBehavior(at=2.0, duration=18.0, behavior="lie",
                          fraction=0.05),
        ByzantineBehavior(at=12.0, duration=16.0, behavior="drop",
                          fraction=0.05),
        ByzantineBehavior(at=24.0, duration=14.0, behavior="stale",
                          fraction=0.05),
        ByzantineBehavior(at=40.0, duration=14.0, behavior="capture",
                          fraction=0.3, max_nodes=3),
    )),
}


def load_campaign(name_or_path: str) -> FaultCampaign:
    """Resolve a builtin campaign name or a JSON schema file path."""
    if name_or_path in BUILTIN_CAMPAIGNS:
        return BUILTIN_CAMPAIGNS[name_or_path]
    try:
        with open(name_or_path, "r") as handle:
            return FaultCampaign.from_dict(json.load(handle))
    except FileNotFoundError:
        raise ValueError(
            f"unknown campaign {name_or_path!r}: not a builtin "
            f"({sorted(BUILTIN_CAMPAIGNS)}) and no such file")


class CampaignRunner:
    """Drives a :class:`FaultCampaign` through a live network.

    All begin/end actions are scheduled on the network's simulation
    clock at :meth:`start`; victim selection draws from the dedicated
    ``faults`` RNG stream.  Every action records a ``fault`` trace event
    (``inject``/``phase``/``index`` fields) so offline summaries show
    the campaign timeline alongside the protocol events.
    """

    def __init__(self, net: SimNetwork, campaign: FaultCampaign,
                 memberships: Sequence[Any] = (),
                 protected: Optional[Iterable[int]] = None) -> None:
        self.net = net
        self.campaign = campaign
        self.memberships = tuple(memberships)
        self.protected = set(protected or ())
        self.rng = net.rngs.stream("faults")
        self.baseline_drop_prob = net.config.drop_prob
        self.partition_victims: Dict[int, List[int]] = {}
        self.drop_stack: List[Tuple[int, float]] = []
        self.staleness_depth = 0
        self.byzantine_state: Dict[int, Any] = {}
        self.injections_applied = 0
        self._events: List[Any] = []
        self._active: List[int] = []
        self._started = False

    def start(self) -> "CampaignRunner":
        """Schedule every injection; idempotent."""
        if self._started:
            return self
        self._started = True
        now = self.net.now
        for index, inj in enumerate(self.campaign.injections):
            self._events.append(self.net.sim.schedule_at(
                max(now, inj.at), self._begin, index))
        return self

    def _begin(self, index: int) -> None:
        inj = self.campaign.injections[index]
        self.net.record_event("fault", inject=inj.type, phase="begin",
                              index=index)
        inj.begin(self)
        self.injections_applied += 1
        if hasattr(inj, "end"):
            # Track by schedule index (frozen dataclasses compare by
            # value, so identical injections would alias each other).
            # duration == 0 means "until stop()": active, no end event.
            self._active.append(index)
            if getattr(inj, "duration", 0.0) > 0:
                self._events.append(self.net.sim.schedule(
                    inj.duration, self._end, index))

    def _end(self, index: int) -> None:
        inj = self.campaign.injections[index]
        self.net.record_event("fault", inject=inj.type, phase="end",
                              index=index)
        inj.end(self)
        if index in self._active:
            self._active.remove(index)

    def stop(self) -> None:
        """Cancel pending actions and unwind still-active injections.

        Unwinding pops in reverse-begin order (LIFO), so nested
        injections restore state inside-out regardless of how their
        scheduled ends would have interleaved.
        """
        for event in self._events:
            event.cancel()
        self._events.clear()
        while self._active:
            index = self._active.pop()
            self.campaign.injections[index].end(self)

    def run_to_completion(self) -> None:
        """Advance the clock until the campaign's last action has run."""
        self.start()
        self.net.run_until(self.campaign.duration)
