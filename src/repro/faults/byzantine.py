"""Adversarial (Byzantine) replica behaviors for fault campaigns.

The crash-fault campaigns in :mod:`repro.faults.campaign` perturb the
*network*; the behaviors here corrupt the *replicas themselves*, in the
style of "The Load and Availability of Byzantine Quorum Systems"
(Malkhi et al.).  A :class:`ByzantineRegistry` hangs off the network as
``net.byzantine`` and interposes on every advertise/lookup callback in
:meth:`AccessStrategy._run_attempt` — *inside* the tracing wrappers, so
the event trace records the protocol's (deceived) view of the world:

* ``lie`` — replies to every probe with a fabricated ``(value,
  version)`` (node-salted, so two liars never corroborate each other);
  stores pass through untouched.
* ``stale`` — acknowledges stores but discards them, freezing the
  replica at its pre-attach snapshot; probes serve the frozen state.
* ``drop`` — acknowledges stores, discards them, *and* denies probes
  (returns a miss).  A silent storage black hole.
* ``capture`` — targeted quorum capture: as advertise sets form, each
  new member is captured with probability ``fraction`` (optionally for
  a single key, optionally capped at ``max_nodes`` per key); captured
  replicas serve fabricated replies for the captured key.

Detection story: ``lie``/``capture`` fabricate versions that were never
stored, tripping the ``no-fabricated-value`` watcher the moment a
fabrication wins an access; ``drop``/``stale`` silently shrink the
effective advertise quorum, tripping the sequential
``quorum-intersection`` test.  Masking quorums
(:class:`repro.core.masking.MaskingStrategy`) defeat all four provided
the per-lookup adversary count stays at or below the masking budget
``b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

#: Fabricated versions live far above anything the services hand out, so
#: a fabrication is recognisable in traces (and can never collide with a
#: legitimately stored version in tests).
FABRICATED_VERSION_BASE = 10 ** 9

BYZANTINE_BEHAVIORS = ("lie", "stale", "drop", "capture")


def fabricated_reply(node: int) -> Tuple[str, int]:
    """The ``(value, version)`` a lying replica invents.

    Salted with the node id: independent liars never agree on a value,
    so a fabrication can gather at most one vote per corrupt replica —
    the premise of the ``b + 1`` masking vote threshold.
    """
    return (f"<byz:{node}>", FABRICATED_VERSION_BASE + int(node))


class CaptureSpec:
    """State for one targeted-capture injection.

    Capture decisions are drawn lazily, at store time, from the
    campaign's dedicated ``faults`` RNG stream: each ``(key, node)``
    pair is decided at most once (re-advertising to the same replica
    does not re-roll), and ``max_nodes`` caps the captured set per key
    so a masking budget sized for the campaign stays sufficient.
    """

    def __init__(self, fraction: float, rng: Any,
                 key: Optional[str] = None,
                 max_nodes: Optional[int] = None) -> None:
        self.fraction = fraction
        self.rng = rng
        self.key = key
        self.max_nodes = max_nodes
        self._decided: Set[Tuple[Any, int]] = set()
        self.marks: Dict[Any, Set[int]] = {}

    def on_store(self, registry: "ByzantineRegistry", key: Any,
                 node: int) -> None:
        if self.key is not None and key != self.key:
            return
        if (key, node) in self._decided:
            return
        self._decided.add((key, node))
        captured = self.marks.setdefault(key, set())
        if self.max_nodes is not None and len(captured) >= self.max_nodes:
            return
        if self.rng.random() < self.fraction:
            captured.add(node)
            registry.captured.setdefault(key, set()).add(node)
            registry.net.metrics.counter("byz.captures").inc()


class ByzantineRegistry:
    """The set of currently-adversarial replicas on one network.

    Attached lazily as ``net.byzantine`` (``None`` on honest networks,
    so the access hot path pays a single attribute check).  Node modes
    are exclusive — attaching a node to a second behavior overwrites the
    first — and every wrapper preserves the ``access_key`` /
    ``access_version`` / ``access_version_of`` / ``access_vote_key``
    annotations the tracing layer and masking filter read.
    """

    def __init__(self, net: Any) -> None:
        self.net = net
        self.modes: Dict[int, str] = {}
        self.captured: Dict[Any, Set[int]] = {}
        self.capture_specs: List[CaptureSpec] = []

    @property
    def active(self) -> bool:
        return bool(self.modes or self.capture_specs)

    def attach(self, nodes: Sequence[int], mode: str) -> None:
        if mode not in ("lie", "stale", "drop"):
            raise ValueError(f"unknown byzantine node mode {mode!r}")
        for node in nodes:
            self.modes[int(node)] = mode

    def detach(self, nodes: Sequence[int], mode: str) -> None:
        for node in nodes:
            if self.modes.get(int(node)) == mode:
                del self.modes[int(node)]

    def add_capture(self, spec: CaptureSpec) -> None:
        self.capture_specs.append(spec)

    def remove_capture(self, spec: CaptureSpec) -> None:
        if spec in self.capture_specs:
            self.capture_specs.remove(spec)
        for key, nodes in spec.marks.items():
            remaining = self.captured.get(key)
            if remaining is None:
                continue
            remaining -= nodes
            if not remaining:
                del self.captured[key]
        spec.marks.clear()

    # -- access-path interposition ------------------------------------

    def wrap_store(self, store_fn: Callable[[int], Any]) -> Callable[[int], Any]:
        """Interpose on an advertise callback (ack-then-discard, capture)."""
        key = getattr(store_fn, "access_key", None)
        registry = self

        def byzantine_store(node: int) -> Any:
            mode = registry.modes.get(node)
            if mode in ("stale", "drop"):
                # Acknowledge upstream (the traced store event is still
                # recorded) but never apply the write.
                registry.net.metrics.counter("byz.stores_discarded").inc()
                return None
            result = store_fn(node)
            if key is not None and registry.capture_specs:
                for spec in registry.capture_specs:
                    spec.on_store(registry, key, node)
            return result

        byzantine_store.access_key = key
        version = getattr(store_fn, "access_version", None)
        if version is not None:
            byzantine_store.access_version = version
        return byzantine_store

    def wrap_probe(self, probe_fn: Callable[[int], Any]) -> Callable[[int], Any]:
        """Interpose on a lookup callback (fabrications, denials)."""
        key = getattr(probe_fn, "access_key", None)
        registry = self

        def byzantine_probe(node: int) -> Any:
            mode = registry.modes.get(node)
            if mode == "lie":
                registry.net.metrics.counter("byz.lies").inc()
                return fabricated_reply(node)
            if mode == "drop":
                registry.net.metrics.counter("byz.denials").inc()
                return None
            if key is not None and node in registry.captured.get(key, ()):
                registry.net.metrics.counter("byz.lies").inc()
                return fabricated_reply(node)
            return probe_fn(node)

        byzantine_probe.access_key = key
        for attr in ("access_version_of", "access_vote_key"):
            value = getattr(probe_fn, attr, None)
            if value is not None:
                setattr(byzantine_probe, attr, value)
        return byzantine_probe


def ensure_byzantine(net: Any) -> ByzantineRegistry:
    """The network's registry, created on first use."""
    registry = getattr(net, "byzantine", None)
    if registry is None:
        registry = ByzantineRegistry(net)
        net.byzantine = registry
    return registry


@dataclass(frozen=True)
class ByzantineBehavior:
    """Campaign injection: turn a fraction of replicas adversarial.

    For ``lie``/``stale``/``drop`` the victims are drawn once at
    ``begin`` from the alive non-protected nodes (``faults`` RNG
    stream); for ``capture`` the corruption is drawn lazily per
    advertise-set member (see :class:`CaptureSpec`).  ``duration = 0``
    means the behavior persists until ``CampaignRunner.stop()`` unwinds
    it; either way ``end`` restores every mark this injection made.
    """

    at: float
    behavior: str
    fraction: float = 0.1
    duration: float = 0.0
    key: Optional[str] = None
    max_nodes: Optional[int] = None
    type: str = "byzantine"

    def begin(self, runner: Any) -> None:
        if self.behavior not in BYZANTINE_BEHAVIORS:
            raise ValueError(
                f"unknown byzantine behavior {self.behavior!r}; pick from "
                f"{BYZANTINE_BEHAVIORS}")
        registry = ensure_byzantine(runner.net)
        if self.behavior == "capture":
            spec = CaptureSpec(self.fraction, runner.rng, key=self.key,
                               max_nodes=self.max_nodes)
            registry.add_capture(spec)
            runner.byzantine_state[id(self)] = spec
            runner.net.record_event("fault", inject=self.type,
                                    phase="attach", behavior=self.behavior,
                                    nodes=[])
            return
        eligible = sorted(set(runner.net.alive_nodes()) - runner.protected)
        count = min(len(eligible), max(1, round(self.fraction * len(eligible))))
        victims = sorted(runner.rng.sample(eligible, count)) if count else []
        registry.attach(victims, self.behavior)
        runner.byzantine_state[id(self)] = victims
        runner.net.record_event("fault", inject=self.type, phase="attach",
                                behavior=self.behavior, nodes=list(victims))

    def end(self, runner: Any) -> None:
        registry = getattr(runner.net, "byzantine", None)
        state = runner.byzantine_state.pop(id(self), None)
        if registry is None or state is None:
            return
        if self.behavior == "capture":
            registry.remove_capture(state)
        else:
            registry.detach(state, self.behavior)
        runner.net.record_event("fault", inject=self.type, phase="detach",
                                behavior=self.behavior)
