"""Deterministic fault-injection campaigns (robustness subsystem).

A :class:`FaultCampaign` is a seeded, declarative schedule of fault
injections — drop-probability bursts, mass-failure waves, join surges,
spatial partitions, membership-staleness windows — that a
:class:`CampaignRunner` drives through the simulation clock and the
deployment's named RNG streams, so identical seeds give identical event
traces (byte-identical at the ``repro obs summarize --json`` level).
"""

from repro.faults.campaign import (
    BUILTIN_CAMPAIGNS,
    CampaignRunner,
    DropBurst,
    FailureWave,
    FaultCampaign,
    JoinWave,
    Partition,
    StalenessWindow,
    load_campaign,
)
from repro.faults.scenario import CampaignReport, run_fault_campaign

__all__ = [
    "BUILTIN_CAMPAIGNS",
    "CampaignReport",
    "CampaignRunner",
    "DropBurst",
    "FailureWave",
    "FaultCampaign",
    "JoinWave",
    "Partition",
    "StalenessWindow",
    "load_campaign",
    "run_fault_campaign",
]
