"""Deterministic fault-injection campaigns (robustness subsystem).

A :class:`FaultCampaign` is a seeded, declarative schedule of fault
injections — drop-probability bursts, mass-failure waves, join surges,
spatial partitions, membership-staleness windows, and adversarial
(Byzantine) replica behaviors — that a :class:`CampaignRunner` drives
through the simulation clock and the deployment's named RNG streams, so
identical seeds give identical event traces (byte-identical at the
``repro obs summarize --json`` level).
"""

from repro.faults.byzantine import (
    BYZANTINE_BEHAVIORS,
    ByzantineBehavior,
    ByzantineRegistry,
    CaptureSpec,
    ensure_byzantine,
    fabricated_reply,
)
from repro.faults.campaign import (
    BUILTIN_CAMPAIGNS,
    CampaignRunner,
    DropBurst,
    FailureWave,
    FaultCampaign,
    JoinWave,
    Partition,
    StalenessWindow,
    load_campaign,
)
from repro.faults.scenario import (
    CampaignReport,
    KVCampaignReport,
    run_fault_campaign,
    run_kv_fault_campaign,
)

__all__ = [
    "BUILTIN_CAMPAIGNS",
    "BYZANTINE_BEHAVIORS",
    "ByzantineBehavior",
    "ByzantineRegistry",
    "CampaignReport",
    "CampaignRunner",
    "KVCampaignReport",
    "CaptureSpec",
    "DropBurst",
    "FailureWave",
    "FaultCampaign",
    "JoinWave",
    "Partition",
    "StalenessWindow",
    "ensure_byzantine",
    "fabricated_reply",
    "load_campaign",
    "run_fault_campaign",
    "run_kv_fault_campaign",
]
