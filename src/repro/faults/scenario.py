"""End-to-end fault-campaign scenario (the ``repro faults run`` command).

Builds a seeded deployment — RANDOM advertise / UNIQUE-PATH lookup with
an :class:`~repro.core.strategies.AccessPolicy` retry envelope, a
location service with bystander caching, and an (optionally adaptive)
refresh daemon — then runs a lookup workload while a
:class:`~repro.faults.campaign.CampaignRunner` injects the campaign's
faults.  Everything is keyed off the single master seed, so two runs
with the same arguments produce byte-identical trace summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.core.biquorum import ProbabilisticBiquorum
from repro.core.strategies import AccessPolicy, RandomStrategy, UniquePathStrategy
from repro.faults.campaign import CampaignRunner, FaultCampaign, load_campaign
from repro.membership.service import RandomMembership
from repro.services.location import LocationService
from repro.services.maintenance import RefreshDaemon
from repro.simnet.network import NetworkConfig, SimNetwork


@dataclass
class CampaignReport:
    """What a fault-campaign run did and how the service held up."""

    campaign: str
    n_initial: int
    n_final: int
    seed: int
    sim_time: float
    injections_applied: int
    advertises: int
    lookups: int
    hits: int
    retries: int
    deadline_misses: int
    failures: int
    joins: int
    revives: int
    refresh_rounds: int
    refresh_lost: int
    refresh_interval_updates: int
    refresh_interval: Optional[float]
    #: Live watcher outcome (``--watch``); None when watchers were off.
    watch: Optional[dict] = None
    watch_violations: List[Any] = field(default_factory=list)
    #: Masking-mode extras (``masking_b is not None``): reads the vote
    #: filter rejected, and reads that returned a wrong value (ground
    #: truth known to the scenario) — the Byzantine safety headline.
    masking_b: Optional[int] = None
    masked_lookups: int = 0
    corrupt_reads: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def watch_clean(self) -> Optional[bool]:
        return None if self.watch is None else not self.watch_violations

    def lines(self) -> list:
        return [
            f"campaign {self.campaign}: n={self.n_initial}->{self.n_final} "
            f"seed={self.seed} sim_time={self.sim_time:.4g}s "
            f"injections={self.injections_applied}",
            f"workload: advertises={self.advertises} lookups={self.lookups} "
            f"hits={self.hits} hit_ratio={self.hit_ratio:.3f}",
            f"policy: retries={self.retries} "
            f"deadline_misses={self.deadline_misses}",
            f"churn: failures={self.failures} joins={self.joins} "
            f"revives={self.revives}",
            f"refresh: rounds={self.refresh_rounds} lost={self.refresh_lost} "
            f"interval_updates={self.refresh_interval_updates}"
            + (f" interval={self.refresh_interval:.4g}s"
               if self.refresh_interval is not None else ""),
        ] + ([] if self.masking_b is None else [
            f"masking: b={self.masking_b} masked={self.masked_lookups} "
            f"corrupt_reads={self.corrupt_reads}",
        ]) + ([] if self.watch is None else [
            f"watch: events={self.watch.get('events', 0)} "
            f"violations={len(self.watch_violations)} "
            + ("CLEAN" if self.watch_clean else "VIOLATED"),
        ])


def run_fault_campaign(
    campaign: "FaultCampaign | str" = "smoke",
    n: int = 100,
    seed: int = 7,
    n_keys: int = 10,
    n_lookups: int = 60,
    avg_degree: float = 10.0,
    duration: Optional[float] = None,
    refresh: str = "adaptive",          # "adaptive" | "static" | "off"
    refresh_interval: float = 20.0,
    epsilon: float = 0.05,
    min_intersection: float = 0.9,
    policy: Optional[AccessPolicy] = AccessPolicy(
        deadline=5.0, max_retries=2),
    watch: bool = False,
    slo_specs: Optional[list] = None,
    masking_b: Optional[int] = None,
) -> CampaignReport:
    """Run the workload-under-faults scenario; returns a report.

    ``watch=True`` attaches every builtin invariant watcher (see
    :mod:`repro.obs.watch`) to the live trace stream; ``slo_specs``
    additionally evaluates SLO specs via a live
    :class:`~repro.obs.slo.SloMonitor`.  The report then carries the
    hub's result (``report.watch`` / ``report.watch_violations``).

    ``masking_b`` switches the deployment to masking quorums: lookups
    run a :class:`~repro.core.masking.MaskingStrategy` over RANDOM
    (every probe reply needs ``b + 1`` corroborating votes) and both
    quorum sides are sized per the hypergeometric masking bound — the
    defended configuration for campaigns with Byzantine behaviors.
    """
    if isinstance(campaign, str):
        campaign = load_campaign(campaign)
    if refresh not in ("adaptive", "static", "off"):
        raise ValueError("refresh must be adaptive, static, or off")
    if duration is None:
        duration = campaign.duration + 10.0

    net = SimNetwork(NetworkConfig(n=n, avg_degree=avg_degree, seed=seed))
    hub = None
    if watch or slo_specs:
        from repro.obs.watch import attach_watchers, builtin_watchers
        watchers = builtin_watchers(n=net.n_alive) if watch else []
        hub = attach_watchers(net, watchers=watchers, slo_specs=slo_specs)
    if masking_b is not None:
        from repro.analysis.intersection import masking_quorum_size
        from repro.core.masking import MaskingStrategy
        size = masking_quorum_size(n, epsilon, masking_b)
        # Masking quorums outgrow the paper's 2*sqrt(n) partial views;
        # widen the membership view so quorums are not silently capped.
        view = max(size, int(round(2.0 * math.sqrt(n))))
        membership = RandomMembership(net, view_size=view)
        advertise = RandomStrategy(membership).set_policy(policy)
        lookup = MaskingStrategy(
            RandomStrategy(membership), masking_b).set_policy(policy)
    else:
        size = max(1, int(round(math.sqrt(n * math.log(1.0 / epsilon)))))
        membership = RandomMembership(net)
        advertise = RandomStrategy(membership).set_policy(policy)
        lookup = UniquePathStrategy().set_policy(policy)
    biquorum = ProbabilisticBiquorum(
        net, advertise=advertise, lookup=lookup,
        advertise_size=size, lookup_size=size,
        adjust_to_network_size=False)
    service = LocationService(biquorum, enable_caching=True)

    daemon: Optional[RefreshDaemon] = None
    if refresh != "off":
        daemon = RefreshDaemon(
            service, interval=refresh_interval,
            epsilon=epsilon, min_intersection=min_intersection,
            adaptive=(refresh == "adaptive"))

    wrng = net.rngs.stream("workload")
    keys = [f"key-{i}" for i in range(n_keys)]
    advertises = 0
    for key in keys:
        origin = net.random_alive_node(wrng)
        service.advertise(origin, key, f"value-of-{key}")
        advertises += 1

    runner = CampaignRunner(net, campaign,
                            memberships=(membership,)).start()

    start = net.now
    step = duration / max(1, n_lookups)
    lookups = hits = masked = corrupt = 0
    for i in range(n_lookups):
        net.run_until(start + i * step)
        looker = net.random_alive_node(wrng)
        key = wrng.choice(keys)
        receipt = service.lookup(looker, key)
        lookups += 1
        if receipt.found:
            hits += 1
            if receipt.value != f"value-of-{key}":
                corrupt += 1
        elif receipt.access is not None and getattr(
                receipt.access, "masked", False):
            masked += 1
    net.run_until(start + duration)

    runner.stop()
    if daemon is not None:
        daemon.stop()
    membership.stop()
    watch_result = None
    watch_violations: List[Any] = []
    if hub is not None:
        hub.finish()
        hub.detach()
        watch_result = hub.result()
        watch_violations = list(hub.violations)

    metrics = net.metrics
    return CampaignReport(
        campaign=campaign.name,
        n_initial=n,
        n_final=net.n_alive,
        seed=seed,
        sim_time=net.now,
        injections_applied=runner.injections_applied,
        advertises=advertises,
        lookups=lookups,
        hits=hits,
        retries=metrics.counter_value("access.retries"),
        deadline_misses=metrics.counter_value("access.deadline_misses"),
        failures=metrics.counter_value("churn.failures"),
        joins=metrics.counter_value("churn.joins"),
        revives=metrics.counter_value("churn.revives"),
        refresh_rounds=daemon.stats.rounds if daemon else 0,
        refresh_lost=daemon.stats.lost if daemon else 0,
        refresh_interval_updates=(daemon.stats.interval_updates
                                  if daemon else 0),
        refresh_interval=daemon.interval if daemon else None,
        watch=watch_result,
        watch_violations=watch_violations,
        masking_b=masking_b,
        masked_lookups=masked,
        corrupt_reads=corrupt,
    )


@dataclass
class KVCampaignReport:
    """A kv workload run under a fault campaign, with its history check."""

    campaign: str
    n_initial: int
    n_final: int
    seed: int
    sim_time: float
    injections_applied: int
    stats: Any                      # KVRunStats from the workload engine
    failures: int
    joins: int
    revives: int
    lease_reclaimed: int            # lazily dropped expired entries
    lease_ttl: float                # store's TTL at campaign end
    masking_b: Optional[int] = None
    watch: Optional[dict] = None
    watch_violations: List[Any] = field(default_factory=list)

    @property
    def consistency(self) -> Any:
        return self.stats.report

    @property
    def clean(self) -> bool:
        return self.consistency.clean

    @property
    def watch_clean(self) -> Optional[bool]:
        return None if self.watch is None else not self.watch_violations

    def lines(self) -> list:
        out = [
            f"campaign {self.campaign}: n={self.n_initial}->{self.n_final} "
            f"seed={self.seed} sim_time={self.sim_time:.4g}s "
            f"injections={self.injections_applied}",
            f"kv workload: ops={self.stats.ops} reads={self.stats.reads} "
            f"writes={self.stats.writes} "
            f"cas={self.stats.cas_successes}/{self.stats.cas_attempts}",
            f"service: p50={self.stats.p50:.4g}s p99={self.stats.p99:.4g}s "
            f"availability={self.stats.availability:.3f} "
            f"stale_fraction={self.stats.stale_fraction:.4f}",
            f"leases: ttl={self.lease_ttl:.4g}s "
            f"reclaimed={self.lease_reclaimed}",
            f"churn: failures={self.failures} joins={self.joins} "
            f"revives={self.revives}",
        ]
        out.extend(self.consistency.lines())
        if self.masking_b is not None:
            out.append(f"masking: b={self.masking_b}")
        if self.watch is not None:
            out.append(
                f"watch: events={self.watch.get('events', 0)} "
                f"violations={len(self.watch_violations)} "
                + ("CLEAN" if self.watch_clean else "VIOLATED"))
        return out


def run_kv_fault_campaign(
    campaign: "FaultCampaign | str" = "smoke",
    n: int = 100,
    seed: int = 7,
    n_keys: int = 10,
    n_ops: int = 200,
    avg_degree: float = 10.0,
    duration: Optional[float] = None,
    lease_ttl: Optional[float] = None,
    min_survival: float = 0.9,
    read_fraction: float = 0.8,
    cas_fraction: float = 0.1,
    zipf_s: float = 0.99,
    epsilon: float = 0.05,
    policy: Optional[AccessPolicy] = AccessPolicy(
        deadline=5.0, max_retries=2),
    watch: bool = False,
    slo_specs: Optional[list] = None,
    masking_b: Optional[int] = None,
) -> KVCampaignReport:
    """Drive the quorum kv store through a fault campaign.

    The open-loop workload engine spreads ``n_ops`` over the campaign's
    duration while the :class:`CampaignRunner` injects faults; the
    store's :class:`~repro.services.consistency.KVHistoryChecker`
    verifies every completed op against the per-key sequential spec.
    ``lease_ttl=None`` runs the store in adaptive mode — the TTL is
    re-derived from the committed churn counters before every store,
    so lease windows shrink as the campaign turns up the churn.
    """
    from repro.services.consistency import KVHistoryChecker
    from repro.services.kvstore import QuorumKVStore
    from repro.experiments.workload import (
        WorkloadSpec,
        run_workload_sequential,
    )

    if isinstance(campaign, str):
        campaign = load_campaign(campaign)
    if duration is None:
        duration = campaign.duration + 10.0

    net = SimNetwork(NetworkConfig(n=n, avg_degree=avg_degree, seed=seed))
    hub = None
    if watch or slo_specs:
        from repro.obs.watch import attach_watchers, builtin_watchers
        # The quorum-intersection watcher's hit floor assumes stored
        # entries answer forever; timed leases expire them on purpose,
        # so that invariant does not apply to the kv workload.
        watchers = (builtin_watchers(
            n=net.n_alive,
            names=["monotonicity", "conservation", "no-fabricated-value"])
            if watch else [])
        hub = attach_watchers(net, watchers=watchers, slo_specs=slo_specs)
    if masking_b is not None:
        from repro.analysis.intersection import masking_quorum_size
        from repro.core.masking import MaskingStrategy
        size = masking_quorum_size(n, epsilon, masking_b)
        view = max(size, int(round(2.0 * math.sqrt(n))))
        membership = RandomMembership(net, view_size=view)
        advertise = RandomStrategy(membership).set_policy(policy)
        lookup = MaskingStrategy(
            RandomStrategy(membership), masking_b).set_policy(policy)
    else:
        size = max(1, int(round(math.sqrt(n * math.log(1.0 / epsilon)))))
        membership = RandomMembership(net)
        advertise = RandomStrategy(membership).set_policy(policy)
        lookup = RandomStrategy(membership).set_policy(policy)
    biquorum = ProbabilisticBiquorum(
        net, advertise=advertise, lookup=lookup,
        advertise_size=size, lookup_size=size,
        adjust_to_network_size=False)
    store = QuorumKVStore(
        biquorum, lease_ttl=lease_ttl, min_survival=min_survival,
        adaptive=(lease_ttl is None), checker=KVHistoryChecker())

    runner = CampaignRunner(net, campaign,
                            memberships=(membership,)).start()

    spec = WorkloadSpec(
        ops=n_ops, n_keys=n_keys, read_fraction=read_fraction,
        cas_fraction=cas_fraction, zipf_s=zipf_s,
        arrival_rate=max(n_ops / duration, 1e-9), seed=seed)
    start = net.now
    stats = run_workload_sequential(store, spec)
    net.run_until(start + duration)

    runner.stop()
    membership.stop()
    watch_result = None
    watch_violations: List[Any] = []
    if hub is not None:
        hub.finish()
        hub.detach()
        watch_result = hub.result()
        watch_violations = list(hub.violations)

    metrics = net.metrics
    return KVCampaignReport(
        campaign=campaign.name,
        n_initial=n,
        n_final=net.n_alive,
        seed=seed,
        sim_time=net.now,
        injections_applied=runner.injections_applied,
        stats=stats,
        failures=metrics.counter_value("churn.failures"),
        joins=metrics.counter_value("churn.joins"),
        revives=metrics.counter_value("churn.revives"),
        lease_reclaimed=metrics.counter_value("kv.lease.reclaimed"),
        lease_ttl=store.current_ttl(),
        masking_b=masking_b,
        watch=watch_result,
        watch_violations=watch_violations,
    )
