"""Node mobility models.

The paper's simulations use the Random Waypoint model (Section 2.4): each
node repeatedly picks a uniform destination in the area, moves to it at a
speed drawn uniformly from ``[min_speed, max_speed]``, then pauses (30 s on
average).  Positions are evaluated lazily: a node's trajectory is a sequence
of linear legs, and ``position_at(t)`` interpolates inside the current leg,
so mobility costs nothing between queries.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.geometry.space import Point


@dataclass
class Leg:
    """Linear motion from ``p0`` at time ``t0`` to ``p1`` at time ``t1``.

    A pause is a leg with ``p0 == p1``.
    """

    t0: float
    p0: Point
    t1: float
    p1: Point

    def position_at(self, t: float) -> Point:
        if t >= self.t1 or self.t1 <= self.t0:
            return self.p1
        if t <= self.t0:
            return self.p0
        frac = (t - self.t0) / (self.t1 - self.t0)
        return (
            self.p0[0] + frac * (self.p1[0] - self.p0[0]),
            self.p0[1] + frac * (self.p1[1] - self.p0[1]),
        )


class MobilityModel(ABC):
    """Produces an initial position and subsequent legs for each node."""

    @abstractmethod
    def initial_position(self, node_id: int) -> Point:
        """Starting position of ``node_id``."""

    @abstractmethod
    def next_leg(self, node_id: int, t: float, pos: Point) -> Leg:
        """The leg beginning at time ``t`` from position ``pos``."""


class StaticPlacement(MobilityModel):
    """Uniform random placement; nodes never move."""

    def __init__(self, side: float, rng: Optional[random.Random] = None) -> None:
        if side <= 0:
            raise ValueError("side must be positive")
        self.side = side
        self._rng = rng or random.Random()

    def initial_position(self, node_id: int) -> Point:
        return (self._rng.uniform(0, self.side), self._rng.uniform(0, self.side))

    def next_leg(self, node_id: int, t: float, pos: Point) -> Leg:
        return Leg(t0=t, p0=pos, t1=math.inf, p1=pos)


class FixedPlacement(MobilityModel):
    """Static model with externally supplied positions (e.g. from an RGG)."""

    def __init__(self, positions: List[Point]) -> None:
        self._positions = list(positions)

    def initial_position(self, node_id: int) -> Point:
        return self._positions[node_id]

    def next_leg(self, node_id: int, t: float, pos: Point) -> Leg:
        return Leg(t0=t, p0=pos, t1=math.inf, p1=pos)


class RandomWaypoint(MobilityModel):
    """Random Waypoint with uniform speed and constant-mean pause.

    Defaults follow the paper: speeds 0.5–2 m/s (walking) and 30 s pauses.
    ``max_speed`` overrides both bounds for the fast-mobility experiments
    (2/5/10/20 m/s, Figures 13–14) which vary the maximum speed.
    """

    def __init__(
        self,
        side: float,
        min_speed: float = 0.5,
        max_speed: float = 2.0,
        pause_time: float = 30.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if side <= 0:
            raise ValueError("side must be positive")
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError("need 0 < min_speed <= max_speed")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self.side = side
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_time = pause_time
        self._rng = rng or random.Random()
        # Alternate pause / move legs per node.
        self._pausing: Dict[int, bool] = {}

    def initial_position(self, node_id: int) -> Point:
        return (self._rng.uniform(0, self.side), self._rng.uniform(0, self.side))

    def next_leg(self, node_id: int, t: float, pos: Point) -> Leg:
        if self._pausing.get(node_id, False) and self.pause_time > 0:
            self._pausing[node_id] = False
            return Leg(t0=t, p0=pos, t1=t + self.pause_time, p1=pos)
        dest = (self._rng.uniform(0, self.side), self._rng.uniform(0, self.side))
        speed = self._rng.uniform(self.min_speed, self.max_speed)
        dist = math.hypot(dest[0] - pos[0], dest[1] - pos[1])
        duration = dist / speed if speed > 0 else math.inf
        self._pausing[node_id] = True
        return Leg(t0=t, p0=pos, t1=t + duration, p1=dest)


class MobilityManager:
    """Tracks every node's current leg and answers position queries.

    Nodes may be added (joins) and removed (failures/leaves) at runtime,
    supporting the churn experiments.
    """

    def __init__(self, model: MobilityModel) -> None:
        self.model = model
        self._legs: Dict[int, Leg] = {}

    def add_node(self, node_id: int, t: float = 0.0,
                 position: Optional[Point] = None) -> Point:
        pos = position if position is not None else self.model.initial_position(node_id)
        self._legs[node_id] = self.model.next_leg(node_id, t, pos)
        return pos

    def remove_node(self, node_id: int) -> None:
        self._legs.pop(node_id, None)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._legs

    def node_ids(self) -> List[int]:
        return list(self._legs.keys())

    def position_at(self, node_id: int, t: float) -> Point:
        """Position of ``node_id`` at time ``t`` (advances legs lazily)."""
        leg = self._legs[node_id]
        while t > leg.t1 and math.isfinite(leg.t1):
            leg = self.model.next_leg(node_id, leg.t1, leg.p1)
            self._legs[node_id] = leg
        return leg.position_at(t)

    def snapshot(self, t: float) -> Dict[int, Point]:
        """All node positions at time ``t``."""
        return {nid: self.position_at(nid, t) for nid in list(self._legs)}


def average_nodal_speed(model: RandomWaypoint, samples: int = 10000,
                        rng: Optional[random.Random] = None) -> float:
    """Monte-Carlo mean speed of a waypoint leg (excluding pauses).

    Useful when calibrating refresh intervals against mobility (Section 6.2).
    """
    rng = rng or random.Random(0)
    total = 0.0
    for _ in range(samples):
        total += rng.uniform(model.min_speed, model.max_speed)
    return total / samples
