"""Mobility substrate: waypoint trajectories and lazy position tracking."""

from repro.mobility.models import (
    FixedPlacement,
    Leg,
    MobilityManager,
    MobilityModel,
    RandomWaypoint,
    StaticPlacement,
    average_nodal_speed,
)

__all__ = [
    "FixedPlacement",
    "Leg",
    "MobilityManager",
    "MobilityModel",
    "RandomWaypoint",
    "StaticPlacement",
    "average_nodal_speed",
]
