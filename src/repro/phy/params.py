"""Radio parameters (the paper's Figure 2, PHY section).

All power thresholds are reproduced verbatim.  The derived quantities
(200 m ideal reception range, 299 m carrier-sensing range) follow from the
two-ray ground model at 2.4 GHz with 1.5 m antennas — see
``repro.phy.pathloss`` for the calibration check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def dbm_to_mw(dbm: float) -> float:
    """Convert dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert milliwatts to dBm."""
    if mw <= 0:
        raise ValueError("power must be positive to express in dBm")
    return 10.0 * math.log10(mw)


SPEED_OF_LIGHT = 2.998e8  # m/s


@dataclass(frozen=True)
class PhyParams:
    """802.11b-style PHY parameters (paper defaults)."""

    tx_power_dbm: float = 15.0           # 31.62 mW
    rx_thresh_dbm: float = -71.0         # reception threshold (RXThresh)
    cs_thresh_dbm: float = -77.0         # carrier-sense threshold (CSThresh)
    noise_dbm: float = -101.0            # thermal background noise
    sinr_thresh: float = 10.0            # beta (CPThresh), linear ratio
    frequency_hz: float = 2.4e9
    antenna_height_m: float = 1.5
    antenna_gain_dbi: float = 0.0
    unicast_rate_bps: float = 11e6       # 11 Mbps unicast
    broadcast_rate_bps: float = 2e6      # 2 Mbps broadcast
    ideal_range_m: float = 200.0
    carrier_sense_range_m: float = 299.0

    @property
    def tx_power_mw(self) -> float:
        return dbm_to_mw(self.tx_power_dbm)

    @property
    def rx_thresh_mw(self) -> float:
        return dbm_to_mw(self.rx_thresh_dbm)

    @property
    def cs_thresh_mw(self) -> float:
        return dbm_to_mw(self.cs_thresh_dbm)

    @property
    def noise_mw(self) -> float:
        return dbm_to_mw(self.noise_dbm)

    @property
    def wavelength_m(self) -> float:
        return SPEED_OF_LIGHT / self.frequency_hz

    def tx_duration(self, payload_bytes: int, broadcast: bool = False,
                    overhead_bytes: int = 58) -> float:
        """Airtime of a frame (payload + IP/MAC/PHY headers, Section 2.4)."""
        bits = 8 * (payload_bytes + overhead_bytes)
        rate = self.broadcast_rate_bps if broadcast else self.unicast_rate_bps
        return bits / rate


DEFAULT_PHY = PhyParams()
