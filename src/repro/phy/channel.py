"""Wireless channel models.

Two receivers are implemented, mirroring Section 2.3 of the paper:

* ``SINRChannel`` — the *physical model*: a frame is decoded iff its
  received power clears RXThresh and the signal-to-interference-plus-noise
  ratio clears beta, with cumulative interference from every overlapping
  transmission plus thermal noise (the "RadioNoiseAdditive" model of
  JiST/SWANS, with capture effect).
* ``ProtocolChannel`` — the *protocol model*: a frame from X_i is received
  by X_j iff |X_i - X_j| <= r and no other simultaneous transmitter X_k has
  |X_k - X_j| <= (1 + delta) * r.

Both are half-duplex: a node transmitting during any part of a frame's
airtime cannot receive that frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Protocol

from repro.geometry.space import Point
from repro.phy.params import PhyParams
from repro.phy.pathloss import PathLossModel, default_pathloss
from repro.sim.kernel import Simulator


class NodeEnvironment(Protocol):
    """What the channel needs to know about the deployed nodes."""

    def position_of(self, node_id: int) -> Point:
        """Current position of a node."""
        ...

    def nodes_near(self, pos: Point, radius: float) -> List[int]:
        """Ids of alive nodes within ``radius`` of ``pos``."""
        ...

    def is_alive(self, node_id: int) -> bool:
        """Whether the node is powered on."""
        ...

    def distance(self, a: Point, b: Point) -> float:
        """Distance respecting the deployment metric (plane or torus)."""
        ...


@dataclass
class Transmission:
    """An in-flight (or recently completed) frame on the air."""

    tx_id: int
    sender: int
    sender_pos: Point
    start: float
    end: float
    power_mw: float
    frame: Any


FrameCallback = Callable[[int, Any, float], None]
# (receiver_id, frame, rx_power_mw) -> None


class SINRChannel:
    """Cumulative-noise SINR channel with capture effect.

    Reception is evaluated at the end of each frame's airtime: the frame is
    delivered to every alive node within hearing distance whose SINR
    (signal / (thermal noise + sum of overlapping interferers)) is at least
    ``params.sinr_thresh`` and whose received power is at least RXThresh.
    """

    def __init__(
        self,
        sim: Simulator,
        env: NodeEnvironment,
        params: Optional[PhyParams] = None,
        pathloss: Optional[PathLossModel] = None,
    ) -> None:
        self.sim = sim
        self.env = env
        self.params = params or PhyParams()
        self.pathloss = pathloss or default_pathloss(self.params)
        self._receivers: Dict[int, FrameCallback] = {}
        self._active: List[Transmission] = []
        self._history: List[Transmission] = []
        self._next_tx_id = 0
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost_collision = 0
        self.frames_lost_weak = 0

    def attach(self, node_id: int, on_frame: FrameCallback) -> None:
        """Register a node's receive callback."""
        self._receivers[node_id] = on_frame

    def detach(self, node_id: int) -> None:
        self._receivers.pop(node_id, None)

    # -- carrier sensing -------------------------------------------------

    def carrier_busy(self, node_id: int) -> bool:
        """True if cumulative on-air power at the node clears CSThresh."""
        now = self.sim.now
        self._prune(now)
        if not self._active:
            return False
        pos = self.env.position_of(node_id)
        total = 0.0
        for tx in self._active:
            if tx.end <= now or tx.sender == node_id:
                continue
            dist = self.env.distance(tx.sender_pos, pos)
            total += self.pathloss.received_power_mw(tx.power_mw, dist)
            if total >= self.params.cs_thresh_mw:
                return True
        return False

    def is_transmitting(self, node_id: int) -> bool:
        now = self.sim.now
        return any(tx.sender == node_id and tx.end > now for tx in self._active)

    # -- transmission ----------------------------------------------------

    def transmit(self, sender: int, frame: Any, duration: float) -> Transmission:
        """Put a frame on the air; reception resolves after ``duration``."""
        now = self.sim.now
        self._prune(now)
        tx = Transmission(
            tx_id=self._next_tx_id,
            sender=sender,
            sender_pos=self.env.position_of(sender),
            start=now,
            end=now + duration,
            power_mw=self.params.tx_power_mw,
            frame=frame,
        )
        self._next_tx_id += 1
        self._active.append(tx)
        self._history.append(tx)
        self.frames_sent += 1
        self.sim.schedule(duration, self._resolve, tx)
        return tx

    def _prune(self, now: float) -> None:
        if len(self._history) > 4096:
            horizon = now - 10.0
            self._history = [t for t in self._history if t.end >= horizon]
        self._active = [t for t in self._active if t.end > now]

    def _overlapping(self, tx: Transmission) -> List[Transmission]:
        return [
            other
            for other in self._history
            if other.tx_id != tx.tx_id
            and other.start < tx.end
            and other.end > tx.start
        ]

    def _resolve(self, tx: Transmission) -> None:
        """Deliver the frame to every receiver whose SINR clears beta."""
        hearing_range = self.params.carrier_sense_range_m * 1.5
        interferers = self._overlapping(tx)
        busy_senders = {o.sender for o in interferers} | {tx.sender}
        candidates = self.env.nodes_near(tx.sender_pos, hearing_range)
        for rx in candidates:
            if rx == tx.sender or rx not in self._receivers:
                continue
            if not self.env.is_alive(rx):
                continue
            if rx in busy_senders:
                # Half duplex: a node transmitting during the frame misses it.
                continue
            rx_pos = self.env.position_of(rx)
            signal = self.pathloss.received_power_mw(
                tx.power_mw, self.env.distance(tx.sender_pos, rx_pos)
            )
            if signal < self.params.rx_thresh_mw:
                self.frames_lost_weak += 1
                continue
            interference = 0.0
            for other in interferers:
                interference += self.pathloss.received_power_mw(
                    other.power_mw, self.env.distance(other.sender_pos, rx_pos)
                )
            sinr = signal / (self.params.noise_mw + interference)
            if sinr < self.params.sinr_thresh:
                self.frames_lost_collision += 1
                continue
            self.frames_delivered += 1
            self._receivers[rx](rx, tx.frame, signal)


class ProtocolChannel:
    """Unit-disk protocol-model channel (Section 2.3).

    A frame reaches every alive node within ``range_m``, unless another
    simultaneous transmitter sits within ``(1 + delta) * range_m`` of that
    receiver (interference), in which case the frame is lost at that
    receiver.
    """

    def __init__(
        self,
        sim: Simulator,
        env: NodeEnvironment,
        range_m: float = 200.0,
        delta: float = 0.0,
        params: Optional[PhyParams] = None,
    ) -> None:
        if range_m <= 0:
            raise ValueError("range must be positive")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.sim = sim
        self.env = env
        self.range_m = range_m
        self.delta = delta
        self.params = params or PhyParams()
        self._receivers: Dict[int, FrameCallback] = {}
        self._active: List[Transmission] = []
        self._history: List[Transmission] = []
        self._next_tx_id = 0
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost_collision = 0
        self.frames_lost_weak = 0

    def attach(self, node_id: int, on_frame: FrameCallback) -> None:
        self._receivers[node_id] = on_frame

    def detach(self, node_id: int) -> None:
        self._receivers.pop(node_id, None)

    def carrier_busy(self, node_id: int) -> bool:
        now = self.sim.now
        self._prune(now)
        pos = self.env.position_of(node_id)
        sense_range = self.range_m * (1.0 + self.delta)
        for tx in self._active:
            if tx.sender == node_id or tx.end <= now:
                continue
            if self.env.distance(tx.sender_pos, pos) <= sense_range:
                return True
        return False

    def is_transmitting(self, node_id: int) -> bool:
        now = self.sim.now
        return any(tx.sender == node_id and tx.end > now for tx in self._active)

    def transmit(self, sender: int, frame: Any, duration: float) -> Transmission:
        now = self.sim.now
        self._prune(now)
        tx = Transmission(
            tx_id=self._next_tx_id,
            sender=sender,
            sender_pos=self.env.position_of(sender),
            start=now,
            end=now + duration,
            power_mw=self.params.tx_power_mw,
            frame=frame,
        )
        self._next_tx_id += 1
        self._active.append(tx)
        self._history.append(tx)
        self.frames_sent += 1
        self.sim.schedule(duration, self._resolve, tx)
        return tx

    def _prune(self, now: float) -> None:
        if len(self._history) > 4096:
            horizon = now - 10.0
            self._history = [t for t in self._history if t.end >= horizon]
        self._active = [t for t in self._active if t.end > now]

    def _resolve(self, tx: Transmission) -> None:
        interferers = [
            o for o in self._history
            if o.tx_id != tx.tx_id and o.start < tx.end and o.end > tx.start
        ]
        busy_senders = {o.sender for o in interferers} | {tx.sender}
        guard = self.range_m * (1.0 + self.delta)
        for rx in self.env.nodes_near(tx.sender_pos, self.range_m):
            if rx == tx.sender or rx not in self._receivers:
                continue
            if not self.env.is_alive(rx) or rx in busy_senders:
                continue
            rx_pos = self.env.position_of(rx)
            collided = any(
                self.env.distance(o.sender_pos, rx_pos) <= guard
                for o in interferers
            )
            if collided:
                self.frames_lost_collision += 1
                continue
            self.frames_delivered += 1
            self._receivers[rx](rx, tx.frame, self.params.rx_thresh_mw)
