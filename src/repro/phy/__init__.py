"""Radio substrate: parameters, path loss, SINR and protocol-model channels."""

from repro.phy.channel import (
    NodeEnvironment,
    ProtocolChannel,
    SINRChannel,
    Transmission,
)
from repro.phy.params import DEFAULT_PHY, PhyParams, dbm_to_mw, mw_to_dbm
from repro.phy.pathloss import (
    FreeSpace,
    InversePowerLaw,
    PathLossModel,
    TwoRayGround,
    default_pathloss,
)

__all__ = [
    "NodeEnvironment",
    "ProtocolChannel",
    "SINRChannel",
    "Transmission",
    "DEFAULT_PHY",
    "PhyParams",
    "dbm_to_mw",
    "mw_to_dbm",
    "FreeSpace",
    "InversePowerLaw",
    "PathLossModel",
    "TwoRayGround",
    "default_pathloss",
]
