"""Signal propagation (path loss) models.

The paper's signal propagation model is Two-Ray ground reflection
(Figure 2).  At the paper's parameters (2.4 GHz, 1.5 m antennas, 15 dBm TX)
this model puts the free-space/two-ray crossover at ~226 m, so:

* received power at 200 m  = -71.0 dBm  (exactly RXThresh -> 200 m ideal range)
* received power at 299 m  = -77.0 dBm  (exactly CSThresh -> 299 m CS range)

i.e. the paper's derived ranges fall out of this model with no fudging.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.phy.params import PhyParams, dbm_to_mw


class PathLossModel(ABC):
    """Maps (transmit power, distance) to received power, in milliwatts."""

    @abstractmethod
    def received_power_mw(self, tx_power_mw: float, distance_m: float) -> float:
        """Received power at ``distance_m`` for the given transmit power."""

    def range_for_threshold(self, tx_power_mw: float, thresh_mw: float,
                            hi: float = 1e5) -> float:
        """Largest distance at which received power >= threshold (bisection)."""
        lo = 1e-3
        if self.received_power_mw(tx_power_mw, lo) < thresh_mw:
            return 0.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.received_power_mw(tx_power_mw, mid) >= thresh_mw:
                lo = mid
            else:
                hi = mid
        return lo


@dataclass(frozen=True)
class FreeSpace(PathLossModel):
    """Friis free-space model: Pr = Pt * Gt * Gr * lambda^2 / (4 pi d)^2."""

    wavelength_m: float
    gain: float = 1.0

    def received_power_mw(self, tx_power_mw: float, distance_m: float) -> float:
        if distance_m <= 0:
            return tx_power_mw
        factor = self.wavelength_m / (4.0 * math.pi * distance_m)
        return tx_power_mw * self.gain * factor * factor


@dataclass(frozen=True)
class TwoRayGround(PathLossModel):
    """Two-ray ground reflection with free-space below the crossover.

    Beyond the crossover distance ``dc = 4 pi ht hr / lambda`` the ground
    reflection dominates and Pr = Pt * Gt * Gr * ht^2 hr^2 / d^4.
    """

    wavelength_m: float
    antenna_height_m: float = 1.5
    gain: float = 1.0

    @property
    def crossover_m(self) -> float:
        return (4.0 * math.pi * self.antenna_height_m * self.antenna_height_m
                / self.wavelength_m)

    def received_power_mw(self, tx_power_mw: float, distance_m: float) -> float:
        if distance_m <= 0:
            return tx_power_mw
        if distance_m <= self.crossover_m:
            factor = self.wavelength_m / (4.0 * math.pi * distance_m)
            return tx_power_mw * self.gain * factor * factor
        h2 = self.antenna_height_m * self.antenna_height_m
        return tx_power_mw * self.gain * (h2 * h2) / (distance_m ** 4)


@dataclass(frozen=True)
class InversePowerLaw(PathLossModel):
    """The analysis model of Section 2.3: signal decays as 1/d^alpha.

    Calibrated so that received power equals ``thresh_mw`` exactly at
    ``reference_range_m`` — the form used in the paper's "physical model"
    formula with alpha = 2 by default.
    """

    alpha: float = 2.0
    reference_range_m: float = 200.0
    reference_tx_power_mw: float = dbm_to_mw(15.0)
    reference_thresh_mw: float = dbm_to_mw(-71.0)

    def received_power_mw(self, tx_power_mw: float, distance_m: float) -> float:
        if distance_m <= 0:
            return tx_power_mw
        # Pr(d) = Pt * K / d^alpha, with K chosen so the reference holds.
        k = (self.reference_thresh_mw / self.reference_tx_power_mw
             * self.reference_range_m ** self.alpha)
        return tx_power_mw * k / (distance_m ** self.alpha)


def default_pathloss(params: PhyParams) -> TwoRayGround:
    """The paper's propagation model with its antenna parameters."""
    return TwoRayGround(
        wavelength_m=params.wavelength_m,
        antenna_height_m=params.antenna_height_m,
        gain=dbm_to_mw(params.antenna_gain_dbi) if params.antenna_gain_dbi else 1.0,
    )
