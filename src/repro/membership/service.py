"""Membership services (Section 4.1).

Two membership flavours back the RANDOM access strategy:

* :class:`FullMembership` — classic membership knowledge (the paper:
  "implemented, e.g., by every node occasionally flooding the network with
  its id").  We model the steady state — every node can enumerate the ids
  that were alive at the last refresh — and charge its amortised cost
  separately, exactly as the paper does ("this cost is amortized over all
  advertise accesses", Section 8.1).
* :class:`RandomMembership` — a RaWMS-style random membership service: each
  node holds ``2*sqrt(n)`` uniformly chosen node ids, periodically
  refreshed.  The underlying uniform sampling is provided either by an
  oracle (cheap, used when the membership cost is amortised away) or by
  honest max-degree random walks (:mod:`repro.randomwalk`).

Both refresh on a timer, so after churn the view is stale until the next
refresh — which is what makes accessing a failed member possible, the
failure mode Section 6.2's adaptation handles.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.sim.kernel import PeriodicTimer
from repro.simnet.network import SimNetwork


class MembershipFreezeMixin:
    """Staleness injection: a frozen membership skips refreshes.

    Fault campaigns freeze views to model epochs where membership
    floods/walks are lost, so accesses keep targeting a stale id set.
    """

    frozen: bool = False

    def freeze(self) -> None:
        self.frozen = True

    def thaw(self, refresh: bool = True) -> None:
        self.frozen = False
        if refresh:
            self.refresh()  # type: ignore[attr-defined]


class FullMembership(MembershipFreezeMixin):
    """Snapshot-based full membership view."""

    def __init__(self, net: SimNetwork, refresh_interval: float = 60.0) -> None:
        self.net = net
        self._view: List[int] = net.alive_nodes()
        self._timer = PeriodicTimer(net.sim, refresh_interval, self.refresh)

    def refresh(self) -> None:
        """Re-learn the alive set (models a membership flood epoch)."""
        if self.frozen:
            return
        self._view = self.net.alive_nodes()

    def view(self, node_id: Optional[int] = None) -> List[int]:
        """Membership list as seen by ``node_id`` (view is global here)."""
        return list(self._view)

    def sample(self, k: int, rng: random.Random,
               exclude: Optional[int] = None) -> List[int]:
        """``k`` distinct uniformly random members (stale view)."""
        pool = [v for v in self._view if v != exclude]
        if k >= len(pool):
            return list(pool)
        return rng.sample(pool, k)

    def sample_for(self, node_id: int, k: int, rng: random.Random) -> List[int]:
        """``k`` distinct random members as seen by ``node_id`` (self excluded)."""
        return self.sample(k, rng, exclude=node_id)

    def stop(self) -> None:
        self._timer.stop()


class RandomMembership(MembershipFreezeMixin):
    """RaWMS-style partial random membership.

    Every node keeps a private list of ``view_size`` uniform node ids
    (default ``2*sqrt(n)``, the paper's setting).  Advertise/lookup RANDOM
    quorums are drawn from this list, which is why the paper's advertise
    message count flattens at ``|Q| >= 2*sqrt(n)`` (Figure 8).
    """

    def __init__(
        self,
        net: SimNetwork,
        view_size: Optional[int] = None,
        refresh_interval: float = 120.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.net = net
        self.rng = rng or net.rngs.stream("membership")
        self._view_size = view_size
        self._views: dict[int, List[int]] = {}
        self._timer = PeriodicTimer(net.sim, refresh_interval, self.refresh)
        self.refresh()

    @property
    def view_size(self) -> int:
        if self._view_size is not None:
            return self._view_size
        return max(1, int(round(2.0 * math.sqrt(self.net.n_alive))))

    def refresh(self) -> None:
        """Draw a fresh uniform view for every alive node."""
        if self.frozen:
            return
        alive = self.net.alive_nodes()
        size = self.view_size
        self._views = {}
        for node in alive:
            pool = [v for v in alive if v != node]
            k = min(size, len(pool))
            self._views[node] = self.rng.sample(pool, k)

    def view(self, node_id: int) -> List[int]:
        """The stale random view held by ``node_id``."""
        if node_id not in self._views:
            # Late joiner: bootstrap a view on first use.
            alive = [v for v in self.net.alive_nodes() if v != node_id]
            k = min(self.view_size, len(alive))
            self._views[node_id] = self.rng.sample(alive, k)
        return list(self._views[node_id])

    def sample(self, k: int, rng: random.Random, node_id: int,
               exclude: Optional[int] = None) -> List[int]:
        """``k`` distinct ids drawn from the node's random view."""
        pool = [v for v in self.view(node_id) if v != exclude]
        if k >= len(pool):
            return list(pool)
        return rng.sample(pool, k)

    def sample_for(self, node_id: int, k: int, rng: random.Random) -> List[int]:
        """``k`` distinct ids from the node's random view (self excluded)."""
        return self.sample(k, rng, node_id, exclude=node_id)

    def stop(self) -> None:
        self._timer.stop()


def uniform_sample(universe: Sequence[int], k: int,
                   rng: random.Random) -> List[int]:
    """``k`` distinct uniform elements (the whole set if k >= len)."""
    if k >= len(universe):
        return list(universe)
    return rng.sample(list(universe), k)
