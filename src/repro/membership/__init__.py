"""Membership substrate: full and RaWMS-style random membership services,
plus random-walk network-size estimation."""

from repro.membership.estimation import NetworkSizeEstimator, SizeEstimate
from repro.membership.service import (
    FullMembership,
    MembershipFreezeMixin,
    RandomMembership,
    uniform_sample,
)

__all__ = [
    "FullMembership",
    "MembershipFreezeMixin",
    "RandomMembership",
    "uniform_sample",
    "NetworkSizeEstimator",
    "SizeEstimate",
]
