"""Network size estimation (Section 6.3).

Quorum sizing needs the network size ``n``, which individual nodes do not
know.  The paper's recipe: obtain a loose upper bound, then sharpen it by
counting collisions among uniform random-walk samples (birthday paradox;
Massoulie et al., RaWMS).  Overestimating never hurts the intersection
guarantee — it only costs extra messages — so the estimator rounds up.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.resilience import (
    estimate_network_size,
    samples_for_size_estimate,
)
from repro.randomwalk.walker import max_degree_walk_sample
from repro.simnet.network import SimNetwork


@dataclass
class SizeEstimate:
    """Result of one estimation round."""

    estimate: float          # birthday-paradox point estimate (may be inf)
    conservative: int        # rounded-up value safe for quorum sizing
    samples: int             # walk samples drawn
    collisions_observed: int
    messages: int            # transmissions spent on the sampling walks


class NetworkSizeEstimator:
    """Estimates ``n`` by max-degree random-walk sampling from one node."""

    def __init__(self, net: SimNetwork, origin: int,
                 upper_bound: Optional[int] = None,
                 safety_factor: float = 1.25,
                 rng: Optional[random.Random] = None) -> None:
        if safety_factor < 1.0:
            raise ValueError("safety_factor must be >= 1")
        self.net = net
        self.origin = origin
        self.upper_bound = upper_bound
        self.safety_factor = safety_factor
        self.rng = rng or net.rngs.stream("size-estimation")

    def estimate(self, target_collisions: int = 12,
                 walk_length: Optional[int] = None) -> SizeEstimate:
        """One estimation round.

        Draws enough walk samples that ``target_collisions`` birthday
        collisions are expected at the upper bound, then applies the
        ``k(k-1)/(2c)`` estimator.  Walk length defaults to the mixing
        time of the *bound* (not the unknown true n) — again erring
        upward, which preserves uniformity.
        """
        bound = self.upper_bound or self.net.n_alive
        k = samples_for_size_estimate(bound, target_collisions)
        if walk_length is None:
            # Twice the RGG mixing time (~n/2): all samples drawn from the
            # same origin, so extra mixing keeps them near-independent.
            walk_length = max(10, bound)

        samples: List[int] = []
        messages = 0
        attempts = 0
        while len(samples) < k and attempts < 3 * k:
            attempts += 1
            result = max_degree_walk_sample(
                self.net, self.origin, walk_length=walk_length, rng=self.rng)
            messages += result.messages
            if result.node is not None:
                samples.append(result.node)

        if len(samples) < 2:
            return SizeEstimate(estimate=math.inf, conservative=bound,
                                samples=len(samples), collisions_observed=0,
                                messages=messages)
        counts: dict = {}
        for s in samples:
            counts[s] = counts.get(s, 0) + 1
        collisions = sum(c * (c - 1) // 2 for c in counts.values())
        estimate = estimate_network_size(samples)
        if math.isinf(estimate):
            conservative = bound
        else:
            conservative = int(math.ceil(self.safety_factor * estimate))
        return SizeEstimate(estimate=estimate, conservative=conservative,
                            samples=len(samples),
                            collisions_observed=collisions,
                            messages=messages)

    def quorum_size_for(self, epsilon: float,
                        estimate: Optional[SizeEstimate] = None) -> int:
        """Symmetric quorum size from an estimate (Corollary 5.3 applied
        to the conservative n — overestimation preserves the guarantee)."""
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if estimate is None:
            estimate = self.estimate()
        n_hat = max(2, estimate.conservative)
        return int(math.ceil(math.sqrt(n_hat * math.log(1.0 / epsilon))))
