"""repro — Probabilistic quorum systems in wireless ad hoc networks.

A full reproduction of Friedman, Kliot & Avin (DSN'08 / ACM TOCS 2010):
probabilistic biquorum systems with mixed access strategies (RANDOM,
RANDOM-OPT, PATH, UNIQUE-PATH, FLOODING) over a discrete-event simulated
mobile ad hoc network, plus the full closed-form theory and the services
built on top (location service, register, pub/sub).

Quickstart::

    from repro import (NetworkConfig, SimNetwork, FullMembership,
                       RandomStrategy, UniquePathStrategy,
                       ProbabilisticBiquorum, LocationService)

    net = SimNetwork(NetworkConfig(n=200, avg_degree=10, seed=7))
    membership = FullMembership(net)
    bq = ProbabilisticBiquorum(
        net,
        advertise=RandomStrategy(membership),
        lookup=UniquePathStrategy(),
        epsilon=0.1,
    )
    svc = LocationService(bq)
    svc.advertise(origin=0, key="printer", value=(12, 34))
    print(svc.lookup(origin=150, key="printer").found)
"""

from repro.analysis import (
    asymmetric_quorum_sizes,
    epsilon_for_sizes,
    intersection_probability,
    miss_probability_bound,
    miss_probability_exact,
    optimal_lookup_size,
    optimal_size_ratio,
    required_quorum_product,
    symmetric_quorum_size,
)
from repro.core import (
    AccessResult,
    AccessStrategy,
    FloodingStrategy,
    GossipFloodStrategy,
    PathStrategy,
    ProbabilisticBiquorum,
    QuorumSizing,
    RandomOptStrategy,
    RandomSamplingStrategy,
    RandomStrategy,
    UniquePathStrategy,
    plan_sizes,
)
from repro.membership import (
    FullMembership,
    NetworkSizeEstimator,
    RandomMembership,
)
from repro.obs import (
    AccountingAuditor,
    AuditError,
    AuditViolation,
    EventTrace,
    MetricsRegistry,
    TraceEvent,
    audit_access,
)
from repro.services import (
    CheckedRegister,
    LocationService,
    ProbabilisticRegister,
    PubSubService,
    RefreshDaemon,
)
from repro.sim import PeriodicTimer, Simulator
from repro.simnet import (
    ChurnProcess,
    NetworkConfig,
    SimNetwork,
    apply_churn,
)

__version__ = "1.0.0"

__all__ = [
    # theory
    "asymmetric_quorum_sizes",
    "epsilon_for_sizes",
    "intersection_probability",
    "miss_probability_bound",
    "miss_probability_exact",
    "optimal_lookup_size",
    "optimal_size_ratio",
    "required_quorum_product",
    "symmetric_quorum_size",
    # core
    "AccessResult",
    "AccessStrategy",
    "FloodingStrategy",
    "GossipFloodStrategy",
    "PathStrategy",
    "ProbabilisticBiquorum",
    "QuorumSizing",
    "RandomOptStrategy",
    "RandomSamplingStrategy",
    "RandomStrategy",
    "UniquePathStrategy",
    "plan_sizes",
    # substrates
    "FullMembership",
    "NetworkSizeEstimator",
    "RandomMembership",
    "PeriodicTimer",
    "Simulator",
    "ChurnProcess",
    "NetworkConfig",
    "SimNetwork",
    "apply_churn",
    # observability
    "AccountingAuditor",
    "AuditError",
    "AuditViolation",
    "EventTrace",
    "MetricsRegistry",
    "TraceEvent",
    "audit_access",
    # services
    "CheckedRegister",
    "LocationService",
    "ProbabilisticRegister",
    "PubSubService",
    "RefreshDaemon",
    "__version__",
]
