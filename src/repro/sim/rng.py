"""Deterministic random-number streams.

The paper seeded Java's PRNG with wall-clock time; for reproducibility we
instead derive independent named substreams from a single master seed, so
each subsystem (mobility, MAC backoff, random walks, workload, churn, ...)
gets its own stream and experiments are exactly repeatable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Optional

import numpy as np


def _derive_seed(master_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for named, independent PRNG streams.

    ``stream(name)`` returns a ``random.Random``; ``numpy_stream(name)``
    returns a ``numpy.random.Generator``.  The same (seed, name) pair always
    yields an identically-seeded generator.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the named stdlib PRNG stream."""
        if name not in self._streams:
            self._streams[name] = random.Random(
                _derive_seed(self.master_seed, name)
            )
        return self._streams[name]

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the named numpy PRNG stream."""
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(
                _derive_seed(self.master_seed, "np:" + name)
            )
        return self._np_streams[name]

    def fork(self, name: str, seed_offset: Optional[int] = None) -> "RngRegistry":
        """Derive a child registry (e.g. one per simulation run)."""
        extra = 0 if seed_offset is None else seed_offset
        return RngRegistry(_derive_seed(self.master_seed, f"fork:{name}:{extra}"))
