"""Deterministic random-number streams.

The paper seeded Java's PRNG with wall-clock time; for reproducibility we
instead derive independent named substreams from a single master seed, so
each subsystem (mobility, MAC backoff, random walks, workload, churn, ...)
gets its own stream and experiments are exactly repeatable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional

import numpy as np


def _derive_seed(master_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def derive_stream_seed(master_seed: int, name: str) -> int:
    """Public seed derivation (same function the registry uses).

    Lets callers pre-compute the seed of a named stream — e.g. the
    Monte-Carlo engine reseeding per-replica workload streams — without
    instantiating a registry.
    """
    return _derive_seed(master_seed, name)


def replica_seeds(master_seed: int, count: int,
                  name: str = "replicas") -> List[int]:
    """``count`` independent replica seeds from one master seed.

    Uses a counter-based Philox generator keyed off the master seed, so
    the list is *prefix-stable*: ``replica_seeds(s, k)`` is a prefix of
    ``replica_seeds(s, m)`` for ``k <= m``.  A sequential-stopping rule
    can therefore extend a replication run without perturbing the seeds
    (and hence the results) of the replicas already executed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return []
    key = _derive_seed(master_seed, f"philox:{name}")
    gen = np.random.Generator(np.random.Philox(key=key))
    return [int(s) for s in
            gen.integers(0, 2**63, size=count, dtype=np.int64)]


class RngRegistry:
    """Factory for named, independent PRNG streams.

    ``stream(name)`` returns a ``random.Random``; ``numpy_stream(name)``
    returns a ``numpy.random.Generator``.  The same (seed, name) pair always
    yields an identically-seeded generator.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the named stdlib PRNG stream."""
        if name not in self._streams:
            self._streams[name] = random.Random(
                _derive_seed(self.master_seed, name)
            )
        return self._streams[name]

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the named numpy PRNG stream."""
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(
                _derive_seed(self.master_seed, "np:" + name)
            )
        return self._np_streams[name]

    def seed_stream(self, name: str, seed: int) -> random.Random:
        """(Re)seed the named stdlib stream explicitly.

        Replaces whatever generator the name held, so later ``stream(name)``
        calls return a generator seeded with ``seed`` instead of the
        registry-derived default.  The replication engine uses this to give
        each replica its own workload randomness while the deployment
        streams (placement, mobility, churn) stay tied to the network seed.
        """
        generator = random.Random(seed)
        self._streams[name] = generator
        return generator

    def fork(self, name: str, seed_offset: Optional[int] = None) -> "RngRegistry":
        """Derive a child registry (e.g. one per simulation run)."""
        extra = 0 if seed_offset is None else seed_offset
        return RngRegistry(_derive_seed(self.master_seed, f"fork:{name}:{extra}"))
