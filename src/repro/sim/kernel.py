"""Discrete-event simulation kernel.

This is the substrate on which every protocol layer in this repository runs
(the paper used the JiST/SWANS Java discrete-event simulator; this module is
our Python equivalent).  The kernel is a classic event-heap scheduler:
callbacks are scheduled at absolute simulated times and executed in
non-decreasing time order, with FIFO ordering between events scheduled for
the same instant.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the simulation kernel."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` so that simultaneous events run in
    the order they were scheduled.  ``cancel()`` marks the event dead; the
    scheduler skips dead events when it pops them (lazy deletion).
    """

    time: float
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent this event from firing (idempotent)."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not self.cancelled


class Simulator:
    """Heap-based discrete-event scheduler.

    Example::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = 0  # run() nesting depth
        self._events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_executed

    @property
    def pending_count(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    def next_event_time(self) -> float:
        """Timestamp of the earliest pending event (``inf`` when idle).

        Cancelled events at the head of the heap are drained lazily, so
        the answer reflects events that will actually fire.  Used by the
        bulk route-forwarding fast path to prove that no timer or churn
        event can interleave with a multi-hop window.
        """
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else math.inf

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time=time, seq=next(self._seq), fn=fn, args=args)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_executed += 1
            event.fn(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        When stopping at ``until``, the clock is advanced to exactly
        ``until`` (events scheduled at precisely ``until`` do execute).

        ``run`` is *reentrant*: an event callback may itself call
        ``run(until=...)`` to synchronously advance the clock (this is how
        protocol code models per-hop latency from inside timer callbacks).
        A nested run drains all events due up to its bound; the outer run
        then resumes with the clock already advanced.
        """
        self._running += 1
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    return
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = max(self._now, until)
                    return
                heapq.heappop(self._queue)
                # A nested run inside the previous callback may have pushed
                # the clock past this event's timestamp already.
                self._now = max(self._now, event.time)
                self._events_executed += 1
                executed += 1
                event.fn(*event.args)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running -= 1

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._events_executed = 0


class PeriodicTimer:
    """Fires a callback every ``interval`` seconds until stopped.

    Used for heartbeats, route-table expiry sweeps, readvertise refresh, etc.
    An optional ``jitter_fn`` returning a per-tick offset desynchronises
    timers across nodes (the paper uses 10 ms broadcast jitter, RFC 5148).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[[], Any],
        jitter_fn: Optional[Callable[[], float]] = None,
        start_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError("timer interval must be positive")
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._jitter_fn = jitter_fn
        self._event: Optional[Event] = None
        self._stopped = False
        first = interval if start_delay is None else start_delay
        self._event = sim.schedule(max(0.0, first + self._jitter()), self._tick)

    def _jitter(self) -> float:
        return self._jitter_fn() if self._jitter_fn is not None else 0.0

    def _tick(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._event = self._sim.schedule(
                max(0.0, self._interval + self._jitter()), self._tick
            )

    def stop(self) -> None:
        """Cancel the timer (idempotent)."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def interval(self) -> float:
        return self._interval

    def set_interval(self, interval: float) -> None:
        """Change the period; takes effect from the next (re)scheduling.

        Callbacks that adjust their own timer (e.g. the churn-adaptive
        refresh daemon re-deriving its interval each round) see the new
        period applied to the very next tick, because the timer
        reschedules after the callback returns.
        """
        if interval <= 0:
            raise SimulationError("timer interval must be positive")
        self._interval = interval

    @property
    def active(self) -> bool:
        return not self._stopped
