"""Discrete-event simulation substrate (kernel, timers, RNG streams)."""

from repro.sim.kernel import Event, PeriodicTimer, SimulationError, Simulator
from repro.sim.rng import RngRegistry

__all__ = [
    "Event",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
    "RngRegistry",
]
