"""Failure-resilience metrics of probabilistic quorum systems (Section 3)
and connectivity under failures (Section 6.1).

* Fault tolerance of a size-``k sqrt(n)`` probabilistic quorum system is
  ``n - k sqrt(n) + 1 = Omega(n)`` (Malkhi et al.).
* Failure probability is ``e^{-Omega(n)}`` for crash probability
  ``p <= 1 - k/sqrt(n)``.
* An RGG with fixed r survives failures while the survivor count still
  satisfies the Gupta–Kumar condition ``r >= sqrt(ln(n-i) / (pi (n-i)))``.
* Network-size estimation by birthday-paradox collision counting
  (Section 6.3).
"""

from __future__ import annotations

import math
from typing import Sequence


def fault_tolerance(n: int, quorum_size: int) -> int:
    """Minimal number of crashes that can disable *every* quorum.

    For quorums drawn uniformly with size ``q``, every ``q``-subset of live
    nodes is a possible quorum, so the adversary must leave fewer than
    ``q`` nodes alive: fault tolerance = ``n - q + 1``.
    """
    if not 1 <= quorum_size <= n:
        raise ValueError("need 1 <= quorum_size <= n")
    return n - quorum_size + 1


def failure_probability_bound(n: int, k: float, p: float) -> float:
    """Chernoff bound on the probability the whole system is disabled.

    Nodes crash independently with probability ``p``; the system of
    ``k sqrt(n)``-sized quorums fails only if fewer than ``k sqrt(n)``
    nodes survive.  For ``p <= 1 - k/sqrt(n)`` this is ``e^{-Omega(n)}``;
    we return the standard multiplicative Chernoff bound.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError("p must be in [0, 1)")
    if k <= 0:
        raise ValueError("k must be positive")
    q = k * math.sqrt(n)
    if q > n:
        raise ValueError("quorum size exceeds n")
    survivors_mean = n * (1.0 - p)
    if q >= survivors_mean:
        return 1.0  # bound is vacuous in this regime
    delta = 1.0 - q / survivors_mean
    return math.exp(-survivors_mean * delta * delta / 2.0)


def min_degree_for_connectivity(n: int, constant: float = 1.0) -> float:
    """Gupta–Kumar: average degree ``C ln n`` needed for connectivity whp."""
    if n < 2:
        raise ValueError("n must be >= 2")
    return constant * math.log(n)


def survivable_failures(n: int, avg_degree: float) -> int:
    """How many uniform crashes an RGG tolerates while staying connected.

    With fixed r, survivors form G^2(n - i, r); connectivity needs the
    (absolute) average degree among survivors — which scales as
    ``avg_degree * (n - i) / n`` — to stay above ``ln(n - i)``.  The paper's
    example: n = 1000 at d_avg = 14 tolerates ~ half the nodes failing.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    tolerable = 0
    for i in range(n - 1):
        survivors = n - i
        if survivors < 2:
            break
        surviving_degree = avg_degree * survivors / n
        if surviving_degree < math.log(survivors):
            break
        tolerable = i
    return tolerable


def estimate_network_size(samples: Sequence[int]) -> float:
    """Birthday-paradox estimate of ``n`` from uniform node samples.

    With ``k`` uniform (with-replacement) samples and ``c`` colliding
    pairs, ``E[c] = k(k-1) / (2n)``, so ``n ~ k(k-1) / (2c)``
    (Section 6.3; Massoulie et al., RaWMS).  Returns +inf when no
    collision was observed (only a lower bound on n is known then).
    """
    k = len(samples)
    if k < 2:
        raise ValueError("need at least two samples")
    counts: dict = {}
    for s in samples:
        counts[s] = counts.get(s, 0) + 1
    collisions = sum(c * (c - 1) // 2 for c in counts.values())
    if collisions == 0:
        return math.inf
    return k * (k - 1) / (2.0 * collisions)


def samples_for_size_estimate(n_upper_bound: int,
                              target_collisions: int = 8) -> int:
    """Sample count so the estimator expects >= ``target_collisions``."""
    if n_upper_bound < 1:
        raise ValueError("bound must be positive")
    if target_collisions < 1:
        raise ValueError("target_collisions must be >= 1")
    return int(math.ceil(math.sqrt(2.0 * target_collisions * n_upper_bound))) + 1
