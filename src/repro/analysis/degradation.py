"""Degradation rate under churn (Section 6.1, Figure 7).

Closed forms for the non-intersection probability ``Pr(miss(t))`` of a
lookup quorum against an advertise quorum established *before* churn, as a
function of the churn fraction ``f``:

1. failures only, constant lookup size:       ``Pr(miss) = eps`` (unchanged!)
2. failures only, lookup size adjusted:       ``Pr(miss) <= eps^sqrt(1-f)``
3. joins only, constant lookup size:          ``Pr(miss) <= eps^(1/(1+f))``
4. joins only, lookup size adjusted:          ``Pr(miss) <= eps^(1/sqrt(1+f))``
5. equal joins+failures (network size const): ``Pr(miss) <= eps^(1-f)``

plus a planner that turns a minimum acceptable intersection probability
into a refresh (readvertise) schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _validate(epsilon: float, f: float, max_f: float = 1.0) -> None:
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    if not 0.0 <= f <= max_f:
        raise ValueError(f"churn fraction must be in [0, {max_f}]")


def miss_failures_constant_lookup(epsilon: float, f: float) -> float:
    """Case 1: nodes fail, ``|Ql|`` kept at its original value.

    The advertise quorum shrinks by (1-f) but so does n, so the exponent
    ``|Qa||Ql|/n`` — and hence the miss probability — is *unchanged*.
    """
    _validate(epsilon, f, max_f=0.999999)
    return epsilon


def miss_failures_adjusted_lookup(epsilon: float, f: float) -> float:
    """Case 2: nodes fail, ``|Ql| = C sqrt(n(t))`` tracks the network size."""
    _validate(epsilon, f, max_f=0.999999)
    return epsilon ** math.sqrt(1.0 - f)


def miss_joins_constant_lookup(epsilon: float, f: float) -> float:
    """Case 3: nodes join, ``|Ql|`` kept constant."""
    _validate(epsilon, f, max_f=math.inf)
    return epsilon ** (1.0 / (1.0 + f))


def miss_joins_adjusted_lookup(epsilon: float, f: float) -> float:
    """Case 4: nodes join, ``|Ql|`` adjusted to ``C sqrt(n(t))``."""
    _validate(epsilon, f, max_f=math.inf)
    return epsilon ** (1.0 / math.sqrt(1.0 + f))


def miss_joins_and_failures(epsilon: float, f: float) -> float:
    """Case 5: fraction ``f`` failed AND the same number joined (n fixed)."""
    _validate(epsilon, f)
    return epsilon ** (1.0 - f)


def intersection_after_churn(epsilon: float, f: float, mode: str) -> float:
    """``1 - Pr(miss)`` for a named churn scenario.

    ``mode`` is one of ``failures-constant``, ``failures-adjusted``,
    ``joins-constant``, ``joins-adjusted``, ``both``.
    """
    table = {
        "failures-constant": miss_failures_constant_lookup,
        "failures-adjusted": miss_failures_adjusted_lookup,
        "joins-constant": miss_joins_constant_lookup,
        "joins-adjusted": miss_joins_adjusted_lookup,
        "both": miss_joins_and_failures,
    }
    if mode not in table:
        raise ValueError(f"unknown churn mode {mode!r}; pick from {sorted(table)}")
    return 1.0 - table[mode](epsilon, f)


def max_tolerable_churn(epsilon: float, min_intersection: float,
                        mode: str = "both") -> float:
    """Largest churn fraction keeping intersection >= ``min_intersection``.

    Solved in closed form from the bounds above; returns 1.0 (or +inf for
    join-only modes that never cross the floor) when the floor is never hit.
    The paper's Section 6.1 example: eps=0.05, floor 0.9 under 'both' churn
    tolerates roughly f ~ 0.3.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    if not 0.0 < min_intersection < 1.0:
        raise ValueError("min_intersection must be in (0, 1)")
    target_miss = 1.0 - min_intersection
    if target_miss <= epsilon:
        return 0.0
    ratio = math.log(target_miss) / math.log(epsilon)  # in (0, 1)
    if mode == "both":
        return min(1.0, 1.0 - ratio)
    if mode == "failures-adjusted":
        return min(1.0, 1.0 - ratio * ratio)
    if mode == "joins-constant":
        return 1.0 / ratio - 1.0
    if mode == "joins-adjusted":
        return 1.0 / (ratio * ratio) - 1.0
    if mode == "failures-constant":
        return math.inf  # intersection never degrades
    raise ValueError(f"unknown churn mode {mode!r}")


@dataclass(frozen=True)
class RefreshPlan:
    """A readvertise schedule derived from the degradation rate."""

    tolerable_churn_fraction: float
    refresh_interval_seconds: float


def refresh_schedule(epsilon: float, min_intersection: float,
                     churn_fraction_per_second: float,
                     mode: str = "both") -> RefreshPlan:
    """How often to readvertise so intersection never drops below the floor.

    Section 6.1's example: if 30% of nodes change per day and the floor
    tolerates f = 0.3, every data item should be refreshed once a day.
    """
    if churn_fraction_per_second < 0:
        raise ValueError("churn rate must be non-negative")
    f_max = max_tolerable_churn(epsilon, min_intersection, mode)
    if churn_fraction_per_second == 0 or math.isinf(f_max):
        return RefreshPlan(tolerable_churn_fraction=f_max,
                           refresh_interval_seconds=math.inf)
    return RefreshPlan(
        tolerable_churn_fraction=f_max,
        refresh_interval_seconds=f_max / churn_fraction_per_second,
    )
