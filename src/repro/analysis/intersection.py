"""Intersection probability and quorum sizing (Sections 3, 5).

Closed forms:

* Lemma 5.1 / 5.2 (mix-and-match): for quorums of sizes ``|Qa|`` and
  ``|Ql|`` over ``n`` nodes with at least one side uniform-random,
  ``Pr(miss) <= exp(-|Qa| * |Ql| / n)``.
* Exact miss probability for the same process (hypergeometric product).
* Corollary 5.3: for intersection probability ``>= 1 - eps`` one needs
  ``|Qa| * |Ql| >= n * ln(1/eps)``.
"""

from __future__ import annotations

import math
from typing import Tuple


def miss_probability_bound(quorum_a: int, quorum_l: int, n: int) -> float:
    """Lemma 5.2 upper bound: ``exp(-|Qa| |Ql| / n)``."""
    _validate(quorum_a, quorum_l, n)
    return math.exp(-quorum_a * quorum_l / n)


def miss_probability_exact(quorum_a: int, quorum_l: int, n: int) -> float:
    """Exact non-intersection probability of Lemma 5.2's selection process.

    ``prod_{i=0}^{|Qa|-1} (n - |Ql| - i) / (n - i)`` — the probability that
    a without-replacement uniform sample of size ``|Qa|`` avoids a fixed set
    of size ``|Ql|``.
    """
    _validate(quorum_a, quorum_l, n)
    if quorum_a + quorum_l > n:
        return 0.0
    prob = 1.0
    for i in range(quorum_a):
        prob *= (n - quorum_l - i) / (n - i)
    return prob


def intersection_probability(quorum_a: int, quorum_l: int, n: int,
                             exact: bool = True) -> float:
    """``1 - Pr(miss)`` for one advertise / lookup quorum pair."""
    if exact:
        return 1.0 - miss_probability_exact(quorum_a, quorum_l, n)
    return 1.0 - miss_probability_bound(quorum_a, quorum_l, n)


def required_quorum_product(n: int, epsilon: float) -> float:
    """Corollary 5.3: minimal ``|Qa| * |Ql|`` for ``Pr(intersect) >= 1-eps``."""
    _validate_eps(epsilon)
    if n <= 0:
        raise ValueError("n must be positive")
    return n * math.log(1.0 / epsilon)


def symmetric_quorum_size(n: int, epsilon: float) -> int:
    """Equal-size quorums meeting Corollary 5.3: ``ceil(sqrt(n ln(1/eps)))``."""
    return int(math.ceil(math.sqrt(required_quorum_product(n, epsilon))))


def asymmetric_quorum_sizes(n: int, epsilon: float,
                            ratio_l_over_a: float) -> Tuple[int, int]:
    """Sizes ``(|Qa|, |Ql|)`` with ``|Ql|/|Qa| = ratio`` meeting Cor. 5.3."""
    if ratio_l_over_a <= 0:
        raise ValueError("ratio must be positive")
    product = required_quorum_product(n, epsilon)
    q_l = math.sqrt(product * ratio_l_over_a)
    q_a = math.sqrt(product / ratio_l_over_a)
    return int(math.ceil(q_a)), int(math.ceil(q_l))


def epsilon_for_sizes(quorum_a: int, quorum_l: int, n: int) -> float:
    """The guaranteed ``eps`` for given sizes (from the Lemma 5.2 bound)."""
    return miss_probability_bound(quorum_a, quorum_l, n)


def malkhi_quorum_size(n: int, k: float) -> int:
    """The classic ``k * sqrt(n)`` size of Malkhi et al. (Lemma 5.1).

    Guarantees ``Pr(miss) < exp(-k^2)`` for a symmetric RANDOM biquorum.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    return int(math.ceil(k * math.sqrt(n)))


def malkhi_miss_bound(k: float) -> float:
    """Lemma 5.1 bound ``exp(-k^2)`` for quorums of size ``k sqrt(n)``."""
    return math.exp(-k * k)


def masking_miss_probability_exact(quorum_a: int, quorum_l: int, n: int,
                                   b: int) -> float:
    """Exact ``Pr(|Qa ∩ Ql| <= 2b)`` for uniform without-replacement quorums.

    The masking analogue of :func:`miss_probability_exact`: with up to
    ``b`` Byzantine replicas, a lookup is safe only when the quorums
    share at least ``2b + 1`` members, so that the honest majority of
    the intersection (``>= b + 1``) outvotes every fabricated reply
    (Malkhi–Reiter masking quorums).  ``|Qa ∩ Ql|`` is hypergeometric;
    the returned value is its CDF at ``2b``.  ``b = 0`` reduces to the
    crash-fault miss probability of Lemma 5.2.
    """
    _validate(quorum_a, quorum_l, n)
    if b < 0:
        raise ValueError("b must be non-negative")
    total = math.comb(n, quorum_l)
    prob = 0.0
    upper = min(2 * b, quorum_a, quorum_l)
    for i in range(upper + 1):
        prob += math.comb(quorum_a, i) * math.comb(n - quorum_a,
                                                   quorum_l - i) / total
    return min(prob, 1.0)


def masking_intersection_probability(quorum_a: int, quorum_l: int, n: int,
                                     b: int) -> float:
    """``Pr(|Qa ∩ Ql| >= 2b + 1)`` — the masked-read success floor."""
    return 1.0 - masking_miss_probability_exact(quorum_a, quorum_l, n, b)


def masking_quorum_size(n: int, epsilon: float, b: int) -> int:
    """Smallest symmetric quorum size with ``Pr(|Qa ∩ Ql| <= 2b) <= eps``.

    Found by bisection on the exact hypergeometric bound.  Raises
    ``ValueError`` when no size works (``n < 2b + 1`` — even full
    quorums cannot expose an honest majority of ``b + 1``).
    """
    _validate_eps(epsilon)
    if b < 0:
        raise ValueError("b must be non-negative")
    if n < 2 * b + 1:
        raise ValueError(
            f"n={n} cannot mask b={b} faults: even q=n leaves "
            f"|intersection| < {2 * b + 1}")
    lo, hi = 2 * b + 1, n
    if masking_miss_probability_exact(hi, hi, n, b) > epsilon:
        raise ValueError(
            f"no symmetric quorum over n={n} masks b={b} at eps={epsilon}")
    while lo < hi:
        mid = (lo + hi) // 2
        if masking_miss_probability_exact(mid, mid, n, b) <= epsilon:
            hi = mid
        else:
            lo = mid + 1
    return lo


def masking_vote_threshold(b: int) -> int:
    """Votes a reply must gather to be accepted under ``b`` masking: ``b+1``.

    With ``|Qa ∩ Ql| >= 2b + 1`` and at most ``b`` Byzantine replicas the
    honest members of the intersection number at least ``b + 1``, while any
    fabricated value gathers at most ``b`` votes — strictly below threshold.
    """
    if b < 0:
        raise ValueError("b must be non-negative")
    return b + 1


def _validate(quorum_a: int, quorum_l: int, n: int) -> None:
    if n <= 0:
        raise ValueError("n must be positive")
    if quorum_a < 0 or quorum_l < 0:
        raise ValueError("quorum sizes must be non-negative")
    if quorum_a > n or quorum_l > n:
        raise ValueError("quorum size cannot exceed the universe size")


def _validate_eps(epsilon: float) -> None:
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
