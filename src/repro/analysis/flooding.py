"""Analytic flooding-coverage model (Section 4.4, Figure 5).

For uniformly distributed nodes of average degree ``d_avg``, a flood with
time-to-live ``ttl`` covers roughly the disk of radius ``kappa * ttl * r``
around the originator (``kappa`` < 1 is the effective per-hop geometric
progress), giving

    N(ttl) ~ min(n, 1 + d_avg * (kappa * ttl)^2)

and the coverage granularity ``CG(i) = N(i) / N(i-1)`` approaches
``(i / (i-1))^2`` — matching the paper's measurements (CG(3) > 2,
CG(4) ~ 1.75).  The *measured* coverage lives in the simulation benches;
this model is what the analytic-TTL flooding implementation uses when the
density is known.
"""

from __future__ import annotations


#: Effective per-hop forward progress as a fraction of the radio range.
DEFAULT_KAPPA = 0.85


def expected_coverage(n: int, avg_degree: float, ttl: int,
                      kappa: float = DEFAULT_KAPPA) -> float:
    """Expected number of distinct nodes covered by a TTL-scoped flood."""
    if ttl < 0:
        raise ValueError("ttl must be non-negative")
    if n < 1:
        raise ValueError("n must be >= 1")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    if ttl == 0:
        return 1.0
    covered = 1.0 + avg_degree * (kappa * ttl) ** 2
    return min(float(n), covered)


def coverage_granularity(n: int, avg_degree: float, ttl: int,
                         kappa: float = DEFAULT_KAPPA) -> float:
    """``CG(ttl) = N(ttl) / N(ttl - 1)`` (Section 4.4)."""
    if ttl < 1:
        raise ValueError("ttl must be >= 1")
    below = expected_coverage(n, avg_degree, ttl - 1, kappa)
    return expected_coverage(n, avg_degree, ttl, kappa) / below


def ttl_for_coverage(n: int, avg_degree: float, target: int,
                     kappa: float = DEFAULT_KAPPA) -> int:
    """Smallest TTL whose expected coverage reaches ``target`` nodes.

    The analytic-TTL implementation of the FLOODING strategy (the paper's
    first variant: density known, uniform placement).
    """
    if target < 1:
        raise ValueError("target must be >= 1")
    if target == 1:
        return 0
    if target > n:
        raise ValueError("cannot cover more nodes than exist")
    ttl = 1
    while expected_coverage(n, avg_degree, ttl, kappa) < target:
        ttl += 1
        if ttl > 10_000:
            raise RuntimeError("TTL search did not converge")
    return ttl


def flood_message_cost(covered: int) -> int:
    """Transmissions in a flood covering ``covered`` nodes.

    Every covered node rebroadcasts once except the last ring; we use the
    paper's accounting where the flood cost is on the order of the covered
    set (each non-leaf node transmits once).
    """
    if covered < 1:
        raise ValueError("covered must be >= 1")
    return covered
