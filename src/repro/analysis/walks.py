"""Random-walk theory on random geometric graphs (Theorem 4.1, Theorem 5.5).

* Partial cover time: on G^2(n, r) with r^2 >= c*8*log(n)/n, covering
  ``t = o(n)`` distinct nodes takes at most ``2*alpha*t`` steps
  (Theorem 4.1); the paper measures alpha ~ 1.7 for t = sqrt(n) at density
  10, up to ~2.5 at the sparsest connected density 7.
* Crossing time: two walks on G^2(n, r) need Omega(r^-2) steps before they
  share a visited node (Theorem 5.5); at the connectivity-threshold radius
  this is Omega(n / log n).
* Mixing time of the max-degree walk: ~ n/2 (RaWMS measurement, used by the
  sampling-based RANDOM strategy).
* Complete-graph partial cover (the balls-in-bins baseline the paper quotes:
  ``PCT(n/2) = ln(2) * n``).
"""

from __future__ import annotations

import math

#: Empirical PCT constant at the paper's default density (d_avg = 10):
#: ``PCT(sqrt(n)) ~ 1.7 sqrt(n)`` for all n <= 800 (Section 4.2).
EMPIRICAL_ALPHA_DEFAULT_DENSITY = 1.7

#: Empirical PCT constant at the sparsest connected density (d_avg = 7).
EMPIRICAL_ALPHA_SPARSE = 2.5


def pct_upper_bound(t: int, alpha: float = EMPIRICAL_ALPHA_DEFAULT_DENSITY) -> float:
    """Theorem 4.1 bound: steps to visit ``t`` distinct nodes <= 2*alpha*t.

    Note the paper's empirical statements quote ``alpha*t`` directly as the
    measured cost (the factor-2 theorem bound is loose); use
    :func:`pct_empirical` for the measured form.
    """
    if t < 1:
        raise ValueError("t must be >= 1")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return 2.0 * alpha * t


def pct_empirical(t: int, alpha: float = EMPIRICAL_ALPHA_DEFAULT_DENSITY) -> float:
    """Measured partial cover time ``alpha * t`` (Figure 4)."""
    if t < 1:
        raise ValueError("t must be >= 1")
    return alpha * t


def pct_complete_graph(n: int, t: int) -> float:
    """Exact expected PCT on the complete graph (coupon collector partial sum).

    ``E[steps to visit t distinct] = sum_{i=1}^{t-1} (n-1)/(n-i)`` — the
    walk starts on one node, each step is a uniform node among the other
    n-1.  For t = n/2 this is ~ ln(2) * n, the figure the paper quotes.
    """
    if not 1 <= t <= n:
        raise ValueError("need 1 <= t <= n")
    return sum((n - 1) / (n - i) for i in range(1, t))


def crossing_time_lower_bound(n: int, r: float, side: float = 1.0) -> float:
    """Theorem 5.5: crossing time of two walks on G^2(n, r) is Omega(r^-2).

    Returned in walk steps, for the normalised radius ``r/side``.
    """
    if r <= 0 or side <= 0:
        raise ValueError("r and side must be positive")
    r_norm = r / side
    return 1.0 / (r_norm * r_norm)


def crossing_time_at_connectivity_threshold(n: int) -> float:
    """Crossing-time bound Omega(n / log n) at the minimal connected radius."""
    if n < 2:
        raise ValueError("n must be >= 2")
    return n / math.log(n)


def path_x_path_quorum_size(n: int, constant: float = 1.5) -> int:
    """Empirical symmetric PATHxPATH quorum size (Section 8.5).

    The paper measures that 0.9 intersection needs ``|Qa| = |Ql| ~
    1.5 * n / log(n)`` (~ n/4.7 for n=800, combined walk length ~ n/2).
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    return int(math.ceil(constant * n / math.log(n)))


def mixing_time_rgg(n: int) -> float:
    """Max-degree-walk mixing time on RGGs, ~ n/2 (RaWMS measurement)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return n / 2.0


def uniform_sampling_cost(quorum_size: int, n: int) -> float:
    """Messages to draw ``|Q|`` uniform samples with MD walks: |Q| * T_mix."""
    if quorum_size < 0:
        raise ValueError("quorum_size must be non-negative")
    return quorum_size * mixing_time_rgg(n)


def rgg_theorem_radius_ok(n: int, r: float, c: float = 1.0001) -> bool:
    """Whether (n, r) satisfies Theorem 4.1's premise r^2 >= c*8*log(n)/n
    (radius normalised to the unit square)."""
    if n < 2:
        raise ValueError("n must be >= 2")
    return r * r >= c * 8.0 * math.log(n) / n
