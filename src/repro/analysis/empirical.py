"""Empirical random-walk measurements on deployed networks.

Complements the closed forms in :mod:`repro.analysis.walks` with direct
measurements used to validate the theory:

* **crossing time** (Definition 5.4 / Theorem 5.5): the expected first
  time two walks share a visited node — measured by co-simulating walk
  pairs; the theorem's Omega(r^-2) lower bound is checked in the tests;
* **mixing time** of the max-degree walk via the spectral gap of its
  transition matrix (numpy) — validating the ~n/2 figure the sampling-based
  RANDOM strategy relies on;
* **partial cover time** exact expectation on small graphs by dynamic
  programming over walk distributions (for tight kernel validation).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.geometry.rgg import GeometricGraph
from repro.simnet.network import SimNetwork


@dataclass
class CrossingMeasurement:
    """Empirical crossing time over a set of walk pairs."""

    mean_steps: float      # mean combined step index at first crossing
    median_steps: float
    pairs: int
    timeouts: int          # pairs that never crossed within the cap


def measure_crossing_time(
    net: SimNetwork,
    pairs: int = 20,
    max_steps: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> CrossingMeasurement:
    """Run pairs of simple walks in lockstep until their visited sets meet.

    Both walks take one step per round; the crossing time reported is the
    round index at which the visited sets first intersect (Definition 5.4
    counts per-walk steps).  Uses ground-truth neighbor tables so the
    measurement is about the graph, not staleness.
    """
    rng = rng or random.Random(0)
    n = net.n_alive
    if max_steps is None:
        max_steps = 20 * n
    alive = net.alive_nodes()
    samples: List[int] = []
    timeouts = 0
    for _ in range(pairs):
        u, v = rng.sample(alive, 2)
        visited_u: Set[int] = {u}
        visited_v: Set[int] = {v}
        cur_u, cur_v = u, v
        crossed_at = None
        if visited_u & visited_v:
            crossed_at = 0
        step = 0
        while crossed_at is None and step < max_steps:
            step += 1
            nbrs_u = net.true_neighbors(cur_u)
            nbrs_v = net.true_neighbors(cur_v)
            if not nbrs_u or not nbrs_v:
                break
            cur_u = rng.choice(nbrs_u)
            cur_v = rng.choice(nbrs_v)
            visited_u.add(cur_u)
            visited_v.add(cur_v)
            if cur_u in visited_v or cur_v in visited_u:
                crossed_at = step
        if crossed_at is None:
            timeouts += 1
        else:
            samples.append(crossed_at)
    if not samples:
        return CrossingMeasurement(mean_steps=math.inf,
                                   median_steps=math.inf,
                                   pairs=pairs, timeouts=timeouts)
    samples.sort()
    return CrossingMeasurement(
        mean_steps=sum(samples) / len(samples),
        median_steps=float(samples[len(samples) // 2]),
        pairs=pairs, timeouts=timeouts)


def md_walk_transition_matrix(graph: GeometricGraph) -> np.ndarray:
    """Transition matrix of the max-degree random walk on a graph.

    P[u, v] = 1/d_max for neighbors, self-loop with the remainder; its
    stationary distribution is uniform, which is what makes the walk a
    uniform sampler.
    """
    n = graph.n
    degrees = [graph.degree(u) for u in range(n)]
    d_max = max(max(degrees), 1) if degrees else 1
    matrix = np.zeros((n, n))
    for u in range(n):
        for v in graph.adjacency[u]:
            matrix[u, v] = 1.0 / d_max
        matrix[u, u] = 1.0 - degrees[u] / d_max
    return matrix


def spectral_mixing_time(graph: GeometricGraph,
                         epsilon: float = 0.25) -> float:
    """Mixing-time estimate from the spectral gap of the MD walk.

    ``T_mix ~ ln(n/eps) / (1 - lambda_2)`` where lambda_2 is the
    second-largest eigenvalue modulus.  Returns +inf for disconnected
    graphs (lambda_2 = 1).
    """
    if graph.n < 2:
        return 0.0
    matrix = md_walk_transition_matrix(graph)
    eigenvalues = np.linalg.eigvals(matrix)
    moduli = np.sort(np.abs(eigenvalues))[::-1]
    lam2 = float(moduli[1])
    gap = 1.0 - lam2
    if gap <= 1e-12:
        return math.inf
    return math.log(graph.n / epsilon) / gap


def empirical_stationary_distribution(
    graph: GeometricGraph, steps: int, starts: int = 200,
    rng: Optional[random.Random] = None,
) -> np.ndarray:
    """End-node distribution of MD walks of the given length (Monte Carlo)."""
    rng = rng or random.Random(0)
    n = graph.n
    degrees = [graph.degree(u) for u in range(n)]
    d_max = max(degrees) if degrees else 1
    counts = np.zeros(n)
    for _ in range(starts):
        current = rng.randrange(n)
        for _ in range(steps):
            if degrees[current] and rng.random() < degrees[current] / d_max:
                current = rng.choice(graph.adjacency[current])
        counts[current] += 1
    return counts / counts.sum()


def exact_partial_cover_time(adjacency: Sequence[Sequence[int]],
                             start: int, target: int) -> float:
    """Exact expected PCT on a tiny graph.

    State = (current node, visited set).  Within a fixed visited set the
    walk may cycle among already-visited nodes, so the expectations for
    each set satisfy a linear system; sets are processed from largest to
    smallest (exits to bigger sets are already solved).  Exponential in n —
    for validating the simulation kernel on graphs with n <= ~12.
    """
    n = len(adjacency)
    if n > 12:
        raise ValueError("exact PCT only tractable for tiny graphs")
    if not 1 <= target <= n:
        raise ValueError("target out of range")
    if any(not nbrs for nbrs in adjacency):
        raise ValueError("graph must have no isolated nodes")

    from itertools import combinations

    solved: dict = {}  # (visited frozenset) -> {node in visited: E}

    def is_reachable_superset(visited: frozenset) -> bool:
        return start in visited

    # Enumerate visited sets containing start, by decreasing size.
    nodes = list(range(n))
    for size in range(n, 0, -1):
        for combo in combinations(nodes, size):
            visited = frozenset(combo)
            if start not in visited:
                continue
            if len(visited) >= target:
                solved[visited] = {v: 0.0 for v in visited}
                continue
            members = sorted(visited)
            index = {v: i for i, v in enumerate(members)}
            k = len(members)
            a = np.eye(k)
            b = np.ones(k)
            for v in members:
                deg = len(adjacency[v])
                for u in adjacency[v]:
                    if u in visited:
                        a[index[v], index[u]] -= 1.0 / deg
                    else:
                        bigger = visited | {u}
                        b[index[v]] += solved[bigger][u] / deg
            solution = np.linalg.solve(a, b)
            solved[visited] = {v: float(solution[index[v]])
                               for v in members}

    return solved[frozenset({start})][start]
