"""Timed-quorum lease theory (PAPERS.md: "Timed Quorum Systems for
Large-Scale and Dynamic Environments", composed with Lemma 5.2).

A replica that stored a value at time ``t0`` with lease TTL ``T`` answers
for it only while (a) the lease has not expired (``now - t0 < T``) and
(b) the node itself survived the interval.  Under memoryless churn at
rate ``lambda`` per node per unit time, a single advertise-quorum member
is still a *visible holder* at age ``a`` with probability

    ``p(a) = exp(-lambda * a)``  if ``a < T``, else ``0``.

With ``|Qa|`` holders thinned independently at probability ``p``, the
number of surviving holders ``S`` is Binomial(|Qa|, p) and a lookup of
size ``|Ql|`` misses exactly when its uniform without-replacement sample
avoids all ``S`` survivors:

    ``Pr(stale) = sum_s Binom(|Qa|, s, p) * miss_exact(s, |Ql|, n)``.

The closed-form *bound* uses ``miss_exact(s, ql, n) <= exp(-s ql / n)``
(each factor ``(n - s - i)/(n - i) <= 1 - s/n <= exp(-s/n)``) and the
binomial moment generating function:

    ``Pr(stale) <= E[exp(-S ql / n)] = (1 - p + p exp(-ql/n)) ^ |Qa|``.

At ``p = 1`` (infinite TTL, no churn) the bound collapses to Lemma 5.2's
``exp(-|Qa| |Ql| / n)`` and the exact form to the hypergeometric product.
Inverting the survival floor gives the adaptive lease duration the same
way :class:`repro.services.maintenance.RefreshDaemon` re-derives the
Section 6.1 refresh interval from the observed churn rate.
"""

from __future__ import annotations

import math

from repro.analysis.intersection import (
    _validate,
    _validate_eps,
    miss_probability_bound,
    miss_probability_exact,
)

__all__ = [
    "lease_survival_probability",
    "stale_read_probability_exact",
    "stale_read_probability_bound",
    "lease_ttl_for_churn",
    "min_survival_for_epsilon",
]


def lease_survival_probability(age: float, churn_rate: float,
                               ttl: float) -> float:
    """``Pr(a given holder still answers)`` for an entry of ``age``.

    Memoryless node churn at ``churn_rate`` thins holders exponentially;
    the lease cuts survival to exactly zero once ``age >= ttl``.
    """
    if age < 0.0:
        raise ValueError("age must be non-negative")
    if churn_rate < 0.0:
        raise ValueError("churn_rate must be non-negative")
    if ttl <= 0.0:
        raise ValueError("ttl must be positive")
    if age >= ttl:
        return 0.0
    return math.exp(-churn_rate * age)


def stale_read_probability_exact(quorum_a: int, quorum_l: int, n: int,
                                 survival: float) -> float:
    """Exact ``Pr(lookup sees no surviving holder)``.

    Binomial thinning of the advertise quorum at ``survival`` composed
    with the exact hypergeometric miss of Lemma 5.2's selection process.
    ``survival = 1`` reduces to :func:`miss_probability_exact`.
    """
    _validate(quorum_a, quorum_l, n)
    if not 0.0 <= survival <= 1.0:
        raise ValueError("survival must be in [0, 1]")
    prob = 0.0
    for s in range(quorum_a + 1):
        weight = (math.comb(quorum_a, s) * survival ** s
                  * (1.0 - survival) ** (quorum_a - s))
        if weight == 0.0:
            continue
        prob += weight * miss_probability_exact(s, quorum_l, n)
    return min(prob, 1.0)


def stale_read_probability_bound(quorum_a: int, quorum_l: int, n: int,
                                 survival: float) -> float:
    """Closed-form upper bound ``(1 - p + p exp(-|Ql|/n)) ^ |Qa|``.

    Provably dominates :func:`stale_read_probability_exact` (binomial
    MGF over the per-survivor factor ``exp(-|Ql|/n)``); equals Lemma
    5.2's ``exp(-|Qa| |Ql| / n)`` at ``survival = 1``.
    """
    _validate(quorum_a, quorum_l, n)
    if not 0.0 <= survival <= 1.0:
        raise ValueError("survival must be in [0, 1]")
    per_survivor = math.exp(-quorum_l / n)
    return (1.0 - survival + survival * per_survivor) ** quorum_a


def lease_ttl_for_churn(churn_rate: float, min_survival: float,
                        min_ttl: float = 1.0,
                        max_ttl: float = 1e6) -> float:
    """Lease duration keeping holder survival above ``min_survival``.

    Inverts ``exp(-churn_rate * ttl) >= min_survival`` into
    ``ttl = ln(1/min_survival) / churn_rate``, clamped to
    ``[min_ttl, max_ttl]``.  A quiet network (``churn_rate == 0``) gets
    the longest allowed lease.
    """
    _validate_eps(min_survival)
    if churn_rate < 0.0:
        raise ValueError("churn_rate must be non-negative")
    if min_ttl <= 0.0 or max_ttl < min_ttl:
        raise ValueError("need 0 < min_ttl <= max_ttl")
    if churn_rate == 0.0:
        return max_ttl
    ttl = math.log(1.0 / min_survival) / churn_rate
    return min(max(ttl, min_ttl), max_ttl)


def min_survival_for_epsilon(quorum_a: int, quorum_l: int, n: int,
                             epsilon: float) -> float:
    """Smallest per-holder survival keeping the stale bound below ``eps``.

    Solves ``(1 - p + p exp(-ql/n)) ^ qa <= eps`` for ``p``; returns 1.0
    when even fully-live quorums cannot reach ``eps`` (the caller should
    then grow the quorums, not the lease).
    """
    _validate(quorum_a, quorum_l, n)
    _validate_eps(epsilon)
    if quorum_a == 0:
        return 1.0
    if miss_probability_bound(quorum_a, quorum_l, n) > epsilon:
        return 1.0
    per_survivor = math.exp(-quorum_l / n)
    # (1 - p (1 - per_survivor)) = eps^(1/qa)  =>  p = (1 - eps^(1/qa)) / (1 - per_survivor)
    target = epsilon ** (1.0 / quorum_a)
    if per_survivor >= 1.0:
        return 1.0
    p = (1.0 - target) / (1.0 - per_survivor)
    return min(max(p, 0.0), 1.0)
