"""Asymptotic access-cost model and the asymmetric-cost optimizer.

Encodes the paper's Figure 3 (per-strategy asymptotic costs and qualitative
properties), Figure 6 (costs of strategy combinations at |Q| = Theta(sqrt n)),
and Lemma 5.6 (the optimal lookup/advertise size ratio for a given
lookup:advertise frequency ratio tau).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.walks import (
    EMPIRICAL_ALPHA_DEFAULT_DENSITY,
    mixing_time_rgg,
)

RANDOM = "RANDOM"
RANDOM_SAMPLING = "RANDOM-SAMPLING"
RANDOM_OPT = "RANDOM-OPT"
PATH = "PATH"
UNIQUE_PATH = "UNIQUE-PATH"
FLOODING = "FLOODING"

ALL_STRATEGIES = (RANDOM, RANDOM_SAMPLING, RANDOM_OPT, PATH, UNIQUE_PATH,
                  FLOODING)


@dataclass(frozen=True)
class StrategyProfile:
    """Qualitative row of the paper's Figure 3."""

    name: str
    accessed_nodes: str          # "uniform" or "arbitrary"
    needs_routing: bool
    needs_membership: bool
    lookup_replies: str          # "one" or "multiple"
    early_halting: bool
    uniform_random: bool         # usable as the RANDOM side of Lemma 5.2


_PROFILES: Dict[str, StrategyProfile] = {
    RANDOM: StrategyProfile(
        name=RANDOM, accessed_nodes="uniform", needs_routing=True,
        needs_membership=True, lookup_replies="multiple",
        early_halting=False, uniform_random=True),
    RANDOM_SAMPLING: StrategyProfile(
        name=RANDOM_SAMPLING, accessed_nodes="uniform", needs_routing=False,
        needs_membership=False, lookup_replies="multiple",
        early_halting=False, uniform_random=True),
    RANDOM_OPT: StrategyProfile(
        name=RANDOM_OPT, accessed_nodes="arbitrary", needs_routing=True,
        needs_membership=True, lookup_replies="multiple",
        early_halting=False, uniform_random=False),
    PATH: StrategyProfile(
        name=PATH, accessed_nodes="arbitrary", needs_routing=False,
        needs_membership=False, lookup_replies="one",
        early_halting=True, uniform_random=False),
    UNIQUE_PATH: StrategyProfile(
        name=UNIQUE_PATH, accessed_nodes="arbitrary", needs_routing=False,
        needs_membership=False, lookup_replies="one",
        early_halting=True, uniform_random=False),
    FLOODING: StrategyProfile(
        name=FLOODING, accessed_nodes="arbitrary", needs_routing=False,
        needs_membership=False, lookup_replies="multiple",
        early_halting=False, uniform_random=False),
}


def strategy_profile(name: str) -> StrategyProfile:
    """Qualitative properties of an access strategy (Figure 3 row)."""
    if name not in _PROFILES:
        raise ValueError(f"unknown strategy {name!r}; pick from {ALL_STRATEGIES}")
    return _PROFILES[name]


def access_cost_rgg(strategy: str, n: int, quorum_size: int,
                    alpha: float = EMPIRICAL_ALPHA_DEFAULT_DENSITY) -> float:
    """Asymptotic message cost of accessing ``|Q|`` nodes on an RGG
    (Figure 3, third row — constants from the paper's measurements).

    * RANDOM (membership+routing):  |Q| * sqrt(n / ln n)   (route length)
    * RANDOM (direct sampling):     |Q| * T_mix ~ |Q| * n/2
    * RANDOM-OPT:                   ln(n) routed messages ~ sqrt(n ln n)
    * PATH / UNIQUE-PATH:           alpha * |Q|  (PCT linear for |Q|=o(n))
    * FLOODING:                     |Q| (every covered node transmits once)
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    if quorum_size < 0:
        raise ValueError("quorum_size must be non-negative")
    if strategy == RANDOM:
        return quorum_size * math.sqrt(n / math.log(n))
    if strategy == RANDOM_SAMPLING:
        return quorum_size * mixing_time_rgg(n)
    if strategy == RANDOM_OPT:
        return math.sqrt(n * math.log(n))
    if strategy in (PATH, UNIQUE_PATH):
        return alpha * quorum_size
    if strategy == FLOODING:
        return float(quorum_size)
    raise ValueError(f"unknown strategy {strategy!r}")


def per_node_access_cost(strategy: str, n: int, quorum_size: int,
                         alpha: float = EMPIRICAL_ALPHA_DEFAULT_DENSITY) -> float:
    """Average messages per accessed quorum node (``Cost_a`` / ``Cost_l``
    in Lemma 5.6)."""
    if quorum_size <= 0:
        raise ValueError("quorum_size must be positive")
    return access_cost_rgg(strategy, n, quorum_size, alpha) / quorum_size


def optimal_size_ratio(tau: float, cost_a: float, cost_l: float) -> float:
    """Lemma 5.6: optimal ``|Ql| / |Qa| = (1/tau) * Cost_a / Cost_l``.

    ``tau`` is the network-wide lookup:advertise frequency ratio and the
    costs are per-node access costs.
    """
    if tau <= 0:
        raise ValueError("tau must be positive")
    if cost_a <= 0 or cost_l <= 0:
        raise ValueError("per-node costs must be positive")
    return cost_a / (tau * cost_l)


def optimal_lookup_size(n: int, epsilon: float, tau: float,
                        cost_a: float, cost_l: float) -> float:
    """The cost-minimising ``|Ql| = sqrt(n ln(1/eps) Cost_a / (tau Cost_l))``."""
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    product = n * math.log(1.0 / epsilon)
    return math.sqrt(product * cost_a / (tau * cost_l))


def total_cost(n_advertise: int, quorum_a: int, cost_a: float,
               n_lookup: int, quorum_l: int, cost_l: float) -> float:
    """Lemma 5.6's objective: total messages for a whole workload."""
    if min(n_advertise, quorum_a, n_lookup, quorum_l) < 0:
        raise ValueError("counts and sizes must be non-negative")
    return n_advertise * quorum_a * cost_a + n_lookup * quorum_l * cost_l


@dataclass(frozen=True)
class CombinationCost:
    """One column of the paper's Figure 6 (asymptotics at |Q|=Theta(sqrt n))."""

    advertise: str
    lookup: str
    advertise_cost: float
    lookup_cost: float

    @property
    def combined(self) -> float:
        return self.advertise_cost + self.lookup_cost


def combination_cost(advertise: str, lookup: str, n: int,
                     epsilon: float = 0.1,
                     alpha: float = EMPIRICAL_ALPHA_DEFAULT_DENSITY) -> CombinationCost:
    """Asymptotic advertise/lookup costs of a strategy mix (Figure 6).

    Random-involving mixes use |Qa| = |Ql| = sqrt(n ln(1/eps)); the
    routing-free symmetric mixes (PATH x PATH etc.) must instead use the
    crossing-time-driven sizes ~ n/log(n) each (Theorem 5.5 / Section 8.5).
    """
    from repro.analysis.intersection import symmetric_quorum_size
    from repro.analysis.walks import path_x_path_quorum_size

    uniform_mix = (strategy_profile(advertise).uniform_random
                   or strategy_profile(lookup).uniform_random)
    if uniform_mix:
        q = symmetric_quorum_size(n, epsilon)
        return CombinationCost(
            advertise=advertise, lookup=lookup,
            advertise_cost=access_cost_rgg(advertise, n, q, alpha),
            lookup_cost=access_cost_rgg(lookup, n, q, alpha),
        )
    q = path_x_path_quorum_size(n)
    return CombinationCost(
        advertise=advertise, lookup=lookup,
        advertise_cost=access_cost_rgg(advertise, n, q, alpha),
        lookup_cost=access_cost_rgg(lookup, n, q, alpha),
    )


def figure3_table(n: int, quorum_size: Optional[int] = None) -> List[Dict[str, object]]:
    """The full Figure 3 comparison table, evaluated at a concrete n."""
    if quorum_size is None:
        quorum_size = int(math.ceil(math.sqrt(n)))
    rows: List[Dict[str, object]] = []
    for name in ALL_STRATEGIES:
        profile = strategy_profile(name)
        rows.append({
            "strategy": name,
            "accessed_nodes": profile.accessed_nodes,
            "cost_rgg": access_cost_rgg(name, n, quorum_size),
            "needs_routing": profile.needs_routing,
            "needs_membership": profile.needs_membership,
            "lookup_replies": profile.lookup_replies,
            "early_halting": profile.early_halting,
        })
    return rows


def figure6_table(n: int, epsilon: float = 0.1) -> List[CombinationCost]:
    """The Figure 6 combination table, evaluated at a concrete n."""
    combos = [
        (RANDOM, RANDOM),
        (RANDOM, RANDOM_OPT),
        (RANDOM, PATH),
        (RANDOM, FLOODING),
        (FLOODING, PATH),
        (PATH, FLOODING),
        (PATH, PATH),
    ]
    return [combination_cost(a, l, n, epsilon) for a, l in combos]
