"""Observability layer: event trace, metrics, accounting audit.

Also hosts the regression tests for the accounting bugs this layer was
built to catch: lookup first-hit clobbering, non-sticky reply delivery,
zero latency on direct strategy calls, and adaptation retries burned on
duplicate replacement draws.
"""

import json

import pytest

from repro.core import (
    FloodingStrategy,
    PathStrategy,
    RandomOptStrategy,
    RandomSamplingStrategy,
    RandomStrategy,
    UniquePathStrategy,
)
from repro.experiments.common import make_membership, run_scenario
from repro.membership import FullMembership
from repro.obs import (
    AccountingAuditor,
    AuditError,
    EventTrace,
    MetricsRegistry,
    TraceEvent,
    TraceTruncated,
    audit_access,
    own_events,
)
from repro.randomwalk.reply import ReplyResult
from repro.randomwalk.walker import SampleResult
from repro.simnet import NetworkConfig, SimNetwork


def make_net(n=100, seed=0, **kw):
    return SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed, **kw))


def probe_for(targets, value="v"):
    hit_set = set(targets)

    def probe(node):
        return value if node in hit_set else None

    return probe


# ---------------------------------------------------------------------------
# EventTrace
# ---------------------------------------------------------------------------


class TestEventTrace:
    def test_disabled_by_default(self, monkeypatch):
        trace = EventTrace()
        assert not trace.enabled
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        net = make_net(n=20)
        assert not net.trace.enabled
        assert net.auditor is None

    def test_record_and_slice(self):
        trace = EventTrace().enable(memory=True)
        trace.record("hop", 0.1, src=1, dst=2)
        mark = trace.mark()
        trace.record("hop", 0.2, src=2, dst=3)
        trace.record("reply", 0.3, src=3, dst=1, success=True)
        events = trace.events_since(mark)
        assert [e.kind for e in events] == ["hop", "reply"]
        assert events[0].fields["src"] == 2
        assert len(trace) == 3

    def test_count_defaults_to_one(self):
        batched = TraceEvent(seq=0, t=0.0, kind="virtual-msg",
                             fields={"count": 7})
        single = TraceEvent(seq=1, t=0.0, kind="hop", fields={})
        assert batched.count == 7
        assert single.count == 1

    def test_retention_truncation_detected(self):
        trace = EventTrace().enable(memory=True, retention=4)
        mark = trace.mark()
        for i in range(10):
            trace.record("hop", float(i))
        with pytest.raises(TraceTruncated):
            trace.events_since(mark)

    def test_jsonl_output(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = EventTrace().enable(memory=False, jsonl_path=str(path))
        trace.record("hop", 0.002, src=1, dst=2)
        trace.record("flood", 0.004, origin=0, ttl=3)
        trace.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "hop"
        assert first["src"] == 1
        assert first["seq"] == 0

    def test_kind_field_allowed_in_payload(self):
        # access-start/end events carry their own "kind" payload field.
        trace = EventTrace().enable(memory=True)
        trace.record("access-start", 0.0, kind="lookup", strategy="RANDOM")
        assert trace.events()[0].fields["kind"] == "lookup"

    def test_trace_env_streams_network_events(self, tmp_path, monkeypatch):
        path = tmp_path / "net.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        net = make_net(n=40)
        strategy = RandomStrategy(FullMembership(net))
        strategy.advertise(net, 0, lambda node: None, target_size=5)
        net.trace.close()
        kinds = {json.loads(line)["kind"]
                 for line in path.read_text().splitlines()}
        assert "access-start" in kinds
        assert "access-end" in kinds
        assert "hop" in kinds
        assert "store" in kinds


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("net.unicasts")
        c.inc()
        c.inc(4)
        assert reg.counter("net.unicasts").value == 5

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(10.0)
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0

    def test_snapshot_and_render(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.histogram("b").observe(1.5)
        snap = reg.snapshot()
        assert snap["a"] == 2
        assert snap["b"]["count"] == 1
        assert "a" in reg.render()

    def test_network_populates_metrics(self):
        net = make_net(n=40)
        strategy = RandomStrategy(FullMembership(net))
        strategy.advertise(net, 0, lambda node: None, target_size=5)
        strategy.lookup(net, 1, probe_for([]), target_size=5)
        snap = net.metrics.snapshot()
        assert snap["access.advertise.count"] == 1
        assert snap["access.lookup.count"] == 1
        assert snap["access.advertise.messages"] > 0
        assert snap["net.unicasts"] > 0
        assert snap["access.lookup.latency"]["count"] == 1


# ---------------------------------------------------------------------------
# Audit primitives
# ---------------------------------------------------------------------------


def _ev(seq, kind, /, t=0.0, **fields):
    return TraceEvent(seq=seq, t=t, kind=kind, fields=fields)


def _result(**kw):
    from repro.core.strategies import AccessResult

    defaults = dict(strategy="T", kind="lookup")
    defaults.update(kw)
    return AccessResult(**defaults)


class TestAuditAccess:
    def test_clean_access(self):
        events = [
            _ev(0, "access-start", t=1.0, access="lookup"),
            _ev(1, "hop", t=1.002, src=0, dst=1),
            _ev(2, "probe", t=1.002, node=1, hit=True),
            _ev(3, "reply", t=1.004, src=1, dst=0, success=True),
            _ev(4, "hop", t=1.004, src=1, dst=0),
            _ev(5, "access-end", t=1.004, access="lookup"),
        ]
        result = _result(messages=2, found=True, reply_delivered=True,
                         latency=1.004 - 1.0)
        assert audit_access(result, events) == []

    def test_message_mismatch(self):
        events = [_ev(0, "hop", src=0, dst=1)]
        violations = audit_access(_result(messages=3), events)
        assert any(v.code == "message-mismatch" for v in violations)

    def test_virtual_msg_count_batches(self):
        events = [_ev(0, "virtual-msg", reason="flood-ack", count=5)]
        assert not any(
            v.code == "message-mismatch"
            for v in audit_access(_result(messages=5), events))

    def test_routing_mismatch(self):
        events = [_ev(0, "routing", count=10)]
        violations = audit_access(_result(routing_messages=4), events)
        assert any(v.code == "routing-mismatch" for v in violations)

    def test_reply_claimed_without_trace(self):
        violations = audit_access(_result(reply_delivered=True, found=True),
                                  [_ev(0, "probe", node=1, hit=True)])
        assert any(v.code == "reply-mismatch" for v in violations)

    def test_reply_denied_but_traced_success(self):
        events = [_ev(0, "probe", node=1, hit=True),
                  _ev(1, "reply", src=1, dst=0, success=True)]
        violations = audit_access(_result(reply_delivered=False, found=True),
                                  events)
        assert any(v.code == "reply-mismatch" for v in violations)

    def test_found_without_probe_hit(self):
        violations = audit_access(
            _result(found=True, reply_delivered=True),
            [_ev(0, "reply", src=1, dst=0, success=True)])
        assert any(v.code == "found-without-probe" for v in violations)

    def test_latency_mismatch(self):
        events = [_ev(0, "access-start", t=0.0, access="lookup"),
                  _ev(1, "access-end", t=0.5, access="lookup")]
        violations = audit_access(_result(latency=0.1), events)
        assert any(v.code == "latency-mismatch" for v in violations)

    def test_own_events_excludes_nested_access(self):
        events = [
            _ev(0, "access-start", access="advertise"),
            _ev(1, "hop", src=0, dst=1),
            _ev(2, "access-start", access="advertise"),  # nested (daemon)
            _ev(3, "hop", src=5, dst=6),
            _ev(4, "access-end", access="advertise"),
            _ev(5, "hop", src=1, dst=2),
            _ev(6, "access-end", access="advertise"),
        ]
        mine = own_events(events)
        assert [e.seq for e in mine] == [0, 1, 5, 6]

    def test_strict_auditor_raises(self):
        auditor = AccountingAuditor(strict=True)
        with pytest.raises(AuditError):
            auditor.check(_result(messages=1), [])
        assert auditor.checked == 1
        assert not auditor.clean

    def test_record_auditor_collects(self):
        auditor = AccountingAuditor(strict=False)
        auditor.check(_result(messages=1), [])
        assert not auditor.clean
        assert "message-mismatch" in auditor.report()


# ---------------------------------------------------------------------------
# Regression: RANDOM-SAMPLING lookup reply/hit accounting (the bug that
# motivated this layer)
# ---------------------------------------------------------------------------


def _scripted_sampling(monkeypatch, net, members, reply_outcomes):
    """Make MD-walk sampling return ``members`` in order and send_reply
    pop successive ``reply_outcomes``.

    The fakes claim messages that were never transmitted, so the
    accounting auditor (if the suite runs under REPRO_AUDIT) is
    detached — these tests check result semantics, not accounting.
    """
    net.auditor = None
    samples = [SampleResult(node=m, steps=3, messages=3, path=[0, 50 + i, m])
               for i, m in enumerate(members)]
    sample_iter = iter(samples)
    monkeypatch.setattr("repro.core.strategies.max_degree_walk_sample",
                        lambda *a, **kw: next(sample_iter))
    outcomes = list(reply_outcomes)
    monkeypatch.setattr(
        "repro.core.strategies.send_reply",
        lambda *a, **kw: ReplyResult(success=outcomes.pop(0), messages=2))


class TestSamplingLookupRegression:
    def test_first_hit_is_kept(self, monkeypatch):
        """A second hit must not overwrite the first hit's node/value."""
        net = make_net(n=60)
        _scripted_sampling(monkeypatch, net, members=[7, 8],
                           reply_outcomes=[True, True])
        strategy = RandomSamplingStrategy()

        def probe(node):
            return f"value-{node}" if node in (7, 8) else None

        result = strategy.lookup(net, 0, probe, target_size=2)
        assert result.found
        assert result.hit_node == 7
        assert result.hit_value == "value-7"

    def test_delivered_reply_not_clobbered_by_later_failure(self, monkeypatch):
        """reply_delivered must stay True once any reply landed (the old
        code's `reply_delivered = reply.success` lost the first reply)."""
        net = make_net(n=60)
        _scripted_sampling(monkeypatch, net, members=[7, 8],
                           reply_outcomes=[True, False])
        result = RandomSamplingStrategy().lookup(
            net, 0, probe_for([7, 8]), target_size=2)
        assert result.reply_delivered is True
        assert result.success

    def test_late_success_still_counts(self, monkeypatch):
        net = make_net(n=60)
        _scripted_sampling(monkeypatch, net, members=[7, 8],
                           reply_outcomes=[False, True])
        result = RandomSamplingStrategy().lookup(
            net, 0, probe_for([7, 8]), target_size=2)
        assert result.reply_delivered is True

    def test_all_replies_lost(self, monkeypatch):
        net = make_net(n=60)
        _scripted_sampling(monkeypatch, net, members=[7, 8],
                           reply_outcomes=[False, False])
        result = RandomSamplingStrategy().lookup(
            net, 0, probe_for([7, 8]), target_size=2)
        assert result.found
        assert result.reply_delivered is False
        assert not result.success


# ---------------------------------------------------------------------------
# Regression: RANDOM adaptation must not burn retries on duplicate draws
# ---------------------------------------------------------------------------


class ScriptedMembership:
    """sample_for returns a scripted initial pick, then scripted
    single-node replacement draws."""

    def __init__(self, initial, replacements):
        self.initial = list(initial)
        self.replacements = list(replacements)

    def sample_for(self, origin, k, rng):
        if k > 1:
            return list(self.initial)
        if self.replacements:
            return [self.replacements.pop(0)]
        return []


class TestRandomAdaptationRegression:
    def test_duplicate_replacement_draws_cost_no_retries(self):
        """Replacement draws landing on already-reached nodes caused no
        transmission, so they must not consume the adaptation budget."""
        net = make_net(n=100)
        a, b = 3, 4
        membership = ScriptedMembership(initial=[a, a],
                                        replacements=[a, a, b])
        strategy = RandomStrategy(membership, adaptation_retries=0)
        result = strategy.advertise(net, 0, lambda node: None, target_size=2)
        # With retries burned on the duplicate draws (the old behaviour),
        # b would never be attempted and the quorum would be just {a}.
        assert result.quorum == sorted([a, b])

    def test_replacement_draws_are_bounded(self):
        net = make_net(n=100)
        a = 3
        # Every replacement draw returns the reached node: the strategy
        # must give up instead of looping forever.
        membership = ScriptedMembership(initial=[a, a],
                                        replacements=[a] * 50)
        strategy = RandomStrategy(membership, adaptation_retries=2)
        result = strategy.advertise(net, 0, lambda node: None, target_size=2)
        assert result.quorum == [a]


# ---------------------------------------------------------------------------
# Latency stamping (direct strategy calls used to report 0.0)
# ---------------------------------------------------------------------------


class TestLatencyStamping:
    def _strategies(self, net):
        membership = FullMembership(net)
        return [
            RandomStrategy(membership),
            RandomSamplingStrategy(),
            PathStrategy(),
            UniquePathStrategy(),
            FloodingStrategy(ttl=4),
            RandomOptStrategy(membership),
        ]

    def test_all_strategies_stamp_advertise_latency(self):
        net = make_net(n=80)
        for strategy in self._strategies(net):
            result = strategy.advertise(net, 0, lambda node: None,
                                        target_size=8)
            assert result.latency > 0.0, strategy.name

    def test_all_strategies_stamp_lookup_latency(self):
        net = make_net(n=80)
        for strategy in self._strategies(net):
            result = strategy.lookup(net, 0, probe_for([]), target_size=8)
            assert result.latency > 0.0, strategy.name

    def test_latency_matches_clock_advance(self):
        net = make_net(n=80)
        before = net.now
        result = RandomStrategy(FullMembership(net)).advertise(
            net, 0, lambda node: None, target_size=10)
        assert result.latency == pytest.approx(net.now - before)


# ---------------------------------------------------------------------------
# Strict audit over live strategies and a fig8-style workload
# ---------------------------------------------------------------------------


@pytest.fixture
def strict_net(monkeypatch):
    """A network whose every access is audited in strict mode."""
    monkeypatch.setenv("REPRO_AUDIT", "strict")

    def build(n=80, seed=0, **kw):
        net = SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed, **kw))
        assert net.auditor is not None and net.auditor.strict
        return net

    return build


class TestStrictAudit:
    def test_every_strategy_passes_strict_audit(self, strict_net):
        net = strict_net(n=80)
        membership = FullMembership(net)
        strategies = [
            RandomStrategy(membership),
            RandomSamplingStrategy(),
            PathStrategy(),
            UniquePathStrategy(),
            FloodingStrategy(ttl=4),
            FloodingStrategy(expanding_ring=True),
            RandomOptStrategy(membership),
        ]
        stored = []
        for strategy in strategies:
            strategy.advertise(net, 0, stored.append, target_size=8)
            strategy.lookup(net, 1, probe_for(stored), target_size=8)
        assert net.auditor.checked == 2 * len(strategies)
        assert net.auditor.clean, net.auditor.report()

    def test_fig8_style_workload_passes_strict_audit(self, strict_net):
        net = strict_net(n=60, seed=3)
        membership = make_membership(net, "random")
        strategy = RandomStrategy(membership)
        stats = run_scenario(
            net, advertise_strategy=strategy, lookup_strategy=strategy,
            advertise_size=12, lookup_size=10, n_keys=5, n_lookups=15,
            seed=4)
        assert stats.lookups == 15
        # Local-cache lookups skip the quorum access, so the audited
        # count can be below advertises + lookups.
        assert net.auditor.checked >= 15
        assert net.auditor.clean, net.auditor.report()
        assert stats.avg_lookup_latency > 0.0
        assert stats.avg_advertise_latency > 0.0

    def test_mobile_unique_path_passes_strict_audit(self, strict_net):
        net = strict_net(n=60, seed=5, mobility="waypoint")
        membership = make_membership(net, "random")
        stats = run_scenario(
            net, advertise_strategy=RandomStrategy(membership),
            lookup_strategy=UniquePathStrategy(local_repair=True),
            advertise_size=12, lookup_size=10, n_keys=4, n_lookups=10,
            seed=6)
        assert stats.lookups == 10
        assert net.auditor.clean, net.auditor.report()

    def test_corrupted_accounting_is_caught(self, strict_net):
        net = strict_net(n=60)

        class LyingStrategy(RandomStrategy):
            def _advertise(self, net, origin, store_fn, target_size):
                result = super()._advertise(net, origin, store_fn,
                                            target_size)
                result.messages += 1  # claim a message never sent
                return result

        strategy = LyingStrategy(FullMembership(net))
        with pytest.raises(AuditError, match="message-mismatch"):
            strategy.advertise(net, 0, lambda node: None, target_size=5)
