"""Run observatory: manifests, phase profiler, offline trace analysis.

Covers the provenance manifest schema, the nested phase profiler
(including pool-worker merging), the streaming ``repro obs`` queries
(summarize / timeline / diff), the flock-serialized multi-process JSONL
sink, and the TraceTruncated audit semantics.
"""

import json
import math
import random
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core import RandomStrategy
from repro.membership import FullMembership
from repro.obs import (
    MANIFEST_SCHEMA,
    AccountingAuditor,
    AuditError,
    EventTrace,
    Histogram,
    PhaseProfiler,
    RunManifest,
    access_timeline,
    collect_manifest,
    diff_summaries,
    profile_enabled_from_env,
    render_diff,
    render_summary,
    render_timeline,
    summarize_trace,
    summary_to_jsonable,
)
from repro.obs.profile import PROFILER, profiled
from repro.simnet import NetworkConfig, SimNetwork


def make_net(n=100, seed=0, **kw):
    return SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed, **kw))


def probe_for(targets, value="v"):
    hit_set = set(targets)

    def probe(node):
        return value if node in hit_set else None

    return probe


def run_traced_accesses(net, seed=7, n_keys=4, n_lookups=10):
    """A small advertise+lookup workload (trace/metrics both populated)."""
    strategy = RandomStrategy(FullMembership(net))
    rng = random.Random(seed)
    stored = []
    for _ in range(n_keys):
        origin = net.random_alive_node(rng)
        strategy.advertise(net, origin, stored.append, target_size=6)
    targets = set(stored)
    for _ in range(n_lookups):
        origin = net.random_alive_node(rng)
        strategy.lookup(net, origin, probe_for(targets), target_size=6)


# ---------------------------------------------------------------------------
# RunManifest
# ---------------------------------------------------------------------------


class TestManifest:
    def test_collect_snapshots_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_NEIGHBOR_BACKEND", "python")
        manifest = collect_manifest(
            "fig8", params={"n": 200}, seed=11, jobs=4,
            trace_path="t.jsonl")
        assert manifest.command == "fig8"
        assert manifest.params == {"n": 200}
        assert manifest.seed == 11
        assert manifest.jobs == 4
        assert manifest.neighbor_backend == "python"
        assert manifest.trace_path == "t.jsonl"
        assert manifest.schema == MANIFEST_SCHEMA
        assert manifest.python_version.count(".") == 2
        assert manifest.numpy_version
        assert manifest.started_at.endswith("+00:00")
        assert manifest.wall_time_s is None  # caller stamps it

    def test_git_provenance_present(self):
        manifest = collect_manifest("bench")
        # The repo is git-initialised, so the rev must resolve.
        assert len(manifest.git_rev) == 40
        assert manifest.git_dirty in (True, False)

    def test_write_roundtrip(self, tmp_path):
        manifest = collect_manifest("sweep", params={"points": 3}, seed=1)
        manifest.wall_time_s = 1.25
        path = tmp_path / "run.manifest.json"
        manifest.write(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == manifest.to_dict()
        assert RunManifest(**loaded).seed == 1

    def test_run_sweep_records_manifest(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner

        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        results = runner.run_sweep([10, 20], _double, replications=2,
                                   jobs=1, base_seed=5)
        assert [r.results for r in results] == [[20, 20], [40, 40]]
        manifest = runner.last_sweep_manifest
        assert manifest is not None
        assert manifest.command == "sweep"
        assert manifest.seed == 5
        assert manifest.params["points"] == 2
        assert manifest.params["replications"] == 2
        assert manifest.wall_time_s >= 0
        written = list(tmp_path.glob("sweep-*.manifest.json"))
        assert written
        assert json.loads(written[-1].read_text())["command"] == "sweep"


def _double(point, seed):  # module-level for pool picklability
    return point * 2


# ---------------------------------------------------------------------------
# PhaseProfiler
# ---------------------------------------------------------------------------


class TestPhaseProfiler:
    def test_disabled_records_nothing(self):
        profiler = PhaseProfiler(enabled=False)
        with profiler.phase("anything"):
            pass
        assert profiler.snapshot() == {}

    def test_env_gate(self):
        assert not profile_enabled_from_env({})
        assert not profile_enabled_from_env({"REPRO_PROFILE": "0"})
        assert not profile_enabled_from_env({"REPRO_PROFILE": ""})
        assert profile_enabled_from_env({"REPRO_PROFILE": "1"})
        assert profile_enabled_from_env({"REPRO_PROFILE": "yes"})

    def test_nested_self_attribution(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.phase("outer"):
            time.sleep(0.01)
            with profiler.phase("inner"):
                time.sleep(0.02)
        snap = profiler.snapshot()
        assert snap["outer"]["calls"] == 1
        assert snap["inner"]["calls"] == 1
        # outer's cumulative covers inner, but its self time does not.
        assert snap["outer"]["cumulative"] >= snap["inner"]["cumulative"]
        assert snap["outer"]["self"] == pytest.approx(
            snap["outer"]["cumulative"] - snap["inner"]["cumulative"])
        assert snap["inner"]["self"] >= 0.015

    def test_merge_accumulates(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.phase("p"):
            pass
        profiler.merge({"p": {"calls": 3, "cumulative": 1.0, "self": 0.5},
                        "q": {"calls": 1, "cumulative": 0.1, "self": 0.1}})
        snap = profiler.snapshot()
        assert snap["p"]["calls"] == 4
        assert snap["p"]["self"] == pytest.approx(
            0.5, abs=0.1)  # own span is ~instant
        assert snap["q"]["calls"] == 1

    def test_decorator_respects_global_toggle(self, monkeypatch):
        calls = []

        @profiled("test.decorated")
        def work(x):
            calls.append(x)
            return x + 1

        monkeypatch.setattr(PROFILER, "enabled", False)
        monkeypatch.setattr(PROFILER, "_stats", {})
        assert work(1) == 2
        assert PROFILER.snapshot() == {}
        monkeypatch.setattr(PROFILER, "enabled", True)
        assert work(2) == 3
        assert PROFILER.snapshot()["test.decorated"]["calls"] == 1
        assert calls == [1, 2]

    def test_render_table(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.phase("alpha"):
            with profiler.phase("beta"):
                pass
        table = profiler.render()
        assert "phase" in table and "self %" in table
        assert "alpha" in table and "beta" in table
        assert PhaseProfiler().render() == (
            "phase profiler: no phases recorded")

    def test_instrumented_phases_fire(self, monkeypatch):
        monkeypatch.setattr(PROFILER, "enabled", True)
        monkeypatch.setattr(PROFILER, "_stats", {})
        monkeypatch.setattr(PROFILER, "_stack", [])
        net = make_net(n=50)
        run_traced_accesses(net, n_keys=2, n_lookups=4)
        snap = PROFILER.snapshot()
        assert snap["access.advertise"]["calls"] == 2
        assert snap["access.lookup"]["calls"] == 4
        assert "routing.discover" in snap
        assert "neighbor.rebuild" in snap

    def test_run_sweep_merges_worker_profiles(self, monkeypatch):
        from repro.experiments.runner import run_sweep

        monkeypatch.setattr(PROFILER, "enabled", True)
        monkeypatch.setattr(PROFILER, "_stats", {})
        monkeypatch.setattr(PROFILER, "_stack", [])
        results = run_sweep([1, 2, 3], _profiled_task, jobs=2, base_seed=0)
        assert [r.value for r in results] == [2, 4, 6]
        # Forked workers ran the phase; their deltas merged back here.
        assert PROFILER.snapshot()["sweep.task"]["calls"] == 3


@profiled("sweep.task")
def _profiled_task(point, seed):  # module-level for pool picklability
    return point * 2


# ---------------------------------------------------------------------------
# Empty-histogram semantics (satellite)
# ---------------------------------------------------------------------------


class TestEmptyHistogram:
    def test_empty_statistics_are_nan(self):
        h = Histogram("empty")
        assert math.isnan(h.mean)
        assert math.isnan(h.min)
        assert math.isnan(h.max)
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.percentile(99))
        assert h.count == 0 and h.sum == 0

    def test_percentile_still_validates_range(self):
        h = Histogram("empty")
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_registry_snapshot_with_empty_histogram(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.histogram("access.lookup.latency")
        snap = registry.snapshot()
        assert math.isnan(snap["access.lookup.latency"]["p50"])
        assert registry.render()  # must not raise on nan


# ---------------------------------------------------------------------------
# summarize (the acceptance criterion: trace summary == live metrics)
# ---------------------------------------------------------------------------


class TestSummarize:
    def test_summary_matches_in_process_metrics(self, tmp_path, monkeypatch):
        path = tmp_path / "run.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        net = make_net(n=80, seed=3)
        run_traced_accesses(net, seed=7, n_keys=4, n_lookups=10)
        net.trace.close()

        live = net.metrics.snapshot()
        offline = summarize_trace(str(path)).snapshot()

        access_keys = [k for k in live if k.startswith("access.")]
        assert access_keys, "workload must have produced access metrics"
        for key in access_keys:
            expected = live[key]
            if isinstance(expected, dict):
                for stat, value in expected.items():
                    assert offline[key][stat] == pytest.approx(
                        value, rel=1e-6, abs=1e-6, nan_ok=True), (key, stat)
            else:
                assert offline[key] == expected, key
        # Keys the live registry lazily omitted (no drops) must be zero.
        for key in set(offline) - set(live):
            assert offline[key] == 0, key

    def test_summary_totals_and_kinds(self, tmp_path, monkeypatch):
        path = tmp_path / "run.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        net = make_net(n=60, seed=1)
        run_traced_accesses(net, n_keys=2, n_lookups=5)
        net.trace.close()
        summary = summarize_trace(str(path))
        assert summary.corrupt_lines == 0
        assert summary.open_accesses == 0
        assert summary.kind_counts["access-start"] == 7
        assert summary.kind_counts["access-end"] == 7
        assert summary.traced_messages > 0
        assert summary.t_max >= summary.t_min
        text = render_summary(summary)
        assert "access.advertise" in text and "access.lookup" in text

    def test_corrupt_lines_counted_not_fatal(self):
        lines = [
            '{"kind":"hop","seq":0,"t":0.1,"src":1,"dst":2}',
            '{"kind":"hop","seq":1,"t":0.2,"src":2,"ds',  # truncated tail
            "not json at all",
            '["a","list"]',  # parseable but not an event
            '{"kind":"reply","seq":2,"t":0.3,"success":true}',
        ]
        summary = summarize_trace(lines)
        assert summary.events == 2
        assert summary.corrupt_lines == 3
        assert summary.traced_messages == 1
        assert summary.replies_delivered == 1

    def test_zero_lookup_trace_renders_nan_cleanly(self):
        lines = [
            '{"kind":"access-start","seq":0,"t":1.0,"strategy":"RANDOM",'
            '"access":"advertise","origin":0,"target_size":2}',
            '{"kind":"access-end","seq":1,"t":1.5,"strategy":"RANDOM",'
            '"access":"advertise","origin":0,"messages":4,"routing":2,'
            '"success":true,"found":false,"reply":null,"quorum":2}',
        ]
        summary = summarize_trace(lines)
        text = render_summary(summary)
        assert "access.advertise" in text
        payload = summary_to_jsonable(summary)
        json.dumps(payload)  # NaN must have been nulled out
        assert payload["metrics"]["access.advertise.latency"]["p50"] == 0.5

    def test_jsonable_summary_has_no_nan(self, tmp_path):
        lines = ['{"kind":"access-end","seq":0,"t":1.0,"access":"lookup",'
                 '"strategy":"R","origin":1,"messages":1,"routing":0}']
        payload = summary_to_jsonable(summarize_trace(lines))
        text = json.dumps(payload)
        assert "NaN" not in text
        # The unpaired end produced no latency sample: stats are null.
        assert payload["metrics"]["access.lookup.latency"]["mean"] is None


# ---------------------------------------------------------------------------
# timeline
# ---------------------------------------------------------------------------


def _two_access_trace():
    return [
        '{"kind":"access-start","seq":0,"t":1.0,"strategy":"R",'
        '"access":"advertise","origin":3,"target_size":2}',
        '{"kind":"hop","seq":1,"t":1.1,"src":3,"dst":4}',
        '{"kind":"access-end","seq":2,"t":1.2,"strategy":"R",'
        '"access":"advertise","origin":3,"messages":1,"routing":0}',
        '{"kind":"access-start","seq":3,"t":2.0,"strategy":"R",'
        '"access":"lookup","origin":5,"target_size":2}',
        '{"kind":"probe","seq":4,"t":2.1,"node":6,"hit":true}',
        '{"kind":"access-end","seq":5,"t":2.2,"strategy":"R",'
        '"access":"lookup","origin":5,"messages":2,"routing":0}',
    ]


class TestTimeline:
    def test_slices_one_access(self):
        events = access_timeline(_two_access_trace(), 1)
        assert [e["kind"] for e in events] == [
            "access-start", "probe", "access-end"]
        assert events[0]["origin"] == 5

    def test_includes_nested_accesses(self):
        lines = [
            '{"kind":"access-start","seq":0,"t":1.0,"strategy":"R",'
            '"access":"lookup","origin":1}',
            '{"kind":"access-start","seq":1,"t":1.1,"strategy":"D",'
            '"access":"advertise","origin":2}',
            '{"kind":"access-end","seq":2,"t":1.2,"strategy":"D",'
            '"access":"advertise","origin":2}',
            '{"kind":"access-end","seq":3,"t":1.3,"strategy":"R",'
            '"access":"lookup","origin":1}',
        ]
        events = access_timeline(lines, 0)
        assert len(events) == 4  # the nested access rides along

    def test_missing_access_raises(self):
        with pytest.raises(ValueError, match="no access #7"):
            access_timeline(_two_access_trace(), 7)
        with pytest.raises(ValueError):
            access_timeline(_two_access_trace(), -1)

    def test_render(self):
        events = access_timeline(_two_access_trace(), 0)
        text = render_timeline(events, 0)
        assert text.startswith("access #0: R advertise from node 3")
        assert "hop" in text


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------


class TestDiff:
    def test_identical_traces_diff_empty(self):
        a = summarize_trace(_two_access_trace())
        b = summarize_trace(_two_access_trace())
        changes = diff_summaries(a, b)
        assert changes == []
        assert "no differences" in render_diff(changes, "a", "b")

    def test_changed_totals_surface(self):
        lines = _two_access_trace()
        modified = [line.replace('"messages":2', '"messages":9')
                    for line in lines]
        changes = diff_summaries(summarize_trace(lines),
                                 summarize_trace(modified))
        names = {name for name, _, _ in changes}
        assert "access.lookup.messages" in names
        text = render_diff(changes, "base", "cand")
        assert "access.lookup.messages" in text

    def test_nan_equal_is_not_a_diff(self):
        # Neither trace has latency samples for the unpaired kind.
        lines = ['{"kind":"access-end","seq":0,"t":1.0,"access":"lookup",'
                 '"strategy":"R","origin":1,"messages":1,"routing":0}']
        changes = diff_summaries(summarize_trace(lines),
                                 summarize_trace(lines))
        assert changes == []


# ---------------------------------------------------------------------------
# flock-serialized multi-process JSONL appends (satellite)
# ---------------------------------------------------------------------------


def _append_events(path, worker, count):
    trace = EventTrace().enable(memory=False, jsonl_path=path)
    for i in range(count):
        # A fat payload makes torn writes likely if unserialized.
        trace.record("hop", float(i), src=worker, dst=i,
                     blob="x" * 512)
    trace.close()
    return count


class TestConcurrentTraceAppends:
    def test_parallel_writers_never_interleave(self, tmp_path):
        path = str(tmp_path / "shared.jsonl")
        workers, per_worker = 4, 200
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_append_events, path, w, per_worker)
                       for w in range(workers)]
            assert sum(f.result() for f in futures) == workers * per_worker
        summary = summarize_trace(path)
        assert summary.corrupt_lines == 0
        assert summary.events == workers * per_worker
        assert summary.kind_counts["hop"] == workers * per_worker

    def test_lock_can_be_disabled(self, tmp_path):
        path = str(tmp_path / "unlocked.jsonl")
        trace = EventTrace().enable(memory=False, jsonl_path=path,
                                    lock=False)
        assert not trace._lock_writes
        trace.record("hop", 0.0, src=1, dst=2)
        trace.close()
        assert summarize_trace(path).events == 1


# ---------------------------------------------------------------------------
# TraceTruncated retention semantics under audit (satellite)
# ---------------------------------------------------------------------------


class TestTruncationAudit:
    def _truncating_net(self, strict):
        net = make_net(n=60, seed=2)
        # Retention far smaller than one access's event volume, so the
        # auditor's events_since(mark) is guaranteed to hit truncation.
        net.trace.enable(memory=True, retention=4)
        net.auditor = AccountingAuditor(strict=strict)
        return net

    def test_strict_mode_raises_on_truncation(self):
        net = self._truncating_net(strict=True)
        strategy = RandomStrategy(FullMembership(net))
        with pytest.raises(AuditError, match="trace-truncated"):
            strategy.advertise(net, 0, lambda node: None, target_size=8)

    def test_record_mode_survives_and_flags(self):
        net = self._truncating_net(strict=False)
        strategy = RandomStrategy(FullMembership(net))
        result = strategy.advertise(net, 0, lambda node: None,
                                    target_size=8)
        assert result.quorum_size > 0  # the access itself completed
        codes = {v.code for v in net.auditor.violations}
        assert codes == {"trace-truncated"}
        assert not net.auditor.clean

    def test_audit_env_record_survives_truncation(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "record")
        net = make_net(n=60, seed=2)
        assert net.auditor is not None and not net.auditor.strict
        net.trace.enable(memory=True, retention=4)
        strategy = RandomStrategy(FullMembership(net))
        strategy.lookup(net, 0, probe_for(()), target_size=8)
        assert any(v.code == "trace-truncated"
                   for v in net.auditor.violations)

    def test_ample_retention_audits_cleanly(self):
        net = make_net(n=60, seed=2)
        net.trace.enable(memory=True)
        net.auditor = AccountingAuditor(strict=True)
        strategy = RandomStrategy(FullMembership(net))
        strategy.advertise(net, 0, lambda node: None, target_size=5)
        assert net.auditor.clean and net.auditor.checked == 1


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------


class TestObsCli:
    def _trace_file(self, tmp_path, name="t.jsonl", mutate=None):
        lines = _two_access_trace()
        if mutate:
            lines = [mutate(line) for line in lines]
        path = tmp_path / name
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_summarize_command(self, tmp_path, capsys):
        from repro.cli import main

        path = self._trace_file(tmp_path)
        assert main(["obs", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "access.advertise" in out and "access.lookup" in out

    def test_summarize_json(self, tmp_path, capsys):
        from repro.cli import main

        path = self._trace_file(tmp_path)
        assert main(["obs", "summarize", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["access.lookup.count"] == 1

    def test_timeline_command(self, tmp_path, capsys):
        from repro.cli import main

        path = self._trace_file(tmp_path)
        assert main(["obs", "timeline", path, "--access", "1"]) == 0
        assert "access #1" in capsys.readouterr().out
        assert main(["obs", "timeline", path, "--access", "9"]) == 2

    def test_diff_command_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        a = self._trace_file(tmp_path, "a.jsonl")
        b = self._trace_file(
            tmp_path, "b.jsonl",
            mutate=lambda ln: ln.replace('"messages":2', '"messages":9'))
        assert main(["obs", "diff", a, a, "--fail-on-change"]) == 0
        assert main(["obs", "diff", a, b]) == 0  # report-only by default
        assert main(["obs", "diff", a, b, "--fail-on-change"]) == 1
        assert "access.lookup.messages" in capsys.readouterr().out

    def test_list_documents_obs_and_env(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for token in ("summarize", "timeline", "diff", "REPRO_PROFILE",
                      "REPRO_TRACE", "REPRO_AUDIT", "REPRO_JOBS"):
            assert token in out

    def test_figure_run_writes_manifest(self, tmp_path, monkeypatch,
                                        capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_TRACE", "sentinel")  # restored after
        trace = str(tmp_path / "fig.jsonl")
        assert main(["fig5", "--n", "60", "--trace", trace]) == 0
        manifest = json.loads((tmp_path / "fig.jsonl.manifest.json")
                              .read_text())
        assert manifest["command"] == "fig5"
        assert manifest["params"]["n"] == 60
        assert manifest["trace_path"] == trace
        assert manifest["wall_time_s"] > 0
        assert manifest["schema"] == MANIFEST_SCHEMA

    def test_explicit_manifest_path(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_TRACE", "sentinel")
        out = str(tmp_path / "explicit.json")
        assert main(["fig3", "--n", "100", "--manifest", out]) == 0
        assert json.loads(open(out).read())["command"] == "fig3"
