"""Tests for the CSMA/CA MAC layer over the SINR channel."""

import math
import random

import pytest

from repro.mac import BROADCAST, MacLayer, MacParams
from repro.phy import PhyParams, SINRChannel
from repro.sim import Simulator


class _Env:
    def __init__(self, positions):
        self.positions = dict(positions)
        self.dead = set()

    def position_of(self, node_id):
        return self.positions[node_id]

    def nodes_near(self, pos, radius):
        return [nid for nid, p in self.positions.items()
                if nid not in self.dead
                and math.hypot(p[0] - pos[0], p[1] - pos[1]) <= radius]

    def is_alive(self, node_id):
        return node_id not in self.dead

    def distance(self, a, b):
        return math.hypot(a[0] - b[0], a[1] - b[1])


def build(positions, retry_limit=7):
    sim = Simulator()
    env = _Env(positions)
    channel = SINRChannel(sim, env)
    inboxes = {nid: [] for nid in positions}
    macs = {}
    params = MacParams(retry_limit=retry_limit)
    for nid in positions:
        macs[nid] = MacLayer(
            sim, channel, nid,
            deliver=lambda payload, src, box=inboxes[nid]: box.append((payload, src)),
            params=params, rng=random.Random(nid + 1))
    return sim, env, channel, macs, inboxes


class TestUnicast:
    def test_delivery_and_success_callback(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0)})
        outcome = []
        macs[0].send_unicast(1, "ping", on_success=lambda: outcome.append("ok"),
                             on_failure=lambda: outcome.append("fail"))
        sim.run(until=1.0)
        assert inboxes[1] == [("ping", 0)]
        assert outcome == ["ok"]

    def test_failure_notification_when_peer_gone(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0)},
                                            retry_limit=2)
        env.dead.add(1)
        outcome = []
        macs[0].send_unicast(1, "ping", on_failure=lambda: outcome.append("fail"))
        sim.run(until=2.0)
        assert outcome == ["fail"]
        assert inboxes[1] == []
        assert macs[0].failures == 1

    def test_retry_count_grows_on_failure(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0)},
                                            retry_limit=3)
        env.dead.add(1)
        macs[0].send_unicast(1, "ping")
        sim.run(until=2.0)
        assert macs[0].retries == 3

    def test_queue_serialises_frames(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0)})
        for i in range(5):
            macs[0].send_unicast(1, f"m{i}")
        sim.run(until=2.0)
        assert [p for p, _ in inboxes[1]] == [f"m{i}" for i in range(5)]

    def test_unicast_to_self_rejected(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0)})
        with pytest.raises(ValueError):
            macs[0].send_unicast(0, "x")

    def test_out_of_range_peer_fails(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (1000, 0)},
                                            retry_limit=1)
        outcome = []
        macs[0].send_unicast(1, "ping", on_failure=lambda: outcome.append("f"))
        sim.run(until=2.0)
        assert outcome == ["f"]

    def test_third_party_does_not_deliver_unicast(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0),
                                             2: (50, 50)})
        macs[0].send_unicast(1, "private")
        sim.run(until=1.0)
        assert inboxes[2] == []


class TestBroadcast:
    def test_reaches_all_in_range(self):
        sim, env, ch, macs, inboxes = build(
            {0: (0, 0), 1: (100, 0), 2: (0, 100), 3: (600, 600)})
        macs[0].send_broadcast("hello")
        sim.run(until=1.0)
        assert inboxes[1] == [("hello", 0)]
        assert inboxes[2] == [("hello", 0)]
        assert inboxes[3] == []

    def test_no_ack_for_broadcast(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0)})
        macs[0].send_broadcast("hello")
        sim.run(until=1.0)
        assert macs[1].acks_sent == 0

    def test_duplicate_suppression(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0)})
        macs[0].send_unicast(1, "once")
        sim.run(until=1.0)
        assert len(inboxes[1]) == 1


class TestPromiscuous:
    def test_overhears_neighbor_unicast(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0),
                                             2: (50, 50)})
        heard = []
        macs[2].promiscuous = True
        macs[2].on_overhear = lambda payload, src, dst: heard.append(
            (payload, src, dst))
        macs[0].send_unicast(1, "secret")
        sim.run(until=1.0)
        assert ("secret", 0, 1) in heard

    def test_not_promiscuous_by_default(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0),
                                             2: (50, 50)})
        heard = []
        macs[2].on_overhear = lambda *a: heard.append(a)
        macs[0].send_unicast(1, "secret")
        sim.run(until=1.0)
        assert heard == []


class TestShutdown:
    def test_shutdown_stops_rx_and_tx(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0)})
        macs[1].shutdown()
        macs[0].send_unicast(1, "ping", on_failure=lambda: None)
        sim.run(until=2.0)
        assert inboxes[1] == []

    def test_shutdown_drops_queue(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0)})
        macs[0].send_unicast(1, "a")
        macs[0].shutdown()
        sim.run(until=2.0)
        assert inboxes[1] == []


class TestContention:
    def test_many_senders_all_deliver_eventually(self):
        positions = {i: (i * 30.0, 0.0) for i in range(6)}
        sim, env, ch, macs, inboxes = build(positions)
        for i in range(1, 6):
            macs[i].send_unicast(0, f"from-{i}")
        sim.run(until=5.0)
        got = sorted(p for p, _ in inboxes[0])
        assert got == [f"from-{i}" for i in range(1, 6)]

    def test_mac_counters(self):
        sim, env, ch, macs, inboxes = build({0: (0, 0), 1: (100, 0)})
        macs[0].send_unicast(1, "x")
        sim.run(until=1.0)
        assert macs[0].data_sent >= 1
        assert macs[1].acks_sent == 1
        assert macs[1].delivered_up == 1
